"""E9 — Emergency routing around a failed or congested link (Fig. 8, Sec 5.3).

Paper claims: when a link stops accepting packets the router waits a
programmable time, diverts traffic around the other two sides of the
adjacent mesh triangle, and only drops the packet (informing the Monitor
Processor) after a further programmable wait — so a single link failure
does not interrupt delivery, and the fabric never deadlocks.
"""

from __future__ import annotations

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.core.packets import MulticastPacket
from repro.router.multicast import RouterConfig

from .reporting import emit_json, print_table

PACKETS = 200
PATH_LENGTH = 6


def _build_path_machine(emergency_enabled=True):
    machine = SpiNNakerMachine(MachineConfig(
        width=PATH_LENGTH + 1, height=3, cores_per_chip=2,
        router_config=RouterConfig(emergency_wait_us=0.5, drop_wait_us=1.0,
                                   retries_per_wait=2,
                                   emergency_routing_enabled=emergency_enabled)))
    for x in range(PATH_LENGTH):
        machine.chips[ChipCoordinate(x, 0)].router.table.add(
            key=1, mask=0xFFFFFFFF, links=[Direction.EAST])
    target_chip = machine.chips[ChipCoordinate(PATH_LENGTH, 0)]
    target_chip.router.table.add(key=1, mask=0xFFFFFFFF, cores=[1])
    delivered = []
    core = target_chip.cores[1]
    core.run_self_test(True)
    core.start_application()
    core.on_packet(lambda packet: delivered.append(
        machine.kernel.now - packet.timestamp))
    return machine, delivered


def _run_scenario(fail_link, emergency_enabled):
    machine, delivered = _build_path_machine(emergency_enabled)
    if fail_link:
        machine.fail_link(ChipCoordinate(2, 0), Direction.EAST)
    for _ in range(PACKETS):
        machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(
            key=1, timestamp=machine.kernel.now, source=ChipCoordinate(0, 0)))
        machine.run()
    return {
        "delivered": len(delivered),
        "dropped": machine.total_dropped_packets(),
        "emergency": machine.total_emergency_invocations(),
        "max_latency_us": max(delivered) if delivered else 0.0,
    }


def _emergency_sweep():
    return {
        "healthy link": _run_scenario(fail_link=False, emergency_enabled=True),
        "failed link, emergency ON": _run_scenario(fail_link=True,
                                                   emergency_enabled=True),
        "failed link, emergency OFF": _run_scenario(fail_link=True,
                                                    emergency_enabled=False),
    }


def test_e9_emergency_routing(benchmark):
    scenarios = benchmark(_emergency_sweep)

    rows = [(name, s["delivered"], s["dropped"], s["emergency"],
             f"{s['max_latency_us']:.2f}",
             f"{s['delivered'] / PACKETS:.3f}")
            for name, s in scenarios.items()]
    print_table("E9: %d packets over a %d-hop path (Figure 8 scenario)"
                % (PACKETS, PATH_LENGTH), rows,
                headers=("scenario", "delivered", "dropped",
                         "emergency invocations", "max latency (us)",
                         "delivery ratio"))

    healthy = scenarios["healthy link"]
    with_emergency = scenarios["failed link, emergency ON"]
    without = scenarios["failed link, emergency OFF"]

    emit_json("e9", {
        "healthy_delivered": healthy["delivered"],
        "emergency_on_delivered": with_emergency["delivered"],
        "emergency_on_dropped": with_emergency["dropped"],
        "emergency_invocations": with_emergency["emergency"],
        "emergency_on_max_latency_us": with_emergency["max_latency_us"],
        "emergency_off_dropped": without["dropped"],
    })

    assert healthy["delivered"] == PACKETS
    assert healthy["emergency"] == 0
    # Emergency routing keeps delivery at 100 % around the dead link, at a
    # modest latency cost.
    assert with_emergency["delivered"] == PACKETS
    assert with_emergency["dropped"] == 0
    assert with_emergency["emergency"] >= PACKETS
    assert with_emergency["max_latency_us"] < 1000.0
    # The ablation: with emergency routing disabled every packet that
    # needed the dead link is eventually dropped (but the router never
    # wedges — the drops are deliberate).
    assert without["delivered"] == 0
    assert without["dropped"] == PACKETS
