"""E6 — Boot: monitor arbitration and neighbour repair (Section 5.2).

Paper claims: every chip elects exactly one Monitor Processor through the
read-sensitive register even though all cores are identical; a node that
fails to boot is detected by its neighbours, which copy boot code into its
System RAM over nn packets and re-elect its monitor.
"""

from __future__ import annotations

from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.runtime.boot import BootController

from .reporting import emit_json, print_table

FAILURE_RATES = (0.0, 0.1, 0.2, 0.4)


def _boot_sweep():
    rows = []
    for rate in FAILURE_RATES:
        machine = SpiNNakerMachine(MachineConfig(width=6, height=6,
                                                 cores_per_chip=8))
        controller = BootController(machine,
                                    core_failure_probability=0.02,
                                    chip_boot_failure_probability=rate,
                                    repairable_fraction=1.0, seed=17)
        result = controller.boot()
        monitors_per_chip = [
            sum(1 for core in chip.cores if core.state.value == "monitor")
            for chip in machine]
        rows.append((rate, result.chips_booted_unaided, result.chips_repaired,
                     result.chips_dead, result.monitors_elected,
                     max(monitors_per_chip), result.nn_packets_sent,
                     round(result.coordinate_flood_time_us, 1)))
    return rows


def test_e6_boot_with_failures(benchmark):
    rows = benchmark(_boot_sweep)

    print_table("E6: boot of a 6x6 machine under chip boot-failure rates",
                rows,
                headers=("chip fail rate", "booted unaided", "repaired",
                         "dead", "monitors", "max monitors/chip",
                         "nn packets", "coord flood time (us)"))

    worst = rows[-1]
    emit_json("e6", {
        "max_chip_fail_rate": worst[0],
        "chips_repaired_at_max_rate": worst[2],
        "chips_dead_at_max_rate": worst[3],
        "monitors_elected_at_max_rate": worst[4],
        "nn_packets_at_max_rate": worst[6],
        "coord_flood_time_us_at_max_rate": worst[7],
    })

    for rate, unaided, repaired, dead, monitors, max_monitors, _, _ in rows:
        # Exactly one monitor per operational chip, never more than one.
        assert max_monitors <= 1
        assert monitors == unaided + repaired
        # With fully repairable failures, every chip ends up operational.
        assert dead == 0
        assert monitors == 36
    # Repairs only happen when failures are injected.
    assert rows[0][2] == 0
    assert rows[-1][2] > 0
