"""E17 — Compiled transport-fabric throughput at 48-chip scale (Section 4).

The paper's multicast router fabric carries spike events at rates no
software per-packet simulation can match: each spike is one CAM lookup
and a replay of a precompiled multicast tree.  This benchmark measures
the reproduction's analogue — the compiled transport fabric
(`repro.router.fabric`), which walks the generated routing tables once
per source key and delivers each tick's whole spike batch with numpy
gather/scatter — against the per-packet event-driven transport on an
identical 48-chip workload, and asserts the two transports remain
*exactly* equivalent (identical spike trains and delivered-weight
totals) in the lightly-loaded regime the paper prescribes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController

from .reporting import emit_json, print_table

SEED = 17
WIDTH, HEIGHT = 8, 6            # 48 chips
CORES_PER_CHIP = 2              # 1 monitor + 1 application core per chip
N_PAIRS = 20                    # stimulus -> excitatory population pairs
NEURONS = 256
STIM_RATE_HZ = 50.0
#: Simulated durations: the event path pays ~10 discrete events per
#: packet, so it gets a shorter (but still representative) window.
DURATION_FABRIC_MS = 200.0
DURATION_EVENT_MS = 25.0


def _build_network() -> Network:
    network = Network(seed=SEED)
    for pair in range(N_PAIRS):
        stimulus = SpikeSourcePoisson(NEURONS, rate_hz=STIM_RATE_HZ,
                                      label="stim-%d" % pair)
        excitatory = Population(NEURONS, "lif", label="exc-%d" % pair)
        excitatory.record(spikes=True)
        # Dense rows (~128 synapses each) keep the workload in the
        # lightly-loaded packet regime while giving every delivered spike
        # a realistic amount of synaptic work to scatter.
        network.connect(stimulus, excitatory,
                        FixedProbabilityConnector(0.5, weight=0.18,
                                                  delay_range=(1, 8)))
        network.connect(excitatory, excitatory,
                        FixedProbabilityConnector(0.08, weight=0.06,
                                                  delay_range=(1, 16)))
    return network


def _run(transport: str, duration_ms: float):
    machine = SpiNNakerMachine(MachineConfig(width=WIDTH, height=HEIGHT,
                                             cores_per_chip=CORES_PER_CHIP))
    BootController(machine, seed=1).boot()
    application = NeuralApplication(machine, _build_network(),
                                    max_neurons_per_core=NEURONS, seed=SEED,
                                    transport=transport, stagger_us=0.0)
    application.prepare()
    start = time.perf_counter()
    result = application.run(duration_ms)
    elapsed = time.perf_counter() - start
    return result, elapsed, machine


def _best_of_two(transport: str, duration_ms: float):
    """Keep the faster of two identical runs (CI-noise insurance)."""
    result, first, machine = _run(transport, duration_ms)
    _, second, _ = _run(transport, duration_ms)
    return result, min(first, second), machine


def test_e17_transport_fabric(benchmark):
    event_result, event_elapsed, event_machine = _best_of_two(
        "event", DURATION_EVENT_MS)
    fabric_result, fabric_elapsed, fabric_machine = benchmark.pedantic(
        _best_of_two, args=("fabric", DURATION_FABRIC_MS),
        rounds=1, iterations=1)

    # ------------------------------------------------------------------
    # Equivalence: over the window both transports simulated, the fabric
    # must replay the event path exactly — spike trains, delivered-weight
    # totals and link loads.
    # ------------------------------------------------------------------
    short_fabric, _, short_machine = _run("fabric", DURATION_EVENT_MS)
    assert event_result.packets_dropped == 0
    assert event_result.emergency_invocations == 0
    assert event_result.total_spikes() > 0
    assert event_result.spikes == short_fabric.spikes
    for label in event_result.spike_counts:
        assert np.array_equal(event_result.spike_counts[label],
                              short_fabric.spike_counts[label])
    assert event_result.delivered_charge_na == short_fabric.delivered_charge_na
    assert event_result.synaptic_events == short_fabric.synaptic_events
    assert (event_machine.total_link_traffic()
            == short_machine.total_link_traffic())

    event_throughput = event_result.synaptic_events / event_elapsed
    fabric_throughput = fabric_result.synaptic_events / fabric_elapsed
    speedup = fabric_throughput / event_throughput
    packet_rate_event = len(event_result.delivery_latencies_us) / event_elapsed
    packet_rate_fabric = len(fabric_result.delivery_latencies_us) / fabric_elapsed

    print_table(
        "E17: spike-delivery throughput (48 chips, %d populations)"
        % (2 * N_PAIRS,),
        [("event (per-packet)", "%.0f" % DURATION_EVENT_MS,
          event_result.synaptic_events, "%.3f" % event_elapsed,
          "%.3e" % event_throughput, "%.3e" % packet_rate_event),
         ("fabric (compiled)", "%.0f" % DURATION_FABRIC_MS,
          fabric_result.synaptic_events, "%.3f" % fabric_elapsed,
          "%.3e" % fabric_throughput, "%.3e" % packet_rate_fabric)],
        headers=("transport", "sim ms", "synaptic events", "wall s",
                 "events/s", "deliveries/s"))
    print_table("E17: transport speedup",
                [("fabric vs event", "%.1fx" % speedup)],
                headers=("comparison", "throughput ratio"))

    emit_json("e17", {
        "chips": WIDTH * HEIGHT,
        "event_synaptic_events": event_result.synaptic_events,
        "event_wall_s": event_elapsed,
        "event_events_per_s": event_throughput,
        "fabric_synaptic_events": fabric_result.synaptic_events,
        "fabric_wall_s": fabric_elapsed,
        "fabric_events_per_s": fabric_throughput,
        "speedup": speedup,
        "mean_delivery_latency_us_event":
            event_result.mean_delivery_latency_us(),
        "mean_delivery_latency_us_fabric":
            fabric_result.mean_delivery_latency_us(),
    })

    assert event_result.synaptic_events > 100_000, "benchmark too quiet"
    assert speedup >= 10.0
