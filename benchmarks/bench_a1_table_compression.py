"""A1 (ablation) — Routing-table size under the three compression levels.

Design choice examined: the paper relies on a fixed 1024-entry associative
routing table per chip (Section 4), which is only sufficient because the
mapping tool-chain compresses the per-vertex entries.  This ablation maps
the same network three ways — no minimisation, the conservative pairwise
``minimise()`` pass, and the key-population-aware :class:`TableCompressor`
— and reports the worst-case and total table occupancy for each.
"""

from __future__ import annotations

from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.mapping.compression import TableCompressor, compress_machine
from repro.mapping.keys import KeyAllocator
from repro.mapping.placement import Placer
from repro.mapping.routing_generator import RoutingTableGenerator
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.boot import BootController

from .reporting import emit_json, print_table

WIDTH = HEIGHT = 4
NEURONS = 160
NEURONS_PER_CORE = 16


def _network(seed=31):
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(NEURONS, rate_hz=40.0, label="a1-stim")
    excitatory = Population(NEURONS, "lif", label="a1-exc")
    inhibitory = Population(NEURONS // 4, "lif", label="a1-inh")
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(p_connect=0.1, weight=0.5,
                                              delay_range=(1, 4)))
    network.connect(excitatory, inhibitory,
                    FixedProbabilityConnector(p_connect=0.1, weight=0.4))
    network.connect(inhibitory, excitatory,
                    FixedProbabilityConnector(p_connect=0.1, weight=-0.6))
    return network


def _mapped_machine(minimise):
    machine = SpiNNakerMachine(MachineConfig(width=WIDTH, height=HEIGHT,
                                             cores_per_chip=8))
    BootController(machine, seed=1).boot()
    network = _network()
    placement = Placer(machine, max_neurons_per_core=NEURONS_PER_CORE).place(network)
    keys = KeyAllocator(placement)
    RoutingTableGenerator(machine, placement, keys).generate(
        network, seed=31, minimise=minimise)
    return machine, keys


def _table_stats(machine):
    sizes = [len(chip.router.table) for chip in machine]
    return {"total": sum(sizes), "worst": max(sizes)}


def _compression_study():
    machine, keys = _mapped_machine(minimise=False)
    uncompressed = _table_stats(machine)

    machine_minimised, _ = _mapped_machine(minimise=True)
    minimised = _table_stats(machine_minimised)

    reports = compress_machine(machine, keys)
    compressed = _table_stats(machine)
    keys_checked = max(report.keys_checked for report in reports.values())
    return uncompressed, minimised, compressed, keys_checked


def test_a1_table_compression(benchmark):
    uncompressed, minimised, compressed, keys_checked = benchmark(
        _compression_study)

    rows = [
        ("per-vertex entries (no compression)",
         uncompressed["total"], uncompressed["worst"]),
        ("pairwise minimise()", minimised["total"], minimised["worst"]),
        ("key-aware TableCompressor", compressed["total"], compressed["worst"]),
    ]
    print_table("A1: routing-table occupancy, %d neurons on a %dx%d machine "
                "(%d known keys)" % (2 * NEURONS + NEURONS // 4, WIDTH, HEIGHT,
                                     keys_checked),
                rows, headers=("tool-chain pass", "total entries",
                               "worst chip"))

    emit_json("a1", {
        "uncompressed_total_entries": uncompressed["total"],
        "minimised_total_entries": minimised["total"],
        "compressed_total_entries": compressed["total"],
        "compressed_worst_chip_entries": compressed["worst"],
        "keys_checked": keys_checked,
    })

    # Each pass must be at least as small as the one before it, and every
    # chip must fit comfortably inside the 1024-entry CAM.
    assert minimised["total"] <= uncompressed["total"]
    assert compressed["total"] <= minimised["total"]
    assert compressed["worst"] <= 1024
    assert compressed["total"] < uncompressed["total"]
