#!/usr/bin/env python
"""Invariant-linter trend gate: no rule's violation count may grow.

``repro.checks report --json`` emits ``CHECKS_report.json`` with a
``counts_by_rule`` map.  The blocking linter gate already fails the
build on any violation, but a rule downgraded to warning-severity (or a
future advisory rule) would otherwise be free to accumulate debt
silently.  This gate pins the checked-in baseline
(``benchmarks/baselines/CHECKS_baseline.json``) as a ratchet:

* a rule whose count **increased** vs the baseline fails the build;
* a rule **missing from the baseline** (a freshly added rule) is gated
  against zero, so new rules start clean;
* counts that **decreased** are reported as a hint to ratchet the
  baseline down (copy the fresh report over the baseline and commit).

Usage::

    python benchmarks/check_checks_trend.py
    python benchmarks/check_checks_trend.py --report CHECKS_report.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional, Sequence

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(HERE)
DEFAULT_REPORT = os.path.join(REPO_ROOT, "CHECKS_report.json")
DEFAULT_BASELINE = os.path.join(HERE, "baselines", "CHECKS_baseline.json")


def load_counts(path: str) -> Dict[str, int]:
    with open(path) as handle:
        payload = json.load(handle)
    counts = payload.get("counts_by_rule")
    if not isinstance(counts, dict):
        raise SystemExit("%s: no counts_by_rule map — is this a "
                         "repro.checks report?" % path)
    return {rule: int(count) for rule, count in counts.items()}


def compare(baseline: Dict[str, int],
            current: Dict[str, int]) -> Dict[str, Sequence[str]]:
    """Classify every rule seen on either side.

    Returns ``{"increased": [...], "decreased": [...], "steady": [...]}``
    with rule names; a rule absent from one side counts as zero there.
    """
    verdicts: Dict[str, list] = {"increased": [], "decreased": [],
                                 "steady": []}
    for rule in sorted(set(baseline) | set(current)):
        base = baseline.get(rule, 0)
        now = current.get(rule, 0)
        if now > base:
            verdicts["increased"].append(rule)
        elif now < base:
            verdicts["decreased"].append(rule)
        else:
            verdicts["steady"].append(rule)
    return verdicts


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when any invariant-linter rule count grew "
                    "versus the checked-in baseline.")
    parser.add_argument("--report", default=DEFAULT_REPORT,
                        help="fresh CHECKS_report.json (default: repo "
                             "root)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    args = parser.parse_args(argv)

    if not os.path.exists(args.report):
        print("MISSING: %s — run `python -m repro.checks report --json "
              "CHECKS_report.json src tests benchmarks` first."
              % args.report)
        return 1
    baseline = load_counts(args.baseline)
    current = load_counts(args.report)
    verdicts = compare(baseline, current)

    width = max(len(rule) for rule in set(baseline) | set(current))
    print("Invariant-linter trend gate (baseline: %s)"
          % os.path.relpath(args.baseline, REPO_ROOT))
    for rule in sorted(set(baseline) | set(current)):
        base, now = baseline.get(rule, 0), current.get(rule, 0)
        marker = ("REGRESSED" if now > base
                  else "improved" if now < base else "ok")
        print("  %-*s  %3d -> %3d  %s" % (width, rule, base, now, marker))

    if verdicts["decreased"]:
        print("note: %d rule(s) improved; ratchet the baseline down by "
              "copying the fresh report over %s."
              % (len(verdicts["decreased"]),
                 os.path.relpath(args.baseline, REPO_ROOT)))
    if verdicts["increased"]:
        print("FAIL: violation count grew for: %s"
              % ", ".join(verdicts["increased"]))
        return 1
    print("PASS: no rule count increased.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
