"""E13 — Retinal ganglion model and graceful degradation (Section 5.4).

Paper claims: ganglion cells with overlapping Mexican-hat receptive fields
and lateral inhibition encode the image redundantly; "if a neuron fails it
will cease to generate output and also cease to generate lateral
inhibition, so a near-neighbour with a similar receptive field will take
over and very little information will be lost" — which is part of why the
brain tolerates losing a neuron every second.
"""

from __future__ import annotations

import numpy as np

from repro.coding.retina import RetinaModel, RetinaParameters

from .reporting import emit_json, print_table

IMAGE_SHAPE = (16, 16)
FAILURE_FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5)
TRIALS = 3


def _degradation_sweep():
    images = [RetinaModel.make_test_image(IMAGE_SHAPE, kind)
              for kind in ("spot", "bars")]
    rows = []
    for fraction in FAILURE_FRACTIONS:
        similarities = []
        active_counts = []
        for trial in range(TRIALS):
            retina = RetinaModel(IMAGE_SHAPE,
                                 RetinaParameters(scales=(1.0, 2.0)))
            rng = np.random.default_rng(100 + trial)
            retina.fail_cells(fraction, rng)
            for image in images:
                similarities.append(retina.reconstruction_similarity(image))
                active_counts.append(len(retina.encode_latencies(image)))
        rows.append((fraction, float(np.mean(similarities)),
                     float(np.mean(active_counts))))
    return rows


def test_e13_retina_fault_tolerance(benchmark):
    rows = benchmark(_degradation_sweep)

    print_table("E13: image reconstruction vs ganglion-cell failure rate",
                [(f"{fraction:.2f}", f"{similarity:.3f}", f"{active:.0f}")
                 for fraction, similarity, active in rows],
                headers=("failed fraction", "reconstruction similarity",
                         "active cells per salvo"))

    baseline = rows[0][1]
    by_fraction = {fraction: similarity for fraction, similarity, _ in rows}
    emit_json("e13", {
        "baseline_similarity": baseline,
        "similarity_at_20pct_loss": by_fraction[0.2],
        "similarity_at_50pct_loss": by_fraction[0.5],
    })

    # The intact retina reconstructs the stimulus well.
    assert baseline > 0.6
    # Graceful, sub-linear degradation: losing 20 % of the cells costs far
    # less than 20 % of the reconstruction quality...
    assert by_fraction[0.2] > 0.9 * baseline
    # ...and even at 50 % loss the stimulus is still largely recoverable.
    assert by_fraction[0.5] > 0.6 * baseline
    # Quality decreases monotonically (within a small tolerance) as more
    # cells die — there is degradation, it is just graceful.
    similarities = [similarity for _, similarity, _ in rows]
    assert similarities[-1] <= similarities[0] + 0.02
