"""E3 — 2-of-7 NRZ versus 3-of-6 RTZ link codes (Section 5.1).

Paper claims: the NRZ chip-to-chip code spends 3 off-chip wire transitions
per 4-bit symbol against 8 for the RTZ code, and needs one handshake
round-trip per symbol against two — "twice the performance for less than
half the energy per 4-bit symbol".
"""

from __future__ import annotations

from repro.link.codes import LinkPerformanceModel, three_of_six_rtz, two_of_seven_nrz

from .reporting import emit_json, print_metrics, print_table


def _link_comparison():
    model = LinkPerformanceModel(wire_delay_ns=2.0, energy_per_transition_pj=6.0)
    nrz = two_of_seven_nrz()
    rtz = three_of_six_rtz()
    rows = []
    for code in (rtz, nrz):
        rows.append((code.name,
                     code.data_transitions_per_symbol(),
                     code.ack_transitions_per_symbol(),
                     code.transitions_per_symbol(),
                     code.handshake_round_trips_per_symbol(),
                     round(model.throughput_mbit_per_s(code), 1),
                     round(model.energy_per_symbol_pj(code), 1)))
    return model, rows


def test_e3_nrz_vs_rtz_codes(benchmark):
    model, rows = benchmark(_link_comparison)

    print_table("E3: delay-insensitive code comparison (per 4-bit symbol)",
                rows,
                headers=("code", "data transitions", "ack transitions",
                         "total transitions", "round trips",
                         "throughput (Mbit/s)", "energy (pJ)"))
    print_metrics("E3: headline ratios", model.comparison())

    summary = model.comparison()
    emit_json("e3", summary)
    assert summary["nrz_transitions_per_symbol"] == 3
    assert summary["rtz_transitions_per_symbol"] == 8
    assert summary["throughput_ratio_nrz_over_rtz"] == 2.0
    assert summary["energy_ratio_nrz_over_rtz"] < 0.5
