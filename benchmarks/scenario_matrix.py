#!/usr/bin/env python
"""Scenario-matrix sweep: every transport x propagation x engine cell.

The dedicated benches each pin one corner of the system; this sweep
runs **one small fixed workload** through every execution configuration
the runtime offers and asserts they all produce the same spike trains —
so a regression in an un-benchmarked combination (say, fabric transport
over reference propagation) fails the weekly sweep instead of landing
silently.  Cells:

* ``NeuralApplication`` family — {transport: event, fabric} x
  {propagation: reference, csr}, all at ``stagger_us=0`` (the
  equivalence regime: every core sees the same tick alignment);
* ``ClusterApplication`` family — {engine: percore, fused} x
  {workers: 1, 2}, which the cluster tests pin bit-identical to the
  fabric path.

The reference cell is ``event`` transport over ``reference``
propagation — the slowest, most literal execution.  Every cell's wall
seconds, equivalence verdict and per-stage profiler timings
(``REPRO_PROFILE`` is forced on for the sweep) are emitted into one
``BENCH_matrix.json`` for the weekly trend artifact.

Runs standalone (``python benchmarks/scenario_matrix.py``) or under
pytest (``test_scenario_matrix``).
"""

from __future__ import annotations

import os
import sys
import time
from typing import Dict, List, Tuple

if __package__ in (None, ""):
    # Standalone: make src/repro importable from a plain checkout and
    # the sibling reporting module importable without the package.
    _HERE = os.path.dirname(os.path.abspath(__file__))
    for _path in (os.path.join(os.path.dirname(_HERE), "src"), _HERE):
        if _path not in sys.path:
            sys.path.insert(0, _path)
    from reporting import emit_json, print_table
else:
    from .reporting import emit_json, print_table

import numpy as np

from repro import profile
from repro.cluster import ClusterApplication
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController

SEED = 21
BOARDS_X, BOARDS_Y = 2, 1      # two boards, so spikes must cross a cable
BOARD_W, BOARD_H = 4, 4
CORES_PER_CHIP = 4
N_PAIRS = 2
NEURONS = 192
NEURONS_PER_CORE = 64
RATE_HZ = 80.0
DURATION_MS = 30.0

#: (cell name, runner kwargs).  The first cell is the reference.
APP_CELLS: List[Tuple[str, Dict[str, object]]] = [
    ("event_reference", {"transport": "event", "propagation": "reference"}),
    ("event_csr", {"transport": "event", "propagation": "csr"}),
    ("fabric_reference", {"transport": "fabric", "propagation": "reference"}),
    ("fabric_csr", {"transport": "fabric", "propagation": "csr"}),
]
CLUSTER_CELLS: List[Tuple[str, Dict[str, object]]] = [
    ("percore_w1", {"engine": "percore", "workers": 1}),
    ("percore_w2", {"engine": "percore", "workers": 2}),
    ("fused_w1", {"engine": "fused", "workers": 1}),
    ("fused_w2", {"engine": "fused", "workers": 2}),
]


def _build_network() -> Network:
    network = Network(seed=SEED)
    excitatory = []
    for pair in range(N_PAIRS):
        stimulus = SpikeSourcePoisson(NEURONS, rate_hz=RATE_HZ,
                                      label="x-stim-%d" % pair)
        population = Population(NEURONS, "lif", label="x-exc-%d" % pair)
        population.record(spikes=True)
        network.connect(stimulus, population,
                        FixedProbabilityConnector(0.15, weight=0.35,
                                                  delay_range=(1, 8)))
        network.connect(population, population,
                        FixedProbabilityConnector(0.05, weight=0.1,
                                                  delay_range=(1, 16)))
        excitatory.append(population)
    # Chain the pairs so traffic crosses the board boundary however the
    # placer tiles them.
    for index, population in enumerate(excitatory):
        network.connect(population,
                        excitatory[(index + 1) % len(excitatory)],
                        FixedProbabilityConnector(0.05, weight=0.12,
                                                  delay_range=(1, 16)))
    return network


def _machine() -> SpiNNakerMachine:
    machine = SpiNNakerMachine(MachineConfig.multi_board(
        BOARDS_X, BOARDS_Y, board_width=BOARD_W, board_height=BOARD_H,
        cores_per_chip=CORES_PER_CHIP))
    BootController(machine, seed=1).boot()
    return machine


def _spike_signature(result):
    """The per-cell equivalence payload: counts + recorded trains."""
    counts = {label: result.spike_counts[label].copy()
              for label in result.spike_counts}
    trains = {label: sorted(result.spikes[label])
              for label in result.spikes}
    return counts, trains


def _matches(reference, candidate) -> bool:
    ref_counts, ref_trains = reference
    cand_counts, cand_trains = candidate
    if set(ref_counts) != set(cand_counts):
        return False
    for label in ref_counts:
        if not np.array_equal(ref_counts[label], cand_counts[label]):
            return False
    return ref_trains == cand_trains


def _run_cell(name: str, network: Network, metrics: Dict[str, float]):
    """Run one cell; return its spike signature."""
    profile.reset()
    prefix = "profile_%s_" % name
    began = time.perf_counter()
    config = dict(APP_CELLS + CLUSTER_CELLS)[name]
    if "transport" in config:
        application = NeuralApplication(
            _machine(), network, max_neurons_per_core=NEURONS_PER_CORE,
            placement_strategy="round-robin", seed=SEED,
            transport=config["transport"],
            propagation=config["propagation"], stagger_us=0.0)
        result = application.run(DURATION_MS)
        metrics.update(profile.flatten(prefix))
    else:
        cluster = ClusterApplication(
            _machine(), network, seed=SEED,
            max_neurons_per_core=NEURONS_PER_CORE,
            placement_strategy="round-robin", profile=True,
            engine=config["engine"], workers=config["workers"])
        result = cluster.run(DURATION_MS)
        # Worker stages live on the cluster's own merged registry; the
        # global one adds whatever the parent process profiled.
        metrics.update(cluster.registry.flatten(prefix))
        metrics.update(profile.flatten(prefix))
    metrics["%s_wall_s" % name] = time.perf_counter() - began
    return _spike_signature(result)


def run_matrix() -> Dict[str, float]:
    """Run every cell, assert equivalence, emit BENCH_matrix.json."""
    profile.enable()
    network = _build_network()
    metrics: Dict[str, float] = {
        "cells": float(len(APP_CELLS) + len(CLUSTER_CELLS)),
        "boards": float(BOARDS_X * BOARDS_Y),
        "chips": float(BOARDS_X * BOARDS_Y * BOARD_W * BOARD_H),
        "duration_ms": DURATION_MS,
    }
    cell_names = [name for name, _ in APP_CELLS + CLUSTER_CELLS]
    signatures = {name: _run_cell(name, network, metrics)
                  for name in cell_names}
    reference_name = cell_names[0]
    reference = signatures[reference_name]
    total_spikes = float(sum(int(counts.sum())
                             for counts in reference[0].values()))
    metrics["total_spikes"] = total_spikes
    mismatched = []
    for name in cell_names:
        match = _matches(reference, signatures[name])
        metrics["%s_match" % name] = float(match)
        if not match:
            mismatched.append(name)
    metrics["cells_passed"] = float(len(cell_names) - len(mismatched))

    rows = [(name,
             "%.3f" % metrics["%s_wall_s" % name],
             "ok" if metrics["%s_match" % name] else "MISMATCH")
            for name in cell_names]
    print_table("Scenario matrix (%d cells, reference: %s)"
                % (len(cell_names), reference_name), rows,
                headers=("cell", "wall s", "vs reference"))
    emit_json("matrix", metrics)

    assert total_spikes > 0, "the reference cell produced no spikes"
    assert not mismatched, (
        "cells diverged from %s: %s" % (reference_name, mismatched))
    return metrics


def test_scenario_matrix():
    run_matrix()


if __name__ == "__main__":
    run_matrix()
    print("scenario matrix: all cells equivalent")
