"""E19 — Multi-board sharded simulation: scaling and equivalence.

The paper's machine is assembled from 48-chip boards scaled toward a
million cores.  `repro.cluster` shards a compiled network by board and
runs one engine shard per board in parallel workers, exchanging
cross-board spikes through preallocated shared memory at conservative
-lookahead super-step barriers.  This benchmark runs a four-board
machine (a row of production 8x6 boards) and checks the promises that
make the sharded runner usable:

* **Equivalence** — the sharded run produces spike trains identical to
  the unsharded on-machine engine
  (``NeuralApplication(transport="fabric", stagger_us=0)``), and results
  are bit-identical whatever the worker count *and* lookahead depth.
* **Scaling** — at 4 boards the shards divide the compute evenly enough
  for a 3x load-balance bound (asserted always), and on a host with at
  least 4 CPUs the pool must actually deliver a measured wall-clock
  speedup of at least 2x over 1 worker (single-CPU hosts cannot express
  pool parallelism in wall-clock, so there the bound is the gate).
* **Overheads stay visible** — the per-stage worker timers
  (compute / serialize / exchange / barrier-wait) are emitted into the
  gated BENCH JSON, so an exchange-path regression shows up as a
  ``stage_overhead_ratio`` move even on hosts where wall-clock cannot.
"""

from __future__ import annotations

import os

import numpy as np

from repro.cluster import ClusterApplication
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController

from .reporting import attach_profile, emit_json, print_metrics

SEED = 19
BOARDS_X, BOARDS_Y = 4, 1      # a row of four production 48-chip boards
BOARD_W, BOARD_H = 8, 6
CORES_PER_CHIP = 4             # 1 monitor + 3 application cores per chip
N_PAIRS = 8                    # stimulus -> excitatory pairs, chained
NEURONS = 1536
NEURONS_PER_CORE = 256         # 96 vertices = exactly one full chip row,
                               # so round-robin placement loads every
                               # board with two pairs (balanced shards)
RATE_HZ = 120.0
EQUIV_MS = 40.0
SCALING_MS = 80.0
WORKERS = 4
MIN_SPEEDUP = 3.0              # load-balance bound, asserted always
MIN_MEASURED_SPEEDUP = 2.0     # wall-clock, asserted with >= 4 CPUs


def _build_network() -> Network:
    network = Network(seed=SEED)
    excitatory = []
    for pair in range(N_PAIRS):
        stimulus = SpikeSourcePoisson(NEURONS, rate_hz=RATE_HZ,
                                      label="c-stim-%d" % pair)
        population = Population(NEURONS, "lif", label="c-exc-%d" % pair)
        population.record(spikes=True)
        network.connect(stimulus, population,
                        FixedProbabilityConnector(0.12, weight=0.35,
                                                  delay_range=(1, 8)))
        network.connect(population, population,
                        FixedProbabilityConnector(0.05, weight=0.1,
                                                  delay_range=(1, 16)))
        excitatory.append(population)
    # Chain the pairs so spikes must cross board cables however the
    # placer tiles them.
    for index, population in enumerate(excitatory):
        network.connect(population,
                        excitatory[(index + 1) % len(excitatory)],
                        FixedProbabilityConnector(0.05, weight=0.12,
                                                  delay_range=(1, 16)))
    return network


def _machine() -> SpiNNakerMachine:
    machine = SpiNNakerMachine(MachineConfig.multi_board(
        BOARDS_X, BOARDS_Y, board_width=BOARD_W, board_height=BOARD_H,
        cores_per_chip=CORES_PER_CHIP))
    BootController(machine, seed=1).boot()
    return machine


def _assert_spike_equivalence(reference, candidate) -> None:
    assert reference.total_spikes() == candidate.total_spikes()
    for label in reference.spike_counts:
        assert np.array_equal(reference.spike_counts[label],
                              candidate.spike_counts[label]), label
    for label in reference.spikes:
        assert sorted(reference.spikes[label]) == sorted(
            candidate.spikes[label]), label
    assert reference.synaptic_events == candidate.synaptic_events
    assert reference.delivered_charge_na == candidate.delivered_charge_na
    assert reference.packets_sent == candidate.packets_sent


def _assert_bit_identical(reference, candidate) -> None:
    assert candidate.spikes == reference.spikes
    for label in reference.spike_counts:
        assert np.array_equal(reference.spike_counts[label],
                              candidate.spike_counts[label])
    assert candidate.synaptic_events == reference.synaptic_events
    assert candidate.delivered_charge_na == reference.delivered_charge_na


def test_e19_cluster_scaling(benchmark):
    network = _build_network()

    # ------------------------------------------------------------------
    # Equivalence with the unsharded engine
    # ------------------------------------------------------------------
    unsharded_app = NeuralApplication(
        _machine(), network, max_neurons_per_core=NEURONS_PER_CORE,
        placement_strategy="round-robin", seed=SEED, transport="fabric",
        stagger_us=0.0)
    unsharded = unsharded_app.run(EQUIV_MS)
    assert unsharded.total_spikes() > 0

    cluster = ClusterApplication(
        _machine(), network, seed=SEED,
        max_neurons_per_core=NEURONS_PER_CORE,
        placement_strategy="round-robin", account_transport=True,
        profile=True)
    sharded = cluster.run(EQUIV_MS, workers=1)
    _assert_spike_equivalence(unsharded, sharded)
    assert cluster.n_boards == BOARDS_X * BOARDS_Y
    assert cluster.report.cross_board_spikes > 0
    assert cluster.report.lookahead == 1 + cluster.report.d_min

    # ------------------------------------------------------------------
    # Scaling: 4 boards, 1 worker vs a pool
    # ------------------------------------------------------------------
    serial = benchmark.pedantic(
        lambda: cluster.run(SCALING_MS, workers=1), rounds=1, iterations=1)
    serial_report = cluster.report
    pooled = cluster.run(SCALING_MS, workers=WORKERS)
    pooled_report = cluster.report
    pooled_registry = cluster.registry

    # Bit-identical results whatever the worker count...
    _assert_bit_identical(serial, pooled)
    # ...and whatever the lookahead depth: a pool exchanging every tick
    # must reproduce the full-lookahead runs exactly.
    per_tick = cluster.run(SCALING_MS, workers=WORKERS, lookahead=1)
    assert cluster.report.lookahead == 1
    _assert_bit_identical(serial, per_tick)

    measured_speedup = (serial_report.wall_s / pooled_report.wall_s
                        if pooled_report.wall_s > 0 else float("inf"))
    stage_totals = {stage: pooled_report.stage_total(stage)
                    for stage in ("compute", "serialize", "exchange",
                                  "barrier_wait")}
    overhead_s = (stage_totals["serialize"] + stage_totals["exchange"]
                  + stage_totals["barrier_wait"])
    stage_overhead_ratio = (overhead_s / stage_totals["compute"]
                            if stage_totals["compute"] > 0 else 0.0)
    metrics = {
        "boards": cluster.n_boards,
        "chips": BOARDS_X * BOARDS_Y * BOARD_W * BOARD_H,
        "vertices": sum(context.n_cores
                        for context in cluster.board_contexts.values()),
        "workers": pooled_report.workers,
        "ticks": pooled_report.n_ticks,
        "lookahead": pooled_report.lookahead,
        "d_min": pooled_report.d_min,
        "supersteps": pooled_report.supersteps,
        "total_spikes": serial.total_spikes(),
        "cross_board_spikes": pooled_report.cross_board_spikes,
        "inter_board_traversals": pooled_report.inter_board_traversals,
        "serial_wall_s": serial_report.wall_s,
        "pool_wall_s": pooled_report.wall_s,
        "measured_speedup": measured_speedup,
        "speedup_bound": pooled_report.speedup_bound,
        "compute_s": stage_totals["compute"],
        "serialize_s": stage_totals["serialize"],
        "exchange_s": stage_totals["exchange"],
        "barrier_wait_s": stage_totals["barrier_wait"],
        "parent_exchange_s": pooled_report.parent_exchange_s,
        "stage_overhead_ratio": stage_overhead_ratio,
        "exchange_segment_bytes": pooled_report.exchange_segment_bytes,
        "host_cpus": os.cpu_count() or 1,
    }
    # Stage registry of the pooled run (merged worker snapshots), as
    # profile_* keys beside the report-shaped stage totals above.
    attach_profile(metrics, pooled_registry)
    print_metrics("E19: cluster scaling (%d boards, %d workers)"
                  % (cluster.n_boards, WORKERS), metrics)
    emit_json("e19", metrics)

    # The shards must divide the compute evenly enough that a pool of
    # WORKERS workers can reach the target speedup...
    assert pooled_report.speedup_bound >= MIN_SPEEDUP
    # ... and on a host with real parallelism the pool must actually
    # beat one worker by a solid margin in wall-clock.  Single- and
    # dual-CPU hosts cannot express 4-way pool parallelism, so there
    # only the bound is asserted (E19_ASSERT_WALLCLOCK forces the
    # wall-clock gate regardless).
    if ((os.cpu_count() or 1) >= WORKERS
            or os.environ.get("E19_ASSERT_WALLCLOCK")):
        assert measured_speedup >= MIN_MEASURED_SPEEDUP
