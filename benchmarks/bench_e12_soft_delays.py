"""E12 — Soft (programmable) synaptic delays (Section 3.2).

Paper claim: electronic communication is effectively instantaneous on the
biological timescale, but biological delays are functional and "can't
simply be eliminated in the model.  Instead, they are made 'soft'" — each
synapse carries a programmable delay re-inserted algorithmically at the
target neuron.  The benchmark builds a synfire-style delay-line chain and
shows that the deferred-event model reproduces the intended propagation
timing, whereas collapsing the delays to the minimum (what instantaneous
links would give) destroys it.
"""

from __future__ import annotations

import numpy as np

from repro.neuron.connectors import OneToOneConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourceArray

from .reporting import emit_json, print_table

STAGES = 5
STAGE_DELAY_TICKS = 8
NEURONS_PER_STAGE = 20


def _build_chain(delay_ticks):
    network = Network(seed=4)
    source = SpikeSourceArray([[5.0]] * NEURONS_PER_STAGE,
                              label="chain-src-%d" % delay_ticks)
    stages = []
    previous = source
    for index in range(STAGES):
        stage = Population(NEURONS_PER_STAGE, "lif",
                           label="chain-%d-%d" % (delay_ticks, index))
        stage.record(spikes=True)
        network.connect(previous, stage,
                        OneToOneConnector(weight=10.0, delay_ticks=delay_ticks))
        stages.append(stage)
        previous = stage
    return network, stages


def _first_spike_times(result, stages):
    times = []
    for stage in stages:
        spikes = result.spikes[stage.label]
        times.append(min(t for t, _ in spikes) if spikes else float("nan"))
    return times


def _delay_ablation():
    soft_network, soft_stages = _build_chain(STAGE_DELAY_TICKS)
    soft_result = soft_network.run(150.0)
    soft_times = _first_spike_times(soft_result, soft_stages)

    collapsed_network, collapsed_stages = _build_chain(1)
    collapsed_result = collapsed_network.run(150.0)
    collapsed_times = _first_spike_times(collapsed_result, collapsed_stages)
    return soft_times, collapsed_times


def test_e12_soft_delay_model(benchmark):
    soft_times, collapsed_times = benchmark(_delay_ablation)

    rows = [(index, f"{soft:.1f}", f"{collapsed:.1f}")
            for index, (soft, collapsed)
            in enumerate(zip(soft_times, collapsed_times))]
    print_table("E12: first-spike time per chain stage (ms)", rows,
                headers=("stage", "soft delays (8 ticks/stage)",
                         "delays collapsed to 1 tick"))

    # With soft delays the wave advances ~8 ms per stage; the intervals
    # between successive stages must reflect the programmed delay.
    soft_intervals = np.diff(soft_times)
    collapsed_intervals = np.diff(collapsed_times)
    emit_json("e12", {
        "soft_span_ms": soft_times[-1] - soft_times[0],
        "collapsed_span_ms": collapsed_times[-1] - collapsed_times[0],
        "soft_mean_interval_ms": float(np.mean(soft_intervals)),
        "collapsed_mean_interval_ms":
            float(np.mean(collapsed_intervals)),
    })
    assert np.all(np.isfinite(soft_times))
    assert np.all(np.isfinite(collapsed_times))
    assert np.all(soft_intervals >= STAGE_DELAY_TICKS - 2)
    assert np.all(soft_intervals <= STAGE_DELAY_TICKS + 3)
    # Collapsing the delays (the behaviour instantaneous links would give
    # without the deferred-event model) compresses the whole wave.
    assert np.all(collapsed_intervals <= 3)
    assert (soft_times[-1] - soft_times[0]) > \
        3 * (collapsed_times[-1] - collapsed_times[0])
