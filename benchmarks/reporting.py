"""Shared helpers for the benchmark harness.

Every benchmark prints a small table of the quantities the paper reports so
that EXPERIMENTS.md can be filled in directly from the benchmark output,
and uses pytest-benchmark to time the underlying workload.  Benchmarks
that track the performance trajectory additionally call :func:`emit_json`
so CI can archive machine-readable results per run.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, Iterable, Optional, Sequence

#: Repository root — where the ``BENCH_<id>.json`` files land so CI can
#: glob and archive them as workflow artifacts.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def emit_json(bench_id: str, metrics: Dict[str, float],
              path: Optional[str] = None) -> str:
    """Write ``metrics`` to ``BENCH_<bench_id>.json`` at the repo root.

    Numeric values (NumPy scalars and booleans included) are coerced to
    ``float`` and plain strings pass through; anything else — ``None``,
    containers, arbitrary objects, or a non-finite number — raises
    immediately with the offending metric named, rather than silently
    writing a file the regression gate cannot compare.  A stale file for
    the same bench id is overwritten atomically (write + rename), so a
    crashed benchmark can never leave a half-written JSON behind.
    Returns the path written.
    """
    if not bench_id:
        raise ValueError("bench_id must be a non-empty string")
    serialised: Dict[str, object] = {}
    for name, value in metrics.items():
        if isinstance(value, str):
            serialised[name] = value
            continue
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            raise TypeError(
                "metric %r of bench %r is not JSON-serialisable: %r "
                "(pass a number or a string)" % (name, bench_id, value))
        if not math.isfinite(numeric):
            raise ValueError(
                "metric %r of bench %r is not finite: %r"
                % (name, bench_id, value))
        serialised[name] = numeric
    if path is None:
        path = os.path.join(REPO_ROOT, "BENCH_%s.json" % (bench_id,))
    staging = path + ".tmp"
    with open(staging, "w") as handle:
        json.dump({"bench": bench_id, "metrics": serialised}, handle,
                  indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(staging, path)
    return path


def attach_profile(metrics: Dict[str, float], *sources,
                   prefix: str = "profile_") -> Dict[str, float]:
    """Fold stage-profiler timings into a bench's metrics dict.

    The one hook through which ``repro.profile`` stage registries reach
    the BENCH JSONs: each source (a ``ProfileRegistry``, or anything
    with a ``flatten(prefix)``) contributes its ``profile_<stage>_s`` /
    ``_self_s`` / ``_calls`` keys; with no sources the process-global
    registry is used when it is enabled (so ``REPRO_PROFILE=1`` runs
    emit stage keys and unprofiled runs emit none).  Keys already in
    ``metrics`` are not overwritten — a bench's own figure wins.
    Returns ``metrics`` for chaining into :func:`emit_json`.
    """
    from repro import profile

    registries = list(sources)
    if not registries:
        global_registry = profile.get_registry()
        if global_registry.enabled:
            registries = [global_registry]
    for registry in registries:
        if registry is None:
            continue
        for name, value in registry.flatten(prefix).items():
            metrics.setdefault(name, value)
    return metrics


def print_table(title: str, rows: Iterable[Sequence], headers: Sequence[str]) -> None:
    """Print a fixed-width results table to the benchmark log."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
              else len(headers[i]) for i in range(len(headers))]
    print("\n== %s ==" % title)
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def print_metrics(title: str, metrics: Dict[str, float]) -> None:
    """Print a name/value metric block to the benchmark log."""
    print_table(title, [(name, _format(value)) for name, value in metrics.items()],
                headers=("metric", "value"))


def _format(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return "%.3e" % value
        return "%.4g" % value
    return str(value)
