"""Shared helpers for the benchmark harness.

Every benchmark prints a small table of the quantities the paper reports so
that EXPERIMENTS.md can be filled in directly from the benchmark output,
and uses pytest-benchmark to time the underlying workload.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence


def print_table(title: str, rows: Iterable[Sequence], headers: Sequence[str]) -> None:
    """Print a fixed-width results table to the benchmark log."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
              else len(headers[i]) for i in range(len(headers))]
    print("\n== %s ==" % title)
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def print_metrics(title: str, metrics: Dict[str, float]) -> None:
    """Print a name/value metric block to the benchmark log."""
    print_table(title, [(name, _format(value)) for name, value in metrics.items()],
                headers=("metric", "value"))


def _format(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return "%.3e" % value
        return "%.4g" % value
    return str(value)
