"""Shared helpers for the benchmark harness.

Every benchmark prints a small table of the quantities the paper reports so
that EXPERIMENTS.md can be filled in directly from the benchmark output,
and uses pytest-benchmark to time the underlying workload.  Benchmarks
that track the performance trajectory additionally call :func:`emit_json`
so CI can archive machine-readable results per run.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional, Sequence

#: Repository root — where the ``BENCH_<id>.json`` files land so CI can
#: glob and archive them as workflow artifacts.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def emit_json(bench_id: str, metrics: Dict[str, float],
              path: Optional[str] = None) -> str:
    """Write ``metrics`` to ``BENCH_<bench_id>.json`` at the repo root.

    Values are coerced to ``float`` where possible (NumPy scalars
    included) and to ``str`` otherwise, so every benchmark can pass its
    metric dict unfiltered.  Returns the path written.
    """
    serialised: Dict[str, object] = {}
    for name, value in metrics.items():
        try:
            serialised[name] = float(value)
        except (TypeError, ValueError):
            serialised[name] = str(value)
    if path is None:
        path = os.path.join(REPO_ROOT, "BENCH_%s.json" % (bench_id,))
    with open(path, "w") as handle:
        json.dump({"bench": bench_id, "metrics": serialised}, handle,
                  indent=2, sort_keys=True)
        handle.write("\n")
    return path


def print_table(title: str, rows: Iterable[Sequence], headers: Sequence[str]) -> None:
    """Print a fixed-width results table to the benchmark log."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    headers = [str(h) for h in headers]
    widths = [max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
              else len(headers[i]) for i in range(len(headers))]
    print("\n== %s ==" % title)
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def print_metrics(title: str, metrics: Dict[str, float]) -> None:
    """Print a name/value metric block to the benchmark log."""
    print_table(title, [(name, _format(value)) for name, value in metrics.items()],
                headers=("metric", "value"))


def _format(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return "%.3e" % value
        return "%.4g" % value
    return str(value)
