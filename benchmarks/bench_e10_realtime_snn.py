"""E10 — Real-time event-driven spiking neural simulation (Fig. 7, Sec 3.1).

Paper claims: neuron state is integrated on a 1 ms timer interrupt, spike
packets are delivered well within the 1 ms window, and the system-wide
(approximate) synchrony is just a side-effect of every core running the
same 1 ms tick — there is no global synchronisation.  The benchmark runs a
stimulus-driven recurrent network on the machine model and checks the
real-time bookkeeping, comparing against the host reference simulator.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import latency_summary
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController

from .reporting import emit_json, print_metrics, print_table

DURATION_MS = 300.0


def _build_network(seed, suffix):
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(80, rate_hz=50.0, label="stim-%s" % suffix)
    excitatory = Population(160, "lif", label="exc-%s" % suffix)
    inhibitory = Population(40, "lif", label="inh-%s" % suffix)
    excitatory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(0.15, weight=0.9,
                                              delay_range=(1, 8)))
    network.connect(excitatory, inhibitory,
                    FixedProbabilityConnector(0.1, weight=0.5))
    network.connect(inhibitory, excitatory,
                    FixedProbabilityConnector(0.2, weight=-0.5))
    return network


def _run_realtime():
    machine = SpiNNakerMachine(MachineConfig(width=4, height=4,
                                             cores_per_chip=6))
    BootController(machine, seed=5).boot()
    application = NeuralApplication(machine, _build_network(55, "machine"),
                                    max_neurons_per_core=16, seed=55)
    machine_result = application.run(DURATION_MS)

    reference_result = _build_network(55, "ref").run(DURATION_MS)

    utilisations = [runtime.core.utilisation(machine.kernel.now)
                    for runtime in application.core_runtimes]
    return machine_result, reference_result, utilisations


def test_e10_realtime_snn(benchmark):
    machine_result, reference_result, utilisations = benchmark(_run_realtime)

    latency = latency_summary(machine_result.delivery_latencies_us)
    print_table("E10: on-machine vs reference simulation (%.0f ms)" % DURATION_MS,
                [("on-machine",
                  machine_result.total_spikes("exc-machine"),
                  f"{machine_result.mean_rate_hz('exc-machine'):.2f}",
                  machine_result.packets_sent, machine_result.packets_dropped),
                 ("host reference",
                  reference_result.total_spikes("exc-ref"),
                  f"{reference_result.mean_rate_hz('exc-ref'):.2f}", "-", "-")],
                headers=("simulator", "exc spikes", "exc rate (Hz)",
                         "packets", "dropped"))
    print_metrics("E10: real-time bookkeeping", {
        "spike deliveries": latency.count,
        "mean delivery latency (us)": latency.mean_us,
        "p99 delivery latency (us)": latency.p99_us,
        "max delivery latency (us)": latency.max_us,
        "fraction within 1 ms deadline":
            machine_result.within_deadline_fraction(1000.0),
        "mean core utilisation": float(np.mean(utilisations)),
        "max core utilisation": float(np.max(utilisations)),
    })

    emit_json("e10", {
        "spike_deliveries": latency.count,
        "mean_delivery_latency_us": latency.mean_us,
        "p99_delivery_latency_us": latency.p99_us,
        "max_delivery_latency_us": latency.max_us,
        "within_deadline_fraction":
            machine_result.within_deadline_fraction(1000.0),
        "mean_core_utilisation": float(np.mean(utilisations)),
        "max_core_utilisation": float(np.max(utilisations)),
    })

    # Shape checks: everything arrives well inside the 1 ms window, no
    # packets are lost, the cores have head-room (the "lightly-loaded
    # regime"), and the on-machine dynamics track the reference simulator.
    assert machine_result.within_deadline_fraction(1000.0) == 1.0
    assert latency.max_us < 1000.0
    assert machine_result.packets_dropped == 0
    assert float(np.max(utilisations)) < 0.9
    machine_rate = machine_result.mean_rate_hz("exc-machine")
    reference_rate = reference_result.mean_rate_hz("exc-ref")
    assert reference_rate > 0
    assert abs(machine_rate - reference_rate) / reference_rate < 0.5
