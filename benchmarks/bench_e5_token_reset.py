"""E5 — Single-token link reset protocol (Section 5.1).

Paper claim: resetting one end of the inter-chip link risks destroying the
single circulating token (deadlock) or duplicating it (malfunction);
SpiNNaker has both ends inject a token on reset exit and relies on the
Figure 6 circuit to absorb the surplus, so any reset pattern converges back
to exactly one token with data still flowing.
"""

from __future__ import annotations

from repro.link.channel import TokenChannel

from .reporting import emit_json, print_table

RESETS = 500


def _reset_storms():
    with_injection = TokenChannel.reset_storm(RESETS, inject_token_on_exit=True,
                                              seed=11)
    without_injection = TokenChannel.reset_storm(RESETS,
                                                 inject_token_on_exit=False,
                                                 seed=11)
    return with_injection, without_injection


def test_e5_token_reset_protocol(benchmark):
    with_injection, without_injection = benchmark(_reset_storms)

    print_table("E5: reset storm (%d random resets)" % RESETS,
                [("SpiNNaker (inject on reset exit)",
                  int(with_injection["deadlocks"]),
                  f"{with_injection['deadlock_fraction']:.3f}",
                  int(with_injection["symbols_transferred"])),
                 ("naive (no injection)",
                  int(without_injection["deadlocks"]),
                  f"{without_injection['deadlock_fraction']:.3f}",
                  int(without_injection["symbols_transferred"]))],
                headers=("protocol", "deadlocks", "deadlock fraction",
                         "symbols transferred"))

    emit_json("e5", {
        "with_injection_deadlocks": with_injection["deadlocks"],
        "without_injection_deadlock_fraction":
            without_injection["deadlock_fraction"],
        "with_injection_symbols": with_injection["symbols_transferred"],
        "without_injection_symbols":
            without_injection["symbols_transferred"],
    })

    assert with_injection["deadlocks"] == 0.0
    assert without_injection["deadlock_fraction"] > 0.3
    assert with_injection["symbols_transferred"] > \
        without_injection["symbols_transferred"]
