"""A4 (ablation) — GALS clocking and per-domain DVFS under process spread.

Design choice examined: Section 4 argues that the GALS organisation
"decouples the clocks and power supply voltages at each of the clocked
submodules, offering flexibility ... in coping with, and optimizing for,
the increasing process variability expected in future deep submicron
manufacturing processes".  The ablation quantifies both halves of the
argument: the throughput retained under process spread with and without
independent clock domains, and the dynamic-power saving available when
lightly-loaded cores are slowed to just meet the 1 ms real-time deadline.
"""

from __future__ import annotations

from repro.core.clock import DEFAULT_CORE_FREQUENCY_MHZ, ClockDomain
from repro.energy.scaling import DVFSPolicy, VariabilityStudy

from .reporting import emit_json, print_table

SIGMAS = (0.0, 0.05, 0.10, 0.20)
TRIALS = 200
#: Per-core work levels, as fractions of the nominal 1 ms cycle budget.
LOAD_FRACTIONS = (0.1, 0.25, 0.5, 0.9)


def _variability_and_dvfs():
    study = VariabilityStudy(n_domains=20, seed=7)
    sweep = study.sweep(SIGMAS, trials=TRIALS)

    policy = DVFSPolicy(safety_margin=0.1, minimum_fraction=0.1)
    nominal_cycles = DEFAULT_CORE_FREQUENCY_MHZ * policy.tick_us
    dvfs_rows = []
    for load in LOAD_FRACTIONS:
        domain = ClockDomain(name="core",
                             nominal_frequency_mhz=DEFAULT_CORE_FREQUENCY_MHZ)
        decision = policy.decide(domain, load * nominal_cycles)
        dvfs_rows.append({"load": load,
                          "frequency_fraction": decision.frequency_fraction,
                          "power_fraction": decision.power_fraction})
    return sweep, dvfs_rows


def test_a4_gals_and_dvfs(benchmark):
    sweep, dvfs_rows = benchmark(_variability_and_dvfs)

    print_table("A4a: GALS vs single global clock under process spread "
                "(20 domains, %d dies per point)" % TRIALS,
                [("%.0f %%" % (sigma * 100),
                  "%.0f" % sweep[sigma]["gals_throughput_mhz"],
                  "%.0f" % sweep[sigma]["global_clock_throughput_mhz"],
                  "%.3f" % sweep[sigma]["mean_advantage"])
                 for sigma in SIGMAS],
                headers=("sigma", "GALS throughput (MHz)",
                         "global-clock throughput (MHz)", "GALS advantage"))
    print_table("A4b: per-domain DVFS on the 1 ms real-time tick",
                [("%.0f %%" % (row["load"] * 100),
                  "%.2f" % row["frequency_fraction"],
                  "%.3f" % row["power_fraction"])
                 for row in dvfs_rows],
                headers=("core load", "frequency fraction", "dynamic power"))

    # GALS never loses, and its advantage grows monotonically with spread.
    advantages = [sweep[sigma]["mean_advantage"] for sigma in SIGMAS]
    emit_json("a4", {
        "gals_advantage_no_spread": advantages[0],
        "gals_advantage_max_spread": advantages[-1],
        "dvfs_low_load_power_fraction": dvfs_rows[0]["power_fraction"],
        "dvfs_full_load_frequency_fraction":
            dvfs_rows[-1]["frequency_fraction"],
    })
    assert advantages[0] == 1.0
    assert all(later >= earlier for earlier, later
               in zip(advantages, advantages[1:]))
    assert advantages[-1] > 1.05
    # DVFS: a 10 %-loaded core draws well under a tenth of nominal dynamic
    # power, and a nearly-full core stays at nominal frequency.
    assert dvfs_rows[0]["power_fraction"] < 0.1
    assert dvfs_rows[-1]["frequency_fraction"] == 1.0
