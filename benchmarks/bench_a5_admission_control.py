"""A5 (ablation) — QoS admission control on the best-effort fabric (ref [12]).

Design choice examined: Section 4 notes that "the GALS approach is also
capable of supporting traffic service management [12]".  The ablation
subjects a chip's injection port to a best-effort flood with and without
the admission controller in front of it and measures what happens to the
reserved real-time spike traffic.
"""

from __future__ import annotations

from repro.core.admission import (
    BEST_EFFORT,
    AdmissionController,
    TrafficClass,
)

from .reporting import emit_json, print_table

SIMULATED_MS = 50
REALTIME_RATE = 20.0          # packets/ms a core's neurons are entitled to
FLOOD_RATE = 400              # best-effort packets offered per millisecond
LINK_CAPACITY = 100.0         # packets/ms the chip's links can carry


def _run_window(with_admission_control):
    realtime = TrafficClass(name="realtime-spikes",
                            guaranteed_rate_packets_per_ms=REALTIME_RATE,
                            burst_packets=8, priority=1)
    controller = AdmissionController(
        link_capacity_packets_per_ms=LINK_CAPACITY,
        reservable_fraction=0.75)
    if with_admission_control:
        controller.register("neural-core", realtime)

    realtime_admitted = 0
    flood_admitted = 0
    realtime_offered = 0
    for step in range(SIMULATED_MS * 10):
        now = step * 0.1
        flood_admitted += controller.admit_burst("noisy-core", "best-effort",
                                                 now, FLOOD_RATE // 10)
        offered = int(REALTIME_RATE / 10)
        realtime_offered += offered
        for _ in range(offered):
            decision = controller.request("neural-core",
                                          "realtime-spikes" if
                                          with_admission_control else
                                          "best-effort", now)
            if decision.admitted:
                realtime_admitted += 1
    return {
        "realtime_offered": realtime_offered,
        "realtime_admitted": realtime_admitted,
        "realtime_fraction": realtime_admitted / max(1, realtime_offered),
        "flood_admitted": flood_admitted,
        "total_admitted_per_ms": (realtime_admitted + flood_admitted)
        / SIMULATED_MS,
    }


def _admission_study():
    return {
        "admission control ON": _run_window(True),
        "admission control OFF": _run_window(False),
    }


def test_a5_admission_control(benchmark):
    results = benchmark(_admission_study)
    rows = [(name, s["realtime_offered"], s["realtime_admitted"],
             "%.3f" % s["realtime_fraction"], s["flood_admitted"],
             "%.1f" % s["total_admitted_per_ms"])
            for name, s in results.items()]
    print_table("A5: %d ms of best-effort flood (%d pkts/ms offered) against "
                "a %g pkts/ms real-time reservation"
                % (SIMULATED_MS, FLOOD_RATE, REALTIME_RATE), rows,
                headers=("scenario", "rt offered", "rt admitted",
                         "rt fraction", "flood admitted", "admitted/ms"))

    protected = results["admission control ON"]
    unprotected = results["admission control OFF"]
    emit_json("a5", {
        "protected_realtime_fraction": protected["realtime_fraction"],
        "unprotected_realtime_fraction":
            unprotected["realtime_fraction"],
        "protected_admitted_per_ms": protected["total_admitted_per_ms"],
        "unprotected_admitted_per_ms":
            unprotected["total_admitted_per_ms"],
    })
    # With a reservation the real-time traffic gets essentially all of its
    # contracted rate despite the flood; without one it fights the flood for
    # spare capacity and loses a substantial share.
    assert protected["realtime_fraction"] > 0.95
    assert unprotected["realtime_fraction"] < protected["realtime_fraction"]
    # The controller never admits more than the link can carry.
    assert protected["total_admitted_per_ms"] <= LINK_CAPACITY * 1.05
    assert unprotected["total_admitted_per_ms"] <= LINK_CAPACITY * 1.05
