"""A3 (ablation) — MLP connectivity and number-format ablation (reference [3]).

Design choice examined: the paper plans to apply the architecture to "other
important neural models [3]"; reference [3] studies MLPs whose fan-in is
bounded by the per-core memory and whose weights live in ARM fixed-point
registers.  This ablation trains the same MLP on a synthetic task under a
sweep of fan-in caps and weight formats, and reports the accuracy cost of
each hardware constraint.
"""

from __future__ import annotations

from repro.neuron.mlp import (
    MLP,
    FixedPointFormat,
    synthetic_classification_task,
)

from .reporting import emit_json, print_table

LAYERS = [16, 32, 4]
EPOCHS = 40
FAN_INS = (None, 8, 4, 2)
FORMATS = {
    "float": None,
    "s8.7 (16-bit)": FixedPointFormat(integer_bits=8, fractional_bits=7),
    "s4.3 (8-bit)": FixedPointFormat(integer_bits=4, fractional_bits=3),
    "s1.0 (2-bit)": FixedPointFormat(integer_bits=1, fractional_bits=0),
}


def _fan_in_sweep():
    inputs, labels = synthetic_classification_task(
        n_classes=LAYERS[-1], n_features=LAYERS[0], n_samples_per_class=50,
        noise=0.25, seed=13)
    fan_in_rows = []
    reference = None
    for fan_in in FAN_INS:
        mlp = MLP(LAYERS, fan_in=fan_in, seed=13)
        result = mlp.train(inputs, labels, epochs=EPOCHS, learning_rate=0.3,
                           seed=13)
        fan_in_rows.append({
            "fan_in": "full" if fan_in is None else fan_in,
            "connections": mlp.total_connections(),
            "accuracy": result.final_accuracy,
        })
        if fan_in is None:
            reference = mlp
    format_rows = []
    for name, weight_format in FORMATS.items():
        model = reference if weight_format is None else reference.quantised(
            weight_format)
        format_rows.append({"format": name,
                            "accuracy": model.accuracy(inputs, labels)})
    return fan_in_rows, format_rows


def test_a3_mlp_fan_in_and_precision(benchmark):
    fan_in_rows, format_rows = benchmark(_fan_in_sweep)

    print_table("A3a: accuracy vs hidden-layer fan-in (%s MLP, %d epochs)"
                % ("x".join(str(s) for s in LAYERS), EPOCHS),
                [(row["fan_in"], row["connections"], "%.3f" % row["accuracy"])
                 for row in fan_in_rows],
                headers=("fan-in cap", "synapses", "train accuracy"))
    print_table("A3b: accuracy vs weight number format (fully-connected MLP)",
                [(row["format"], "%.3f" % row["accuracy"])
                 for row in format_rows],
                headers=("weight format", "train accuracy"))

    by_fan_in = {row["fan_in"]: row for row in fan_in_rows}
    by_format = {row["format"]: row for row in format_rows}
    emit_json("a3", {
        "accuracy_full_fan_in": by_fan_in["full"]["accuracy"],
        "accuracy_fan_in_8": by_fan_in[8]["accuracy"],
        "accuracy_fan_in_2": by_fan_in[2]["accuracy"],
        "accuracy_float": by_format["float"]["accuracy"],
        "accuracy_16bit_fixed": by_format["s8.7 (16-bit)"]["accuracy"],
        "accuracy_2bit_fixed": by_format["s1.0 (2-bit)"]["accuracy"],
    })

    # The dense network learns the task and moderate sparsity is nearly free
    # (the "optimal connectivity" claim of reference [3]): a fan-in of 8 out
    # of 16 inputs keeps almost all of the accuracy with half the synapses.
    assert by_fan_in["full"]["accuracy"] > 0.9
    assert by_fan_in[8]["accuracy"] > by_fan_in["full"]["accuracy"] - 0.1
    assert by_fan_in[8]["connections"] < by_fan_in["full"]["connections"]
    # Extreme sparsity costs accuracy.
    assert by_fan_in[2]["accuracy"] <= by_fan_in["full"]["accuracy"]
    # 16-bit fixed point is accuracy-neutral; 2-bit weights are not.
    assert by_format["s8.7 (16-bit)"]["accuracy"] > \
        by_format["float"]["accuracy"] - 0.05
    assert by_format["s1.0 (2-bit)"]["accuracy"] < \
        by_format["float"]["accuracy"]
