"""E15 — Machine-scale arithmetic (Introduction, Section 3.3, Conclusions).

Paper claims: the full machine has more than a million ARM cores in a
two-dimensional toroidal mesh, delivers around 200 teraIPS, simulates a
billion spiking neurons in biological real time (about 1 % of the human
brain), and each 20-core node costs around $20 and draws under 1 W.
"""

from __future__ import annotations

from repro.core.machine import MachineConfig
from repro.energy.model import MachineScaleModel

from .reporting import emit_json, print_metrics


def _scale_summary():
    config = MachineConfig.full_machine()
    scale = MachineScaleModel()
    summary = scale.summary()
    summary["config_chips"] = float(config.n_chips)
    summary["config_cores"] = float(config.n_cores)
    summary["config_links"] = float(config.n_links)
    summary["node_power_w"] = scale.node_power_w
    summary["node_cost_usd"] = scale.node_cost_usd
    return summary


def test_e15_system_scale(benchmark):
    summary = benchmark(_scale_summary)
    print_metrics("E15: full-machine scale accounting", summary)

    emit_json("e15", summary)

    # "more than a million embedded processors"
    assert summary["config_cores"] > 1_000_000
    assert summary["total_cores"] > 1_000_000
    # "around 200 teraIPS"
    assert 100.0 < summary["total_tera_ips"] < 400.0
    # "a billion spiking neurons ... only 1% of a human brain"
    assert summary["total_neurons"] >= 1e9
    assert 0.005 < summary["brain_fraction"] < 0.02
    # "a component cost of around $20 and a power consumption under 1 Watt"
    assert summary["node_cost_usd"] <= 25.0
    assert summary["node_power_w"] < 1.0
    # The 2-D toroidal mesh wiring: six links per chip.
    assert summary["config_links"] == summary["config_chips"] * 6
