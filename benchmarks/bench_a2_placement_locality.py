"""A2 (ablation) — Placement locality versus round-robin scattering.

Design choice examined: Section 3.2 notes that although any neuron can be
mapped onto any processor, "it is likely to be beneficial to map neurons
that are physically close in biology to proximal locations in SpiNNaker as
this will minimize routing costs, but it is not necessary to do so".  The
ablation runs the same network under the locality-aware placer and under a
round-robin placer that deliberately scatters connected populations, and
compares link traffic, delivery latency and energy.
"""

from __future__ import annotations

from repro.analysis.congestion import congestion_report
from repro.analysis.traffic import link_traffic_summary
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController

from .reporting import emit_json, print_table

DURATION_MS = 80.0
NEURONS = 120


def _network(seed):
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(NEURONS, rate_hz=60.0, label="a2-stim")
    relay = Population(NEURONS, "lif", label="a2-relay")
    output = Population(NEURONS, "lif", label="a2-output")
    relay.record(spikes=True)
    output.record(spikes=True)
    network.connect(stimulus, relay,
                    FixedProbabilityConnector(p_connect=0.15, weight=0.8,
                                              delay_range=(1, 3)))
    network.connect(relay, output,
                    FixedProbabilityConnector(p_connect=0.1, weight=0.7,
                                              delay_range=(1, 3)))
    return network


def _run(strategy, seed=41):
    machine = SpiNNakerMachine(MachineConfig(width=4, height=4,
                                             cores_per_chip=6))
    BootController(machine, seed=1).boot()
    application = NeuralApplication(machine, _network(seed),
                                    max_neurons_per_core=16,
                                    placement_strategy=strategy, seed=seed)
    result = application.run(DURATION_MS)
    traffic = link_traffic_summary(machine)
    report = congestion_report(machine)
    return {
        "spikes": result.total_spikes(),
        "link_packets": traffic.total_packets,
        "mean_latency_us": result.mean_delivery_latency_us(),
        "max_latency_us": result.max_delivery_latency_us(),
        "peak_utilisation": report.peak_utilisation,
        "dropped": result.packets_dropped,
    }


def _locality_study():
    return {"locality": _run("locality"), "round-robin": _run("round-robin")}


def test_a2_placement_locality(benchmark):
    results = benchmark(_locality_study)
    rows = [(name, s["spikes"], s["link_packets"],
             "%.1f" % s["mean_latency_us"], "%.1f" % s["max_latency_us"],
             "%.3f" % s["peak_utilisation"], s["dropped"])
            for name, s in results.items()]
    print_table("A2: placement strategy ablation (%.0f ms, %d-neuron "
                "three-layer network)" % (DURATION_MS, 3 * NEURONS), rows,
                headers=("placement", "spikes", "link packets",
                         "mean latency (us)", "max latency (us)",
                         "peak link load", "dropped"))

    locality = results["locality"]
    scattered = results["round-robin"]
    emit_json("a2", {
        "locality_link_packets": locality["link_packets"],
        "round_robin_link_packets": scattered["link_packets"],
        "locality_max_latency_us": locality["max_latency_us"],
        "round_robin_max_latency_us": scattered["max_latency_us"],
        "locality_dropped": locality["dropped"],
    })
    # Both placements are functionally correct (virtualised topology) ...
    assert locality["spikes"] > 0
    assert scattered["spikes"] > 0
    assert locality["dropped"] == 0
    # ... but the locality-aware placement uses no more link bandwidth and
    # no higher worst-case latency than the scattered one.
    assert locality["link_packets"] <= scattered["link_packets"]
    assert locality["max_latency_us"] <= scattered["max_latency_us"] * 1.5
    assert locality["max_latency_us"] < 1000.0
