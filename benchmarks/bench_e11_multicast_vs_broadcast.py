"""E11 — Multicast routing versus bus-style broadcast AER (Section 4).

Paper claim: "In the past AER has been used principally in bus-based
broadcast communication between neurons, but here we employ a
packet-switched multicast mechanism to reduce total communication loading."
The benchmark runs the same network with multicast-tree routing tables and
with broadcast (flood-to-every-chip) tables and compares link traffic.
"""

from __future__ import annotations

from repro.analysis.traffic import link_traffic_summary
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController

from .reporting import emit_json, print_table

DURATION_MS = 150.0


def _build_network(seed, suffix):
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(60, rate_hz=60.0, label="b-stim-%s" % suffix)
    excitatory = Population(120, "lif", label="b-exc-%s" % suffix)
    excitatory.record()
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(0.15, weight=0.9,
                                              delay_range=(1, 4)))
    network.connect(excitatory, excitatory,
                    FixedProbabilityConnector(0.05, weight=0.3))
    return network


def _run(broadcast, suffix):
    machine = SpiNNakerMachine(MachineConfig(width=6, height=6,
                                             cores_per_chip=4))
    BootController(machine, seed=9).boot()
    application = NeuralApplication(machine, _build_network(66, suffix),
                                    max_neurons_per_core=16, seed=66)
    application.prepare(broadcast_routing=broadcast)
    result = application.run(DURATION_MS)
    traffic = link_traffic_summary(machine)
    return result, traffic


def _compare():
    multicast_result, multicast_traffic = _run(False, "mc")
    broadcast_result, broadcast_traffic = _run(True, "bc")
    return (multicast_result, multicast_traffic,
            broadcast_result, broadcast_traffic)


def test_e11_multicast_vs_broadcast(benchmark):
    (multicast_result, multicast_traffic,
     broadcast_result, broadcast_traffic) = benchmark(_compare)

    rows = [
        ("multicast trees", multicast_result.packets_sent,
         multicast_traffic.total_packets, multicast_traffic.active_links,
         multicast_traffic.max_link_packets,
         f"{multicast_traffic.total_packets / max(multicast_result.packets_sent, 1):.2f}"),
        ("broadcast (bus-style AER)", broadcast_result.packets_sent,
         broadcast_traffic.total_packets, broadcast_traffic.active_links,
         broadcast_traffic.max_link_packets,
         f"{broadcast_traffic.total_packets / max(broadcast_result.packets_sent, 1):.2f}"),
    ]
    print_table("E11: link traffic, multicast vs broadcast (6x6 machine, "
                "%.0f ms)" % DURATION_MS, rows,
                headers=("routing", "spike packets", "link transits",
                         "active links", "busiest link", "transits/packet"))

    # Both configurations deliver a comparable amount of neural activity.
    assert multicast_result.total_spikes("b-exc-mc") > 0
    assert broadcast_result.total_spikes("b-exc-bc") > 0
    # Broadcast floods the whole torus, so its per-packet link loading is
    # several times that of the multicast trees.
    multicast_per_packet = (multicast_traffic.total_packets /
                            max(multicast_result.packets_sent, 1))
    broadcast_per_packet = (broadcast_traffic.total_packets /
                            max(broadcast_result.packets_sent, 1))
    emit_json("e11", {
        "multicast_transits_per_packet": multicast_per_packet,
        "broadcast_transits_per_packet": broadcast_per_packet,
        "multicast_link_transits": multicast_traffic.total_packets,
        "broadcast_link_transits": broadcast_traffic.total_packets,
    })
    assert broadcast_per_packet > 3.0 * multicast_per_packet
