"""E18 — Pass-based mapping compiler: cold compile vs incremental re-map.

The paper's tool-chain compiles a network description into per-core
routing tables and synaptic data before a run; its fault story (map out
a suspect chip, carry on) only works in real time if a re-map costs far
less than the original compile.  This benchmark compiles a 48-chip
workload cold through `repro.compile`, condemns one populated chip via
the monitor, and measures the incremental re-map the pipeline performs —
asserting it beats a full recompile by at least 5x (the cached
expansion, reach and packed-block artifacts make the re-map touch only
the displaced vertices).
"""

from __future__ import annotations

import time

from repro.compile import MappingPipeline
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.boot import BootController
from repro.runtime.monitor import MonitorService

from .reporting import attach_profile, emit_json, print_metrics, print_table

SEED = 18
WIDTH, HEIGHT = 8, 6            # 48 chips
CORES_PER_CHIP = 4              # 1 monitor + 3 application cores per chip
N_PAIRS = 14                    # stimulus -> excitatory population pairs
NEURONS = 256
NEURONS_PER_CORE = 64
MIN_SPEEDUP = 5.0


def _build_network() -> Network:
    network = Network(seed=SEED)
    for pair in range(N_PAIRS):
        stimulus = SpikeSourcePoisson(NEURONS, rate_hz=40.0,
                                      label="m-stim-%d" % pair)
        excitatory = Population(NEURONS, "lif", label="m-exc-%d" % pair)
        network.connect(stimulus, excitatory,
                        FixedProbabilityConnector(0.25, weight=0.2,
                                                  delay_range=(1, 8)))
        network.connect(excitatory, excitatory,
                        FixedProbabilityConnector(0.05, weight=0.05,
                                                  delay_range=(1, 16)))
    return network


def _machine() -> SpiNNakerMachine:
    machine = SpiNNakerMachine(MachineConfig(width=WIDTH, height=HEIGHT,
                                             cores_per_chip=CORES_PER_CHIP))
    BootController(machine, seed=1).boot()
    return machine


def _cold_compile():
    machine = _machine()
    pipeline = MappingPipeline(machine, _build_network(), seed=SEED,
                               max_neurons_per_core=NEURONS_PER_CORE)
    began = time.perf_counter()
    pipeline.run()
    return pipeline, machine, time.perf_counter() - began


def test_e18_mapping_pipeline(benchmark):
    pipeline, machine, cold_s = benchmark.pedantic(
        _cold_compile, rounds=1, iterations=1)
    ctx = pipeline.ctx
    n_vertices = len(ctx.placement.locations)
    assert n_vertices == 2 * 4 * N_PAIRS

    # Condemn the last populated chip (in raster order) and re-map.
    victim = ctx.placement.chips_used()[-1]
    displaced = sum(1 for chip, _ in ctx.placement.locations.values()
                    if chip == victim)
    assert displaced > 0
    MonitorService(machine).condemn_chip(victim)
    began = time.perf_counter()
    pipeline.run()
    remap_s = time.perf_counter() - began
    assert victim not in ctx.placement.chips_used()

    speedup = cold_s / remap_s if remap_s > 0 else float("inf")
    report_rows = [(row["pass"], row["runs"], row["cache_hits"],
                    row["last_scope"], "%.2f" % row["last_ms"],
                    "%.2f" % row["total_ms"])
                   for row in pipeline.report()]
    print_table("E18: per-pass timings after cold compile + re-map",
                report_rows,
                headers=("pass", "runs", "hits", "last scope",
                         "last ms", "total ms"))
    hits = sum(row["cache_hits"] for row in pipeline.report())
    considered = sum(row["cache_hits"] + row["runs"]
                     for row in pipeline.report())
    metrics = {
        "chips": WIDTH * HEIGHT,
        "vertices": n_vertices,
        "displaced_vertices": displaced,
        "routing_entries": ctx.routing_summary.entries_after_minimisation,
        "cold_compile_ms": cold_s * 1000.0,
        "incremental_remap_ms": remap_s * 1000.0,
        "remap_speedup": speedup,
        "pass_cache_hit_rate": hits / considered,
    }
    # The pipeline's always-on stage registry: per-pass seconds plus the
    # gated profile_pass_total_s roll-up (and the global registry's
    # stages when REPRO_PROFILE=1).
    attach_profile(metrics, pipeline.profile)
    attach_profile(metrics)
    print_metrics("E18: mapping-pipeline compile times "
                  "(48 chips, %d vertices)" % n_vertices, metrics)
    emit_json("e18", metrics)

    # The incremental re-map must be dramatically cheaper than the cold
    # compile, and must not have recompiled the world.
    assert speedup >= MIN_SPEEDUP
    assert pipeline.records["partition"].cache_hits >= 1
    assert "full" not in pipeline.records["synaptic-matrices"].last_scope
