#!/usr/bin/env python
"""Benchmark perf-regression gate.

Compares freshly emitted ``BENCH_<id>.json`` files (written at the repo
root by the benchmarks' ``reporting.emit_json``) against the checked-in
baselines under ``benchmarks/baselines/``.  Each bench gates a small set
of *key metrics* with a direction (higher- or lower-is-better); a metric
that moved in the worse direction by more than the tolerance (25 % by
default) fails the build with a clear diff, while a large *improvement*
is only flagged as a hint to refresh the baseline.

Updating a baseline is deliberate and reviewed: run the benchmark
locally (or download the CI artifact), copy the fresh ``BENCH_<id>.json``
over ``benchmarks/baselines/BENCH_<id>.json`` and commit it with a note
explaining the shift.

Usage::

    python benchmarks/check_regression.py
    python benchmarks/check_regression.py --tolerance 0.10 --bench e16
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

DEFAULT_TOLERANCE = 0.25
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "baselines")


@dataclass(frozen=True)
class GatedMetric:
    """One gated metric of a bench, with its improvement direction.

    ``tolerance`` overrides the gate-wide tolerance for this metric
    alone — used for inherently noisier figures (stage-timing ratios
    move with scheduler jitter far more than algorithmic speedups do)
    so they can be gated loosely without loosening the whole gate.
    """

    name: str
    higher_is_better: bool = True
    tolerance: Optional[float] = None


#: The key metrics gated per bench.  Deliberately a small set of
#: *ratio* figures (speedups, hit rates): ratios compare a workload
#: against a same-machine reference, so they hold across runner
#: generations, while absolute events/s or wall-clock milliseconds move
#: with the hardware and would trip the gate on every runner refresh.
KEY_METRICS: Dict[str, Tuple[GatedMetric, ...]] = {
    "e16": (GatedMetric("speedup"),),
    "e17": (GatedMetric("speedup"),),
    # profile_pass_total_s is the compile pipeline's whole-pass stage
    # roll-up from repro.profile — an absolute-seconds figure against
    # the gate's ratio philosophy, so it carries the loose stage-timing
    # tolerance: it exists to catch a pass going several times slower,
    # not runner-to-runner drift.
    "e18": (GatedMetric("remap_speedup"),
            GatedMetric("pass_cache_hit_rate"),
            GatedMetric("profile_pass_total_s", higher_is_better=False,
                        tolerance=1.5)),
    # e19 gates the load-balance bound plus the exchange-overhead ratio
    # (worker seconds spent serialising/exchanging/waiting per second of
    # compute).  The ratio is scheduler-sensitive, so it carries a loose
    # per-metric tolerance instead of the gate-wide one.
    "e19": (GatedMetric("speedup_bound"),
            GatedMetric("stage_overhead_ratio", higher_is_better=False,
                        tolerance=1.5)),
    # e20 gates the fused engine's serial per-tick compute ratio over
    # the per-core reference (jitter-suppressed best-of-rounds, so the
    # default tolerance holds) and its bit-identity verdict, whose 1.0
    # baseline means any divergence trips the gate outright.
    # profile_compute_s is the pooled workers' merged compute stage —
    # absolute seconds, same loose stage-timing tolerance as e18's.
    "e20": (GatedMetric("fused_speedup"),
            GatedMetric("bit_identical"),
            GatedMetric("profile_compute_s", higher_is_better=False,
                        tolerance=1.5)),
    # a7 gates the service-quality ratios: every paced tenant completes
    # (completion_rate), nobody is starved (fairness_jain), and the
    # zero-baseline 5xx count means any internal error trips the gate.
    "a7": (GatedMetric("completion_rate"),
           GatedMetric("fairness_jain"),
           GatedMetric("service_http_5xx_total",
                       higher_is_better=False)),
}

OK = "ok"
IMPROVED = "improved"
REGRESSED = "REGRESSED"
MISSING = "MISSING"


@dataclass
class Deviation:
    """The comparison verdict of one gated metric."""

    bench: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    #: Signed relative change towards "better" (+0.10 = 10 % better).
    change: float
    status: str

    @property
    def failed(self) -> bool:
        return self.status in (REGRESSED, MISSING)


def compare_bench(bench_id: str, baseline: Dict[str, float],
                  current: Optional[Dict[str, float]],
                  tolerance: float = DEFAULT_TOLERANCE) -> List[Deviation]:
    """Compare one bench's current metrics against its baseline."""
    deviations: List[Deviation] = []
    for gated in KEY_METRICS.get(bench_id, ()):
        base_value = baseline.get(gated.name)
        if base_value is None:
            # The baseline predates this gate; nothing to compare.
            continue
        base_value = float(base_value)
        if current is None or gated.name not in current:
            deviations.append(Deviation(
                bench=bench_id, metric=gated.name, baseline=base_value,
                current=None, change=0.0, status=MISSING))
            continue
        value = float(current[gated.name])
        if base_value == 0.0:
            raw = 0.0 if value == 0.0 else float("inf") * (1 if value > 0
                                                           else -1)
        else:
            raw = (value - base_value) / abs(base_value)
        change = raw if gated.higher_is_better else -raw
        allowed = tolerance if gated.tolerance is None else gated.tolerance
        if change < -allowed:
            status = REGRESSED
        elif change > allowed:
            status = IMPROVED
        else:
            status = OK
        deviations.append(Deviation(bench=bench_id, metric=gated.name,
                                    baseline=base_value, current=value,
                                    change=change, status=status))
    return deviations


def load_bench_file(path: str) -> Tuple[str, Dict[str, float]]:
    """Read one ``BENCH_<id>.json`` and return ``(bench_id, metrics)``."""
    with open(path) as handle:
        payload = json.load(handle)
    return payload["bench"], payload.get("metrics", {})


def run_gate(baseline_dir: str = BASELINE_DIR,
             current_dir: str = REPO_ROOT,
             tolerance: float = DEFAULT_TOLERANCE,
             benches: Optional[Sequence[str]] = None) -> List[Deviation]:
    """Compare every baseline against its freshly emitted counterpart."""
    deviations: List[Deviation] = []
    paths = sorted(glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    for path in paths:
        bench_id, baseline = load_bench_file(path)
        if benches and bench_id not in benches:
            continue
        current_path = os.path.join(current_dir,
                                    os.path.basename(path))
        current = None
        if os.path.exists(current_path):
            _, current = load_bench_file(current_path)
        deviations.extend(compare_bench(bench_id, baseline, current,
                                        tolerance))
    return deviations


def render(deviations: List[Deviation], tolerance: float) -> str:
    """A fixed-width diff table of every gated metric."""
    def fmt(value: Optional[float]) -> str:
        return "-" if value is None else "%.4g" % value

    rows = [("bench", "metric", "baseline", "current", "change", "status")]
    for deviation in deviations:
        change = ("-" if deviation.current is None
                  else "%+.1f%%" % (100.0 * deviation.change))
        rows.append((deviation.bench, deviation.metric,
                     fmt(deviation.baseline), fmt(deviation.current),
                     change, deviation.status))
    widths = [max(len(row[column]) for row in rows)
              for column in range(len(rows[0]))]
    lines = ["Benchmark regression gate (tolerance: worse by > %.0f%%)"
             % (100.0 * tolerance)]
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a benchmark's key metrics regressed "
                    "beyond tolerance against the checked-in baselines.")
    parser.add_argument("--baseline-dir", default=BASELINE_DIR)
    parser.add_argument("--current-dir", default=REPO_ROOT,
                        help="where the fresh BENCH_<id>.json files are "
                             "(default: the repo root)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed relative move in the worse "
                             "direction (default 0.25)")
    parser.add_argument("--bench", action="append", dest="benches",
                        help="gate only this bench id (repeatable)")
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        parser.error("tolerance must be non-negative")

    deviations = run_gate(args.baseline_dir, args.current_dir,
                          args.tolerance, args.benches)
    if not deviations:
        print("No baselines found under %s — nothing gated."
              % args.baseline_dir)
        return 0
    print(render(deviations, args.tolerance))
    improved = [d for d in deviations if d.status == IMPROVED]
    if improved:
        print("note: %d metric(s) improved beyond tolerance; consider "
              "refreshing the baseline(s): %s"
              % (len(improved),
                 ", ".join(sorted({d.bench for d in improved}))))
    failures = [d for d in deviations if d.failed]
    if failures:
        print("FAIL: %d gated metric(s) regressed or missing." %
              len(failures))
        return 1
    print("PASS: every gated metric within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
