"""E7 — Flood-fill load time versus machine size and redundancy (Sec. 5.2).

Paper claim (ref [15]): flood-fill "give[s] load times almost independent
of the size of the machine, with trade-offs between load time and the
degree of fault-tolerance, which can be controlled by the number of times a
node receives each component of the application".
"""

from __future__ import annotations

from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.runtime.boot import BootController
from repro.runtime.flood_fill import ApplicationImage, FloodFillLoader

from .reporting import emit_json, print_table

MACHINE_SIZES = ((2, 2), (4, 4), (6, 6), (10, 10))
REDUNDANCIES = (1, 2, 3)


def _load(width, height, redundancy):
    machine = SpiNNakerMachine(MachineConfig(width=width, height=height,
                                             cores_per_chip=2))
    BootController(machine, seed=1).boot()
    loader = FloodFillLoader(machine, redundancy=redundancy)
    return loader.load(ApplicationImage(n_blocks=8, block_words=256))


def _size_sweep():
    size_rows = []
    for width, height in MACHINE_SIZES:
        result = _load(width, height, redundancy=1)
        size_rows.append((f"{width}x{height}", width * height,
                          round(result.load_time_us, 1), result.complete,
                          round(result.mean_copies_received, 2),
                          result.nn_packets_sent))
    redundancy_rows = []
    for redundancy in REDUNDANCIES:
        result = _load(6, 6, redundancy)
        redundancy_rows.append((redundancy, round(result.load_time_us, 1),
                                round(result.mean_copies_received, 2),
                                round(result.min_copies_received, 2),
                                result.nn_packets_sent))
    return size_rows, redundancy_rows


def test_e7_flood_fill_scaling(benchmark):
    size_rows, redundancy_rows = benchmark(_size_sweep)

    print_table("E7a: load time vs machine size (8-block image, redundancy 1)",
                size_rows,
                headers=("machine", "chips", "load time (us)", "complete",
                         "mean copies/block", "nn packets"))
    print_table("E7b: load time vs redundancy (6x6 machine)",
                redundancy_rows,
                headers=("redundancy", "load time (us)", "mean copies/block",
                         "min copies/block", "nn packets"))

    # Load time is nearly flat in machine size: 25x more chips must cost
    # far less than 25x the time (the paper says "almost independent").
    times = [row[2] for row in size_rows]
    chips = [row[1] for row in size_rows]
    assert all(row[3] for row in size_rows)
    assert times[-1] / times[0] < (chips[-1] / chips[0]) / 5
    assert times[-1] / times[0] < 3.0

    # Redundancy buys more copies per block (fault tolerance) at a modest
    # cost in time and a linear cost in traffic.
    copies = [row[2] for row in redundancy_rows]
    packets = [row[4] for row in redundancy_rows]
    emit_json("e7", {
        "load_time_smallest_us": times[0],
        "load_time_largest_us": times[-1],
        "load_time_ratio": times[-1] / times[0],
        "chip_count_ratio": chips[-1] / chips[0],
        "redundancy3_mean_copies": copies[-1],
        "redundancy3_nn_packets": packets[-1],
    })
    assert copies[-1] > copies[0]
    assert packets[-1] > packets[0]
