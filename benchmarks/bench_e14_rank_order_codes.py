"""E14 — Rank-order codes versus rate codes (Section 5.4, ref [20]).

Paper claims: a rate code "is insufficient to explain the speed of response
... where there is time for any neuron ... to fire no more than once.  It
is hard to estimate a firing rate from a single spike!"; rank-order codes
carry the information in the order of a single wave of spikes.  The
benchmark decodes a stimulus identity from (a) the firing order of one
salvo and (b) spike counts in observation windows of increasing length.
"""

from __future__ import annotations

import numpy as np

from repro.coding.rank_order import RankOrderCode, RankOrderDecoder
from repro.coding.rate import RateCode

from .reporting import emit_json, print_table

POPULATION = 64
N_STIMULI = 10
TRIALS = 30
WINDOWS_MS = (1.0, 5.0, 10.0, 50.0, 200.0)


def _classify_by_rate(codebook, stimulus_index, window_ms, rng):
    code = RateCode(max_rate_hz=100.0)
    trains = code.encode(codebook[stimulus_index], duration_ms=window_ms,
                         rng=rng)
    estimate = code.decode(trains, window_ms)
    scores = [float(np.dot(estimate, reference) /
                    (np.linalg.norm(estimate) * np.linalg.norm(reference) + 1e-12))
              for reference in codebook]
    return int(np.argmax(scores))


def _accuracy_sweep():
    rng = np.random.default_rng(7)
    codebook = [rng.random(POPULATION) for _ in range(N_STIMULI)]
    rank_code = RankOrderCode(attenuation=0.9)

    # Rank-order accuracy from a single salvo (one spike per active neuron).
    rank_correct = 0
    spikes_used = []
    for trial in range(TRIALS):
        stimulus = trial % N_STIMULI
        order = rank_code.encode_order(codebook[stimulus])
        decoder = RankOrderDecoder(size=POPULATION)
        for neuron in order[:16]:        # first 16 spikes of the wave
            decoder.spike(neuron)
        spikes_used.append(16)
        if decoder.best_match(codebook) == stimulus:
            rank_correct += 1
    rank_accuracy = rank_correct / TRIALS

    # Rate-code accuracy as a function of the observation window.
    rate_rows = []
    for window in WINDOWS_MS:
        correct = 0
        for trial in range(TRIALS):
            stimulus = trial % N_STIMULI
            if _classify_by_rate(codebook, stimulus, window, rng) == stimulus:
                correct += 1
        rate_rows.append((window, correct / TRIALS))
    return rank_accuracy, float(np.mean(spikes_used)), rate_rows


def test_e14_rank_order_vs_rate(benchmark):
    rank_accuracy, mean_spikes, rate_rows = benchmark(_accuracy_sweep)

    rows = [("rank-order (single salvo, 16 spikes)", "-", f"{rank_accuracy:.2f}")]
    rows += [("rate code", f"{window:.0f} ms", f"{accuracy:.2f}")
             for window, accuracy in rate_rows]
    print_table("E14: stimulus identification accuracy (%d stimuli, %d trials)"
                % (N_STIMULI, TRIALS), rows,
                headers=("decoder", "observation window", "accuracy"))

    rate_by_window = dict(rate_rows)
    emit_json("e14", {
        "rank_order_accuracy": rank_accuracy,
        "mean_spikes_used": mean_spikes,
        "rate_accuracy_1ms": rate_by_window[1.0],
        "rate_accuracy_200ms": rate_by_window[200.0],
    })
    # A single salvo is enough for rank-order decoding...
    assert rank_accuracy >= 0.9
    # ...while the rate decoder is near chance at the single-spike
    # timescale and only recovers with long observation windows.
    assert rate_by_window[1.0] < 0.5
    assert rate_by_window[200.0] > rate_by_window[1.0]
    assert rank_accuracy > rate_by_window[1.0] + 0.3
