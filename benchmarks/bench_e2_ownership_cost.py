"""E2 — Ownership cost: purchase versus energy (Section 3.3).

Paper claims: a $1,000 / 300 W PC's energy bill equals its purchase price
after "a little more than three years"; embedded processors reduce the
capital and energy costs of a given level of compute by about an order of
magnitude (a SpiNNaker node is ~$20 and under 1 W for PC-class throughput).
"""

from __future__ import annotations

from repro.energy.cost import OwnershipCostModel

from .reporting import emit_json, print_metrics, print_table


def _cost_sweep():
    pc = OwnershipCostModel.typical_pc()
    node = OwnershipCostModel.spinnaker_node()
    years = [0.0, 1.0, 2.0, 3.0, 3.33, 4.0, 5.0]
    rows = []
    for year in years:
        rows.append((year, pc.energy_cost(year), pc.total_cost(year),
                     node.total_cost(year)))
    return pc, node, rows


def test_e2_ownership_cost_crossover(benchmark):
    pc, node, rows = benchmark(_cost_sweep)

    print_table("E2: cumulative ownership cost over time (USD)",
                [(f"{year:.2f}", f"{energy:.0f}", f"{pc_total:.0f}",
                  f"{node_total:.2f}")
                 for year, energy, pc_total, node_total in rows],
                headers=("years", "PC energy", "PC total", "SpiNNaker node total"))

    summary = OwnershipCostModel.ownership_comparison(lifetime_years=3.0)
    print_metrics("E2: headline comparison (3-year life)", summary)

    emit_json("e2", dict(summary,
                         pc_crossover_years=pc.crossover_years,
                         node_crossover_years=node.crossover_years))

    # Shape checks: crossover a little over three years; ~10x ownership win.
    assert 3.0 < pc.crossover_years < 4.0
    assert node.crossover_years > 10.0
    assert summary["ownership_cost_ratio"] > 10.0
    assert summary["cost_per_throughput_ratio"] > 10.0
