"""E8 — Multicast packet latency versus distance (Sections 3.1 and 5.3).

Paper claims: spike packets are delivered "well within a 1ms time window to
any target processor in the system" and "in significantly under 1 ms,
whatever the distance from source to destination"; communication delays are
negligible on the millisecond timescale of the neural model.
"""

from __future__ import annotations

from repro.analysis.metrics import latency_by_distance, latency_summary
from repro.core.geometry import ChipCoordinate
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.core.packets import MulticastPacket
from repro.core.processor import ProcessorState

from .reporting import emit_json, print_table

MESH = 12           # 12x12 chips: maximum hop distance 12 on the torus
PACKETS_PER_DISTANCE = 40


def _latency_sweep():
    machine = SpiNNakerMachine(MachineConfig(width=MESH, height=MESH,
                                             cores_per_chip=2))
    source = ChipCoordinate(0, 0)
    latencies = []
    distances = []
    key = 1
    targets = []
    for x in range(MESH):
        target = ChipCoordinate(x, 0)
        if target == source:
            continue
        # Install the route for this key along the dimension-ordered path.
        route = machine.geometry.route(source, target)
        current = source
        for direction in route:
            machine.chips[current].router.table.add(key=key, mask=0xFFFFFFFF,
                                                    links=[direction])
            current = current.neighbour(direction, MESH, MESH)
        chip = machine.chips[target]
        chip.router.table.add(key=key, mask=0xFFFFFFFF, cores=[1])
        core = chip.cores[1]
        core.run_self_test(True)
        core.start_application()

        def handler(packet, _target=target):
            latencies.append(machine.kernel.now - packet.timestamp)
            distances.append(machine.geometry.distance(source, _target))

        core.on_packet(handler)
        targets.append((key, target))
        key += 1

    for key, _target in targets:
        for _ in range(PACKETS_PER_DISTANCE):
            machine.inject_multicast(source, MulticastPacket(
                key=key, timestamp=machine.kernel.now, source=source))
        machine.run()
    return latencies, distances


def test_e8_packet_latency_vs_distance(benchmark):
    latencies, distances = benchmark(_latency_sweep)

    by_distance = latency_by_distance(latencies, distances)
    rows = [(distance, group.count, f"{group.mean_us:.2f}",
             f"{group.p99_us:.2f}", f"{group.max_us:.2f}")
            for distance, group in by_distance.items()]
    print_table("E8: multicast delivery latency vs hop distance (12x12 torus)",
                rows,
                headers=("hops", "packets", "mean (us)", "p99 (us)", "max (us)"))

    overall = latency_summary(latencies)
    emit_json("e8", {
        "packets": overall.count,
        "mean_latency_us": overall.mean_us,
        "p99_latency_us": overall.p99_us,
        "max_latency_us": overall.max_us,
        "max_hops": max(by_distance),
        "mean_latency_us_at_max_hops": by_distance[max(by_distance)].mean_us,
    })
    # Even the worst-case delivery is far below the 1 ms window.
    assert overall.max_us < 1000.0
    assert overall.max_us < 100.0
    # Latency grows gently (roughly linearly) with distance, so the longest
    # path costs only a few times the single-hop latency.
    first = by_distance[min(by_distance)]
    last = by_distance[max(by_distance)]
    assert last.mean_us > first.mean_us
    assert last.mean_us < 20 * first.mean_us
