"""A7 (service) — allocation-service load test over live HTTP.

The DATE'11 machine is a shared facility: tenants do not link against
the scheduler, they talk to a long-running allocation service.  This
benchmark boots the real :class:`repro.service.AllocationService`
(threaded HTTP server, loopback TCP) and drives it the way a busy
facility would be driven:

* **32 well-behaved tenants**, one thread each, submitting a Poisson
  stream of sessionful jobs (create, heartbeat, hold, release) through
  :class:`repro.service.ServiceClient`;
* **one greedy tenant** hammering creates with no pacing, which the
  admission gate must answer with ``429`` + ``Retry-After`` — never a
  500 — while the well-behaved tenants keep completing.

Reported: client-observed allocation latency (p50/p99), queue-wait p99,
throughput, the greedy tenant's rejection rate, and Jain's fairness
index over per-tenant completions.  The gated metrics are ratio-shaped
(fairness, completion rate, a zero-baseline 5xx count), so the ±25 %
regression gate holds across runner generations.
"""

from __future__ import annotations

import random
import threading
import time

from repro.service import (AllocationService, BackpressureConfig,
                           ServiceBusy, ServiceClient, ServiceClientError)

from .reporting import emit_json, print_metrics, print_table

MACHINE_SIDE = 16
N_TENANTS = 32
JOBS_PER_TENANT = 3
MEAN_INTERARRIVAL_S = 0.040
HOLD_S = 0.025
GREEDY_ATTEMPTS = 30
SEED = 711


def _percentile(samples, q):
    """The q-quantile (0..1) of a sample list by nearest rank."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 0))
    return ordered[min(rank, len(ordered) - 1)]


def _jain(counts):
    """Jain's fairness index of per-tenant completion counts (0..1]."""
    if not counts or not any(counts):
        return 0.0
    total = float(sum(counts))
    squares = float(sum(value * value for value in counts))
    return (total * total) / (len(counts) * squares)


class _TenantResult:
    def __init__(self):
        self.completed = 0
        self.attempted = 0
        self.alloc_ms = []
        self.queue_wait_ms = []
        self.errors = []


def _well_behaved(url, index, result):
    """One tenant's Poisson session stream against the live service."""
    rng = random.Random(SEED + index)
    client = ServiceClient(url, tenant="tenant-%02d" % index)
    try:
        for _ in range(JOBS_PER_TENANT):
            time.sleep(rng.expovariate(1.0 / MEAN_INTERARRIVAL_S))
            side = rng.randint(1, 2)
            result.attempted += 1
            started = time.perf_counter()
            try:
                with client.session(side, side,
                                    keepalive_ms=2000.0) as session:
                    ready = session.wait_ready(timeout_s=15.0)
                    result.alloc_ms.append(
                        (time.perf_counter() - started) * 1000.0)
                    result.queue_wait_ms.append(float(ready["wait_ms"]))
                    time.sleep(HOLD_S)
                result.completed += 1
            except (ServiceBusy, ServiceClientError,
                    TimeoutError) as error:
                result.errors.append("%s: %s" % (type(error).__name__,
                                                 error))
    finally:
        client.close()


def _greedy(url, counters):
    """A tenant with no pacing: the gate must shed it with 429s."""
    client = ServiceClient(url, tenant="greedy")
    try:
        for _ in range(GREEDY_ATTEMPTS):
            try:
                created = client.create_job(1, 1, keepalive_ms=500.0)
                counters["accepted"] += 1
                client.release(int(created["job_id"]))
            except ServiceBusy as busy:
                counters["rejected"] += 1
                # Backpressure must come with a pacing hint.
                assert busy.retry_after_s is not None
            except ServiceClientError as error:  # pragma: no cover
                counters["other"] += 1
                counters["errors"].append(str(error))
    finally:
        client.close()


def _run_load():
    service = AllocationService.build(
        width=MACHINE_SIDE, height=MACHINE_SIDE,
        backpressure=BackpressureConfig(max_queue_depth=64))
    service.start()
    results = [_TenantResult() for _ in range(N_TENANTS)]
    greedy = {"accepted": 0, "rejected": 0, "other": 0, "errors": []}
    try:
        started = time.perf_counter()
        threads = [threading.Thread(target=_well_behaved,
                                    args=(service.url, index,
                                          results[index]))
                   for index in range(N_TENANTS)]
        threads.append(threading.Thread(target=_greedy,
                                        args=(service.url, greedy)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed_s = time.perf_counter() - started
        service_metrics = service.metrics.flatten()
        drained = service.stop()
        leaked = service.scheduler.partitioner.leased_area
    finally:
        service.stop()
    return {
        "results": results,
        "greedy": greedy,
        "elapsed_s": elapsed_s,
        "service": service_metrics,
        "drained": drained,
        "leaked": leaked,
    }


def test_a7_service_load(benchmark):
    outcome = benchmark.pedantic(_run_load, rounds=1, iterations=1)

    results = outcome["results"]
    greedy = outcome["greedy"]
    alloc_ms = [value for result in results for value in result.alloc_ms]
    queue_wait_ms = [value for result in results
                     for value in result.queue_wait_ms]
    completions = [result.completed for result in results]
    attempted = sum(result.attempted for result in results)
    completed = sum(completions)
    errors = [error for result in results for error in result.errors]
    greedy_total = greedy["accepted"] + greedy["rejected"] + greedy["other"]

    metrics = {
        "tenants": float(N_TENANTS),
        "jobs_attempted": float(attempted),
        "jobs_completed": float(completed),
        "completion_rate": completed / attempted if attempted else 0.0,
        "alloc_p50_ms": _percentile(alloc_ms, 0.50),
        "alloc_p99_ms": _percentile(alloc_ms, 0.99),
        "queue_wait_p99_ms": _percentile(queue_wait_ms, 0.99),
        "throughput_jobs_per_s": (completed / outcome["elapsed_s"]
                                  if outcome["elapsed_s"] else 0.0),
        "fairness_jain": _jain(completions),
        "greedy_attempts": float(greedy_total),
        "greedy_rejected_429": float(greedy["rejected"]),
        "rejection_rate": (greedy["rejected"] / greedy_total
                           if greedy_total else 0.0),
        "drained_cleanly": float(outcome["drained"]),
        "chips_leaked": float(outcome["leaked"]),
    }
    metrics.update(outcome["service"])
    print_metrics("A7: %d tenants + 1 greedy on a live %dx%d service"
                  % (N_TENANTS, MACHINE_SIDE, MACHINE_SIDE), metrics)
    if errors or greedy["errors"]:
        print_table("A7: client-side failures",
                    [(error,) for error in (errors + greedy["errors"])],
                    headers=("error",))
    emit_json("a7", metrics)

    # Every well-behaved job completes: the greedy tenant cannot starve
    # paced traffic, and nothing times out under load.
    assert completed == attempted, errors
    assert metrics["fairness_jain"] > 0.9
    # Backpressure works and is *typed*: the unpaced tenant sees 429s,
    # and no request — malformed, over-quota or concurrent — ever
    # surfaces as a 500.
    assert greedy["rejected"] > 0
    assert greedy["other"] == 0, greedy["errors"]
    assert metrics["service_http_5xx_total"] == 0.0
    # Latency stays interactive even on a loaded CI runner (the p99 is
    # client-observed across ~65 Python threads, so it carries GIL
    # scheduling noise the server-side histograms do not show).
    assert metrics["alloc_p99_ms"] < 5000.0
    # Shutdown drains and the machine comes back whole.
    assert outcome["drained"]
    assert outcome["leaked"] == 0
