"""A6 (ablation) — multi-tenant allocation throughput and fragmentation.

The DATE'11 machine is a shared facility, so the allocation server sits
on the critical path of every experiment a tenant submits.  This
benchmark drives the scheduler with a Poisson stream of mixed-size jobs
from several tenants and measures:

* **throughput** — jobs scheduled per second of simulated time (and the
  wall-clock cost of the whole stream, via pytest-benchmark);
* **fragmentation** — how badly the free pool shatters under each
  placement policy, and whether free-list coalescing brings the pool
  back to a solid block once the stream drains.
"""

from __future__ import annotations

from repro.alloc.partition import PLACEMENT_POLICIES
from repro.alloc.scheduler import AllocationScheduler
from repro.alloc.workload import JobStreamConfig, run_job_stream
from repro.core.machine import MachineConfig, SpiNNakerMachine

from .reporting import emit_json, print_table

MACHINE_SIDE = 16
N_JOBS = 120
STREAM = JobStreamConfig(n_jobs=N_JOBS, mean_interarrival_ms=15.0,
                         mean_hold_ms=120.0, min_side=1, max_side=5,
                         tenants=("alice", "bob", "carol", "dave"),
                         seed=99)


def _run_policy(policy):
    machine = SpiNNakerMachine(MachineConfig(width=MACHINE_SIDE,
                                             height=MACHINE_SIDE,
                                             cores_per_chip=1))
    scheduler = AllocationScheduler(machine, policy=policy)
    return run_job_stream(scheduler, STREAM)


def _policy_study():
    return {policy: _run_policy(policy) for policy in PLACEMENT_POLICIES}


def test_a6_alloc_throughput(benchmark):
    results = benchmark(_policy_study)

    rows = [(policy, "%d" % s["submitted"], "%d" % s["scheduled"],
             "%d" % s["skips_capacity"], "%.2f" % s["mean_wait_ms"],
             "%.3f" % s["peak_fragmentation"],
             "%.3f" % s["final_fragmentation"],
             "%.1f" % s["jobs_per_simulated_s"])
            for policy, s in results.items()]
    print_table("A6: %d-job Poisson stream on a %dx%d machine"
                % (N_JOBS, MACHINE_SIDE, MACHINE_SIDE), rows,
                headers=("policy", "submitted", "scheduled", "cap skips",
                         "mean wait ms", "peak frag", "final frag",
                         "jobs/sim-s"))

    emit_json("a6", {
        "%s_%s" % (policy.replace("-", "_").replace(" ", "_"), key):
            summary[key]
        for policy, summary in results.items()
        for key in ("scheduled", "mean_wait_ms", "peak_fragmentation",
                    "jobs_per_simulated_s")
    })

    for policy, summary in results.items():
        # Every job is accounted for: scheduled, rate-limited, or released
        # while still queued; nothing is lost.
        assert summary["submitted"] == N_JOBS
        assert summary["scheduled"] + summary["rejected"] <= N_JOBS
        assert summary["scheduled"] > 0.8 * N_JOBS
        # The stream drains completely: no leaked leases, and coalescing
        # restores a usable pool (fragmentation is bounded, not runaway).
        assert summary["final_free_area"] == MACHINE_SIDE * MACHINE_SIDE
        assert summary["final_fragmentation"] == 0.0
        assert 0.0 <= summary["peak_fragmentation"] <= 1.0
        assert summary["jobs_per_simulated_s"] > 0.0
