"""E1 — MIPS/mm² and MIPS/W: embedded node versus high-end desktop (Sec. 2).

Paper claims: on MIPS/mm² the two are roughly equal ("a SpiNNaker chip with
20 ARM cores delivers about the same throughput as a high-end desktop
processor"); on MIPS/W the embedded part wins "by an order of magnitude".
"""

from __future__ import annotations

from repro.energy.model import EMBEDDED_NODE, HIGH_END_DESKTOP, EnergyModel

from .reporting import emit_json, print_metrics


def test_e1_processor_efficiency_metrics(benchmark):
    model = EnergyModel()
    summary = benchmark(model.comparison)

    print_metrics("E1: MIPS/mm2 and MIPS/W (embedded vs desktop)", {
        "embedded MIPS/mm2": summary["embedded_mips_per_mm2"],
        "desktop MIPS/mm2": summary["desktop_mips_per_mm2"],
        "area-efficiency ratio (embedded/desktop)": summary["area_efficiency_ratio"],
        "embedded MIPS/W": summary["embedded_mips_per_watt"],
        "desktop MIPS/W": summary["desktop_mips_per_watt"],
        "energy-efficiency ratio (embedded/desktop)": summary["energy_efficiency_ratio"],
        "node power (W)": EMBEDDED_NODE.power_w,
        "desktop power (W)": HIGH_END_DESKTOP.power_w,
    })

    emit_json("e1", summary)

    # Shape checks from the paper.
    assert 0.5 < summary["area_efficiency_ratio"] < 4.0
    assert summary["energy_efficiency_ratio"] >= 10.0
