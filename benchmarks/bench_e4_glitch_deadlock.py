"""E4 — Glitch-induced deadlock: conventional vs transition-sensing (Fig. 6).

Paper claim: the transition-sensing phase converter (plus related circuit
enhancements) "reduced the occurrence of deadlocks in our glitch
simulations by a factor 1,000", while continuing to pass (possibly
corrupted) data under interference.
"""

from __future__ import annotations

from repro.link.glitch import GlitchInjectionExperiment

from .reporting import emit_json, print_metrics, print_table

TRIALS = 300


def _run_campaign():
    experiment = GlitchInjectionExperiment(symbol_period=2.0, ack_delay=1.0,
                                           glitch_rate=0.05,
                                           symbols_per_trial=300, seed=7)
    outcomes = experiment.run(trials=TRIALS)
    conventional = outcomes["conventional"]
    sensing = outcomes["transition-sensing"]
    sensing_rate = sensing.deadlocks_per_glitch
    if sensing_rate == 0.0 and sensing.glitches_injected:
        sensing_rate = 1.0 / sensing.glitches_injected
    factor = (conventional.deadlocks_per_glitch / sensing_rate
              if sensing_rate else float("inf"))
    return outcomes, factor


def test_e4_glitch_deadlock_reduction(benchmark):
    outcomes, factor = benchmark(_run_campaign)

    rows = []
    for name, outcome in outcomes.items():
        rows.append((name, outcome.trials, outcome.glitches_injected,
                     outcome.deadlocks, f"{outcome.deadlocks_per_glitch:.5f}",
                     outcome.corrupted_runs, outcome.clean_runs))
    print_table("E4: glitch-injection campaign (%d trials per circuit)" % TRIALS,
                rows,
                headers=("circuit", "trials", "glitches", "deadlocks",
                         "deadlocks/glitch", "corrupted runs", "clean runs"))
    print_metrics("E4: deadlock reduction factor",
                  {"conventional / transition-sensing": factor,
                   "paper reports": 1000.0})

    conventional = outcomes["conventional"]
    sensing = outcomes["transition-sensing"]
    emit_json("e4", {
        "deadlock_reduction_factor": factor,
        "conventional_deadlocks_per_glitch":
            conventional.deadlocks_per_glitch,
        "sensing_deadlocks_per_glitch": sensing.deadlocks_per_glitch,
        "sensing_corrupted_runs": sensing.corrupted_runs,
    })
    # Shape checks: the conventional circuit deadlocks readily, the
    # transition-sensing circuit almost never, and the ratio is in the
    # orders-of-magnitude regime the paper reports (>= 10^2, around 10^3).
    assert conventional.deadlocks_per_glitch > 0.2
    assert sensing.deadlocks_per_glitch < 0.01
    assert factor >= 100.0
    # The sensing circuit keeps passing (corrupted) data rather than dying.
    assert sensing.corrupted_runs > sensing.deadlocks
