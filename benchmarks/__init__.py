"""Benchmark harness regenerating every quantitative claim and figure of the
paper (see DESIGN.md for the experiment index E1-E15 and EXPERIMENTS.md for
the measured results)."""
