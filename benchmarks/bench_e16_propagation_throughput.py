"""E16 — CSR propagation-engine throughput (Sections 3.2, 5.3).

The deferred-event ("soft delay") model is "one of the most expensive
functions of the neuron models"; the reference simulator originally paid
for it with a per-spike, per-``Synapse``-object Python loop.  This
benchmark builds a 10k-neuron / >1M-synapse network and measures the
synaptic-event throughput (events scattered into the deferred-event ring
buffers per second of wall time) of the object-based ``reference`` path
against the vectorized ``csr`` engine, and checks the two paths remain
bit-identical on the spike trains they produce.
"""

from __future__ import annotations

import time

import numpy as np

from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import (Population, SpikeSourcePoisson,
                                     expansion_rng)

from .reporting import emit_json, print_table

SEED = 16
N_STIM = 1_000
N_EXC = 10_000
STIM_RATE_HZ = 40.0
#: Simulated durations per path: the object path is ~two orders of
#: magnitude slower, so it gets a shorter (but still representative) run.
DURATION_CSR_MS = 200.0
DURATION_REF_MS = 50.0


def _build_network() -> Network:
    network = Network(seed=SEED)
    stimulus = SpikeSourcePoisson(N_STIM, rate_hz=STIM_RATE_HZ, label="stim")
    excitatory = Population(N_EXC, "lif", label="exc")
    excitatory.bias_current_na = 1.45   # keeps baseline recurrent traffic up
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(0.02, weight=1.5,
                                              delay_range=(1, 8)))
    network.connect(excitatory, excitatory,
                    FixedProbabilityConnector(0.009, weight=0.05,
                                              delay_range=(1, 16)))
    return network


def _prewarm(network: Network) -> int:
    """Expand and compile every projection outside the timed region.

    Expansion/compilation happen once per (projection, seed) in steady
    state; the benchmark measures propagation, not connector expansion.
    """
    rng = expansion_rng(SEED)
    total = 0
    for projection in network.projections:
        projection.build_rows(rng, seed=SEED)
        total += projection.compile_csr(rng, seed=SEED).n_synapses
    return total


def _synaptic_events(network: Network, result) -> int:
    """Total synaptic events propagated during a run.

    Every spike of a source neuron delivers that neuron's whole row, so
    the event count is the spike count of each neuron weighted by its row
    length — identical for both propagation paths when the spike trains
    are identical.
    """
    events = 0
    rng = expansion_rng(SEED)
    for projection in network.projections:
        lengths = projection.compile_csr(rng, seed=SEED).row_lengths()
        counts = result.spike_counts[projection.pre.label]
        events += int(np.dot(counts[:lengths.size], lengths))
    return events


def _timed_run(network: Network, duration_ms: float, propagation: str):
    start = time.perf_counter()
    result = network.run(duration_ms, propagation=propagation)
    elapsed = time.perf_counter() - start
    return result, elapsed


def _best_of_two(network: Network, duration_ms: float, propagation: str):
    """Run twice and keep the faster wall time (the runs are identical),
    so a scheduler hiccup during either single timing cannot skew the
    throughput ratio on a noisy CI runner."""
    result, first = _timed_run(network, duration_ms, propagation)
    _, second = _timed_run(network, duration_ms, propagation)
    return result, min(first, second)


def test_e16_propagation_throughput(benchmark):
    network = _build_network()
    n_synapses = _prewarm(network)
    assert network.n_neurons >= 10_000
    assert n_synapses >= 1_000_000

    reference_result, reference_elapsed = _best_of_two(
        network, DURATION_REF_MS, "reference")
    csr_result, csr_elapsed = benchmark.pedantic(
        _best_of_two, args=(network, DURATION_CSR_MS, "csr"),
        rounds=1, iterations=1)

    # Equivalence spot-check: the CSR engine must replay the object path
    # exactly over the window both paths simulated.
    short_csr, _ = _timed_run(network, DURATION_REF_MS, "csr")
    for label in reference_result.spike_counts:
        assert np.array_equal(reference_result.spike_counts[label],
                              short_csr.spike_counts[label])

    reference_events = _synaptic_events(network, reference_result)
    csr_events = _synaptic_events(network, csr_result)
    reference_throughput = reference_events / reference_elapsed
    csr_throughput = csr_events / csr_elapsed
    speedup = csr_throughput / reference_throughput

    print_table(
        "E16: spike-propagation throughput (10k neurons, %.1fM synapses)"
        % (n_synapses / 1e6),
        [("reference (Synapse objects)", "%.0f" % (DURATION_REF_MS,),
          reference_events, "%.3f" % reference_elapsed,
          "%.3e" % reference_throughput),
         ("csr (vectorized engine)", "%.0f" % (DURATION_CSR_MS,),
          csr_events, "%.3f" % csr_elapsed, "%.3e" % csr_throughput)],
        headers=("propagation path", "sim ms", "synaptic events",
                 "wall s", "events/s"))
    print_table("E16: engine speedup",
                [("csr vs reference", "%.1fx" % speedup)],
                headers=("comparison", "throughput ratio"))

    emit_json("e16", {
        "n_synapses": n_synapses,
        "reference_events": reference_events,
        "reference_wall_s": reference_elapsed,
        "reference_events_per_s": reference_throughput,
        "csr_events": csr_events,
        "csr_wall_s": csr_elapsed,
        "csr_events_per_s": csr_throughput,
        "speedup": speedup,
    })

    assert reference_events > 100_000, "benchmark network too quiet"
    assert speedup >= 10.0
