"""E20 — Fused board engine: per-tick speedup at cluster scale.

The per-core :class:`~repro.cluster.shard.BoardEngine` replays Figure 7
with one Python-level loop iteration per core per tick; the fused
:class:`~repro.cluster.fused.FusedBoardEngine` computes the same run
with the per-core loops hoisted out of the tick path (stacked per-model
state blocks, one shared deferred-event ring, one merged delivery
scatter per batch list).  This benchmark pins the two claims that make
the fused engine the runner's default:

* **Bit-identity** — at the E19 cluster scale (a row of four production
  8x6 boards, 96 vertices of 256 LIF neurons), the fused serial run
  reproduces the per-core serial run bit for bit: spike trains, spike
  counts, synaptic events, delivered charge and packet counters.
* **Per-tick speedup** — the fused engine's serial per-tick compute
  cost (the engines' own stage timers: step + local/remote scatters) is
  at least ``MIN_FUSED_SPEEDUP`` times lower.  Compute seconds rather
  than wall-clock carry the gate because they exclude one-time engine
  construction and result materialisation, and each side takes its best
  of ``ROUNDS`` rounds to shed scheduler jitter; the wall-clock ratio
  is emitted unasserted alongside.

A pooled fused run (4 workers) is also checked for bit-identity and its
per-stage split emitted, so the split-barrier overlap (barrier-wait
share of worker time) stays visible in the gated JSON.
"""

from __future__ import annotations

import os

import numpy as np

from repro.cluster import ClusterApplication
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.boot import BootController

from .reporting import attach_profile, emit_json, print_metrics

SEED = 19                      # the E19 workload, byte for byte
BOARDS_X, BOARDS_Y = 4, 1
BOARD_W, BOARD_H = 8, 6
CORES_PER_CHIP = 4
N_PAIRS = 8
NEURONS = 1536
NEURONS_PER_CORE = 256
RATE_HZ = 120.0
DURATION_MS = 80.0
ROUNDS = 3                     # best-of-N per engine, jitter suppression
WORKERS = 4
MIN_FUSED_SPEEDUP = 3.0        # serial per-tick compute, asserted always


def _build_network() -> Network:
    network = Network(seed=SEED)
    excitatory = []
    for pair in range(N_PAIRS):
        stimulus = SpikeSourcePoisson(NEURONS, rate_hz=RATE_HZ,
                                      label="c-stim-%d" % pair)
        population = Population(NEURONS, "lif", label="c-exc-%d" % pair)
        population.record(spikes=True)
        network.connect(stimulus, population,
                        FixedProbabilityConnector(0.12, weight=0.35,
                                                  delay_range=(1, 8)))
        network.connect(population, population,
                        FixedProbabilityConnector(0.05, weight=0.1,
                                                  delay_range=(1, 16)))
        excitatory.append(population)
    for index, population in enumerate(excitatory):
        network.connect(population,
                        excitatory[(index + 1) % len(excitatory)],
                        FixedProbabilityConnector(0.05, weight=0.12,
                                                  delay_range=(1, 16)))
    return network


def _machine() -> SpiNNakerMachine:
    machine = SpiNNakerMachine(MachineConfig.multi_board(
        BOARDS_X, BOARDS_Y, board_width=BOARD_W, board_height=BOARD_H,
        cores_per_chip=CORES_PER_CHIP))
    BootController(machine, seed=1).boot()
    return machine


def _bit_identical(reference, candidate) -> bool:
    if candidate.spikes != reference.spikes:
        return False
    for label in reference.spike_counts:
        if not np.array_equal(reference.spike_counts[label],
                              candidate.spike_counts[label]):
            return False
    return (candidate.synaptic_events == reference.synaptic_events
            and candidate.delivered_charge_na
            == reference.delivered_charge_na
            and candidate.packets_sent == reference.packets_sent)


def test_e20_fused_engine(benchmark):
    network = _build_network()
    apps = {
        engine: ClusterApplication(
            _machine(), network, seed=SEED,
            max_neurons_per_core=NEURONS_PER_CORE,
            placement_strategy="round-robin", profile=True, engine=engine)
        for engine in ("percore", "fused")}
    for app in apps.values():
        app.prepare()          # compile outside the timed rounds

    # ------------------------------------------------------------------
    # Serial per-tick cost, best of ROUNDS per engine
    # ------------------------------------------------------------------
    compute_s = {"percore": [], "fused": []}
    wall_s = {"percore": [], "fused": []}
    results = {}
    for round_index in range(ROUNDS):
        for engine, app in apps.items():
            if engine == "fused" and round_index == 0:
                results[engine] = benchmark.pedantic(
                    lambda: app.run(DURATION_MS, workers=1),
                    rounds=1, iterations=1)
            else:
                results[engine] = app.run(DURATION_MS, workers=1)
            compute_s[engine].append(
                sum(app.report.board_compute_s.values()))
            wall_s[engine].append(app.report.wall_s)

    bit_identical = _bit_identical(results["percore"], results["fused"])
    n_ticks = apps["fused"].report.n_ticks
    best = {engine: min(times) for engine, times in compute_s.items()}
    fused_speedup = best["percore"] / best["fused"]
    wall_speedup = min(wall_s["percore"]) / min(wall_s["fused"])

    # ------------------------------------------------------------------
    # Pooled fused run: still bit-identical, barrier share visible
    # ------------------------------------------------------------------
    pooled = apps["fused"].run(DURATION_MS, workers=WORKERS)
    pooled_report = apps["fused"].report
    pooled_identical = _bit_identical(results["percore"], pooled)
    stage_totals = {stage: pooled_report.stage_total(stage)
                    for stage in ("compute", "serialize", "exchange",
                                  "barrier_wait")}
    stage_sum = sum(stage_totals.values())
    barrier_share = (stage_totals["barrier_wait"] / stage_sum
                     if stage_sum > 0 else 0.0)

    metrics = {
        "boards": apps["fused"].n_boards,
        "vertices": sum(context.n_cores
                        for context in apps["fused"].board_contexts.values()),
        "ticks": n_ticks,
        "rounds": ROUNDS,
        "total_spikes": results["fused"].total_spikes(),
        "synaptic_events": results["fused"].synaptic_events,
        "percore_compute_s": best["percore"],
        "fused_compute_s": best["fused"],
        "percore_tick_ms": 1e3 * best["percore"] / n_ticks,
        "fused_tick_ms": 1e3 * best["fused"] / n_ticks,
        "fused_speedup": fused_speedup,
        "wall_speedup": wall_speedup,
        "bit_identical": bit_identical and pooled_identical,
        "pool_workers": pooled_report.workers,
        "pool_compute_s": stage_totals["compute"],
        "pool_barrier_wait_s": stage_totals["barrier_wait"],
        "pool_barrier_share": barrier_share,
        "host_cpus": os.cpu_count() or 1,
    }
    # Merged stage registry of the pooled run — carries the gated
    # profile_compute_s beside the report-shaped pool_* figures.
    attach_profile(metrics, apps["fused"].registry)
    print_metrics("E20: fused board engine (%d vertices, %d ticks)"
                  % (int(metrics["vertices"]), n_ticks), metrics)
    emit_json("e20", metrics)

    # The whole point of the fused engine: same bits, several times
    # cheaper per tick.  ``fused_speedup`` is recorded in the emitted
    # JSON above, so the regression gate tracks the measured ratio.
    assert bit_identical, "fused serial run diverged from per-core"
    assert pooled_identical, "pooled fused run diverged from per-core"
    assert fused_speedup >= MIN_FUSED_SPEEDUP
