"""Synthetic multi-tenant job streams for demos and benchmarks.

Drives an :class:`~repro.alloc.scheduler.AllocationScheduler` with a
Poisson arrival process: jobs arrive with exponential interarrival times,
ask for random rectangle sizes, and hold their leases for exponential
durations before releasing them.  The driver advances the shared event
kernel between events, so power-on delays, expiry sweeps and anything
else scheduled on the kernel interleave exactly as they would under real
clients.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.alloc.job import JobRequest, JobState
from repro.alloc.scheduler import AllocationScheduler
from repro.core.event_kernel import milliseconds

__all__ = ["JobStreamConfig", "run_job_stream"]


@dataclass(frozen=True)
class JobStreamConfig:
    """Parameters of one synthetic arrival stream."""

    n_jobs: int = 60
    #: Mean of the exponential interarrival time.
    mean_interarrival_ms: float = 20.0
    #: Mean of the exponential lease hold time.
    mean_hold_ms: float = 120.0
    #: Requested rectangle sides are drawn uniformly from this range.
    min_side: int = 1
    max_side: int = 4
    tenants: Sequence[str] = ("alice", "bob", "carol")
    priority_levels: int = 3
    keepalive_ms: float = 1e9  # effectively no expiry unless asked for
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("the stream needs at least one job")
        if self.min_side < 1 or self.max_side < self.min_side:
            raise ValueError("invalid job size range")


def run_job_stream(scheduler: AllocationScheduler,
                   config: JobStreamConfig) -> Dict[str, float]:
    """Run one arrival stream to completion and summarise the outcome.

    Every arrived job is eventually released (releases are interleaved
    with arrivals at exponential hold times), so at the end the machine is
    empty again unless jobs were still queued when the stream dried up —
    those are released too, and counted separately.
    """
    rng = random.Random(config.seed)
    kernel = scheduler.kernel

    arrivals: List[Tuple[float, JobRequest]] = []
    clock_ms = scheduler.now_ms
    for index in range(config.n_jobs):
        clock_ms += rng.expovariate(1.0 / config.mean_interarrival_ms)
        side = lambda: rng.randint(config.min_side, config.max_side)
        arrivals.append((clock_ms, JobRequest(
            tenant=config.tenants[index % len(config.tenants)],
            width=side(), height=side(),
            priority=1 + rng.randrange(config.priority_levels),
            keepalive_ms=config.keepalive_ms,
            label="stream-%d" % index)))

    releases: List[Tuple[float, int]] = []  # (time_ms, job_id) heap
    chips_delivered = 0

    def advance_to(time_ms: float) -> None:
        target_us = milliseconds(time_ms)
        if target_us > kernel.now:
            kernel.run_until(target_us)

    arrival_index = 0
    while arrival_index < len(arrivals) or releases:
        next_arrival = (arrivals[arrival_index][0]
                        if arrival_index < len(arrivals) else float("inf"))
        next_release = releases[0][0] if releases else float("inf")
        if next_arrival <= next_release:
            time_ms, request = arrivals[arrival_index]
            arrival_index += 1
            advance_to(time_ms)
            job = scheduler.submit(request)
            if job.state is not JobState.REJECTED:
                hold = rng.expovariate(1.0 / config.mean_hold_ms)
                heapq.heappush(releases, (time_ms + hold, job.job_id))
        else:
            time_ms, job_id = heapq.heappop(releases)
            advance_to(time_ms)
            job = scheduler.job(job_id)
            if job is not None and job.lease is not None:
                chips_delivered += job.lease.n_chips
            scheduler.release(job_id)

    kernel.run()

    stats = scheduler.stats
    elapsed_ms = max(scheduler.now_ms, 1e-9)
    summary: Dict[str, float] = dict(stats.summary())
    summary.update({
        "simulated_ms": elapsed_ms,
        "jobs_per_simulated_s": stats.scheduled / (elapsed_ms / 1000.0),
        "chips_released_total": float(chips_delivered),
        "final_fragmentation": scheduler.partitioner.fragmentation(),
        "final_free_area": float(scheduler.partitioner.free_area),
    })
    return summary
