"""The allocation scheduler: admission, placement and lease reclamation.

Ties the other pieces of :mod:`repro.alloc` together:

* submissions are policed by the per-tenant token buckets of
  :class:`~repro.alloc.queue.JobQueue` (over-rate jobs are REJECTED);
* a scheduling pass walks the queue in priority order and, for each job
  within its tenant's concurrency quota, asks the
  :class:`~repro.alloc.partition.MachinePartitioner` for a fault-free
  rectangle under the configured placement policy (first-fit, best-fit
  or fault-aware locality-fit);
* scheduled jobs are POWERING for a power-cycle delay plus the
  controller's own decision latency — the latter expressed in cycles of
  a :class:`~repro.core.clock.ClockDomain`, so scaling the allocation
  controller's clock (DVFS) visibly changes job turnaround;
* a periodic expiry sweep reclaims the leases of jobs whose owners have
  stopped sending keepalives, then immediately re-runs scheduling so
  queued jobs take over the reclaimed space;
* chips the monitor condemns at run time shrink the owning lease in
  place (the job's machine view loses the chip) and are permanently
  excluded from future placements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.alloc.job import Job, JobRequest, JobState
from repro.alloc.machine_view import LeasedMachineView
from repro.alloc.partition import MachinePartitioner, PLACEMENT_POLICIES
from repro.alloc.queue import JobQueue
from repro.core.clock import ClockDomain
from repro.core.event_kernel import EventKernel, milliseconds
from repro.core.geometry import ChipCoordinate
from repro.core.machine import SpiNNakerMachine

__all__ = ["AllocationStatistics", "AllocationScheduler"]

#: Controller cycles charged for one placement decision (free-list scan,
#: quota check, lease bookkeeping) — the pseudopolynomial cost of the
#: scheduling step, made visible through the controller's clock domain.
DEFAULT_DECISION_CYCLES = 3000
#: Nominal clock of the allocation controller.
DEFAULT_CONTROLLER_MHZ = 150.0
#: Simulated time needed to power-cycle a leased region.
DEFAULT_POWER_ON_DELAY_US = 100.0


@dataclass
class AllocationStatistics:
    """Aggregate counters collected by one scheduler."""

    submitted: int = 0
    rejected: int = 0
    scheduled: int = 0
    ready: int = 0
    freed: int = 0
    expired: int = 0
    #: Scheduling passes that skipped a job because its tenant was over
    #: quota, and because no rectangle fitted, respectively.
    skips_quota: int = 0
    skips_capacity: int = 0
    chips_leased_total: int = 0
    peak_chips_in_use: int = 0
    chips_condemned: int = 0
    wait_ms_total: float = 0.0
    #: Worst free-pool fragmentation observed (running maximum, sampled
    #: after every scheduling pass).
    peak_fragmentation: float = 0.0

    @property
    def mean_wait_ms(self) -> float:
        """Mean queue wait of the jobs scheduled so far."""
        if self.scheduled == 0:
            return 0.0
        return self.wait_ms_total / self.scheduled

    def summary(self) -> Dict[str, float]:
        """A flat metric dictionary for reports and benchmarks."""
        return {
            "submitted": self.submitted,
            "rejected": self.rejected,
            "scheduled": self.scheduled,
            "freed": self.freed,
            "expired": self.expired,
            "skips_quota": self.skips_quota,
            "skips_capacity": self.skips_capacity,
            "chips_leased_total": self.chips_leased_total,
            "peak_chips_in_use": self.peak_chips_in_use,
            "chips_condemned": self.chips_condemned,
            "mean_wait_ms": self.mean_wait_ms,
            "peak_fragmentation": self.peak_fragmentation,
        }


class AllocationScheduler:
    """Multi-tenant job scheduling over one shared machine."""

    def __init__(self, machine: SpiNNakerMachine,
                 policy: str = "first-fit",
                 power_on_delay_us: float = DEFAULT_POWER_ON_DELAY_US,
                 decision_cycles: int = DEFAULT_DECISION_CYCLES,
                 clock: Optional[ClockDomain] = None,
                 partitioner: Optional[MachinePartitioner] = None,
                 queue: Optional[JobQueue] = None) -> None:
        if policy not in PLACEMENT_POLICIES:
            raise ValueError("unknown placement policy %r" % (policy,))
        if power_on_delay_us < 0:
            raise ValueError("power-on delay must be non-negative")
        self.machine = machine
        self.kernel: EventKernel = machine.kernel
        self.policy = policy
        self.power_on_delay_us = power_on_delay_us
        self.decision_cycles = decision_cycles
        self.clock = clock or ClockDomain("alloc-controller",
                                          DEFAULT_CONTROLLER_MHZ)
        self.partitioner = partitioner or MachinePartitioner(machine)
        self.queue = queue or JobQueue()
        #: Every job ever submitted, by id (the facility's historical
        #: record; terminal jobs stay addressable for status queries).
        self.jobs: Dict[int, Job] = {}
        #: Only the jobs currently holding leases — the working set the
        #: scheduling and sweep loops iterate, so passes stay O(active).
        self._active: Dict[int, Job] = {}
        self.stats = AllocationStatistics()
        self._job_ids = itertools.count(1)
        self._sweep_controller = None

    # ------------------------------------------------------------------
    # Time base
    # ------------------------------------------------------------------
    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self.kernel.now / 1000.0

    @property
    def decision_latency_us(self) -> float:
        """Time one placement decision takes on the controller's clock."""
        return self.clock.cycles_to_microseconds(self.decision_cycles)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Create a job; it is REJECTED, or QUEUED and scheduled eagerly.

        Requests larger than the machine are rejected outright rather
        than queued forever.
        """
        job = Job(next(self._job_ids), request, self.now_ms)
        self.jobs[job.job_id] = job
        self.stats.submitted += 1
        too_large = (request.width > self.partitioner.width
                     or request.height > self.partitioner.height)
        if too_large or not self.queue.admit_submission(request.tenant,
                                                        self.now_ms):
            job.transition(JobState.REJECTED, self.now_ms)
            self.stats.rejected += 1
            return job
        self.queue.push(job)
        self.schedule()
        return job

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def tenant_usage(self, tenant: str) -> Tuple[int, int]:
        """``(active jobs, leased chips)`` currently held by ``tenant``."""
        jobs = chips = 0
        for job in self._active.values():
            if job.request.tenant == tenant:
                jobs += 1
                chips += job.lease.n_chips if job.lease is not None else 0
        return jobs, chips

    def schedule(self) -> List[Job]:
        """One scheduling pass; returns the jobs newly moved to POWERING.

        Jobs are visited in (priority, submission) order.  A job whose
        tenant is over quota or whose rectangle does not fit stays queued;
        later, smaller jobs may still be scheduled around it (space
        sharing beats strict head-of-line blocking on a 2-D resource).
        """
        started: List[Job] = []
        for job in self.queue.pending():
            request = job.request
            quota = self.queue.quota_for(request.tenant)
            active_jobs, leased_chips = self.tenant_usage(request.tenant)
            if (active_jobs >= quota.max_active_jobs
                    or leased_chips + request.n_chips > quota.max_leased_chips):
                self.stats.skips_quota += 1
                continue
            lease = self.partitioner.allocate(request.width, request.height,
                                              policy=self.policy,
                                              tenant=request.tenant)
            if lease is None:
                self.stats.skips_capacity += 1
                continue
            job.lease = lease
            self._active[job.job_id] = job
            self.stats.wait_ms_total += job.wait_ms(self.now_ms)
            job.transition(JobState.POWERING, self.now_ms)
            job.touch(self.now_ms)
            self.stats.scheduled += 1
            self.stats.chips_leased_total += lease.n_chips
            in_use = self.partitioner.leased_area
            self.stats.peak_chips_in_use = max(self.stats.peak_chips_in_use,
                                               in_use)
            self.kernel.schedule_after(
                self.power_on_delay_us + self.decision_latency_us,
                self._power_on, label="alloc-power-on", job_id=job.job_id)
            started.append(job)
        self.stats.peak_fragmentation = max(self.stats.peak_fragmentation,
                                            self.partitioner.fragmentation())
        return started

    def _power_on(self, _kernel: EventKernel, job_id: int) -> None:
        job = self.jobs[job_id]
        if job.state is not JobState.POWERING:
            return  # released or expired while the boards were powering
        view = LeasedMachineView(self.machine, job.lease)
        view.power_cycle()
        job.machine_view = view
        job.transition(JobState.READY, self.now_ms)
        job.touch(self.now_ms)
        self.stats.ready += 1

    # ------------------------------------------------------------------
    # Release, keepalive and expiry
    # ------------------------------------------------------------------
    def keepalive(self, job_id: int) -> bool:
        """Record a client keepalive; False if the job is not alive."""
        job = self.jobs.get(job_id)
        if job is None:
            return False
        return job.touch(self.now_ms)

    def release(self, job_id: int) -> bool:
        """Release a job (queued or active); True if anything changed."""
        job = self.jobs.get(job_id)
        if job is None or job.state.is_terminal:
            return False
        self._reclaim(job, JobState.FREED)
        self.stats.freed += 1
        self.schedule()
        return True

    def _reclaim(self, job: Job, final_state: JobState) -> None:
        if job.lease is not None:
            self.partitioner.release(job.lease)
        job.lease = None
        job.machine_view = None
        job.transition(final_state, self.now_ms)
        self._active.pop(job.job_id, None)

    def sweep(self) -> List[Job]:
        """Expire jobs whose keepalives lapsed, then reschedule.

        Both leased jobs and jobs still waiting in the queue expire: a
        crashed client must not haunt the queue any more than the
        machine.  Returns the jobs expired by this sweep.  Driven either
        directly by tests, periodically through :meth:`start_expiry_timer`,
        or — in the live HTTP service — by the
        :class:`repro.service.runtime.ServiceRuntime` reaper, which is the
        *single* place expiry is evaluated against the monotonic wall
        clock, so status queries can never observe a READY job whose
        lease has already lapsed.
        """
        expired: List[Job] = []
        candidates = list(self._active.values()) + self.queue.pending()
        for job in candidates:
            if job.keepalive_expired(self.now_ms):
                self._reclaim(job, JobState.EXPIRED)
                self.stats.expired += 1
                expired.append(job)
        if expired:
            self.schedule()
        return expired

    def start_expiry_timer(self, period_ms: float = 1.0) -> None:
        """Run :meth:`sweep` every ``period_ms`` of simulated time."""
        if period_ms <= 0:
            raise ValueError("sweep period must be positive")
        if self._sweep_controller is not None:
            self._sweep_controller.cancel()
        self._sweep_controller = self.kernel.schedule_periodic(
            milliseconds(period_ms), lambda _kernel: self.sweep(),
            label="alloc-expiry-sweep")

    def stop_expiry_timer(self) -> None:
        """Cancel the periodic expiry sweep."""
        if self._sweep_controller is not None:
            self._sweep_controller.cancel()
            self._sweep_controller = None

    # ------------------------------------------------------------------
    # Fault integration (driven by the monitor service)
    # ------------------------------------------------------------------
    def handle_dead_chip(self, coordinate: ChipCoordinate) -> Optional[Job]:
        """A chip died: carve it out of the free pool or shrink its lease.

        Returns the affected job, if the chip was under lease.  A lease
        reduced to nothing expires its job on the spot.  Repeat reports
        of the same chip are no-ops.
        """
        if coordinate not in self.partitioner.faulty:
            self.stats.chips_condemned += 1
        lease = self.partitioner.mark_faulty(coordinate)
        if lease is None:
            return None
        for job in list(self._active.values()):
            if job.lease is lease:
                if lease.n_chips == 0:
                    self._reclaim(job, JobState.EXPIRED)
                    self.stats.expired += 1
                elif job.machine_view is not None:
                    job.machine_view.refresh()
                return job
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def job(self, job_id: int) -> Optional[Job]:
        """Look up a job by id."""
        return self.jobs.get(job_id)

    def queue_depth(self) -> int:
        """Number of jobs waiting in the queue (the backpressure signal)."""
        return len(self.queue)

    def load_snapshot(self) -> Dict[str, float]:
        """A point-in-time load summary for service endpoints and gates."""
        return {
            "queued": float(len(self.queue)),
            "active": float(len(self._active)),
            "leased_chips": float(self.partitioner.leased_area),
            "free_chips": float(self.partitioner.free_area),
            "fragmentation": self.partitioner.fragmentation(),
        }

    def prune_terminal(self, keep: int = 10000) -> int:
        """Forget the oldest terminal jobs beyond ``keep``.

        The historical record (`self.jobs`) would otherwise grow without
        bound in a long-running service.  Returns the number pruned.
        Terminal jobs stay addressable until pruned, so recently released
        jobs still answer status queries.
        """
        if keep < 0:
            raise ValueError("keep must be non-negative")
        terminal = [job_id for job_id, job in self.jobs.items()
                    if job.state.is_terminal]
        excess = len(terminal) - keep
        for job_id in terminal[:max(excess, 0)]:
            del self.jobs[job_id]
        return max(excess, 0)

    def machine_view(self, job_id: int) -> Optional[LeasedMachineView]:
        """The READY job's scoped machine, or ``None``."""
        job = self.jobs.get(job_id)
        if job is None or job.state is not JobState.READY:
            return None
        return job.machine_view

    def active_jobs(self) -> List[Job]:
        """Jobs currently holding leases (POWERING or READY)."""
        return list(self._active.values())

    def queued_jobs(self) -> List[Job]:
        """Jobs waiting in the queue, best-priority first."""
        return self.queue.pending()
