"""Carving the torus into rectangular sub-machine leases.

A spalloc-style allocation server divides one large SpiNNaker machine
between many concurrent tenants.  The unit of allocation here is a
rectangle of chips: rectangles tile the torus cleanly, keep every job's
multicast traffic inside its own region (dimension-ordered routes between
two chips of a rectangle never leave it) and admit a classical free-list
allocator.

The partitioner maintains a *free list* of disjoint rectangles covering
every unleased, non-faulty chip:

* **allocation** carves a requested ``width x height`` region out of one
  free rectangle (a guillotine split leaves at most four smaller free
  rectangles behind);
* **release** returns a lease's rectangle to the free list and then
  *coalesces* — neighbouring free rectangles that share a full edge are
  merged — which is what keeps long-running facilities from fragmenting
  into confetti after out-of-order releases;
* **faults** are first-class: chips marked failed through the existing
  hooks in :mod:`repro.core.machine` (dead links, failed cores, boot
  failures) are carved out of the free space at construction and are never
  part of any candidate placement, and chips condemned at run time shrink
  the owning lease in place.

Placement policy (first-fit / best-fit / locality-fit) is chosen by the
scheduler; the partitioner exposes the mechanics plus fragmentation
statistics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import SpiNNakerMachine

__all__ = ["Rect", "Lease", "MachinePartitioner", "PLACEMENT_POLICIES"]

#: Placement policies understood by :meth:`MachinePartitioner.allocate`.
PLACEMENT_POLICIES = ("first-fit", "best-fit", "locality-fit")


@dataclass(frozen=True, order=True)
class Rect:
    """An axis-aligned rectangle of chips, ``[x, x+width) x [y, y+height)``."""

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("rectangle dimensions must be positive")

    @property
    def area(self) -> int:
        """Number of chips covered."""
        return self.width * self.height

    @property
    def x2(self) -> int:
        """Exclusive right edge."""
        return self.x + self.width

    @property
    def y2(self) -> int:
        """Exclusive top edge."""
        return self.y + self.height

    def chips(self) -> Iterator[ChipCoordinate]:
        """Iterate over the covered chip coordinates in raster order."""
        for y in range(self.y, self.y2):
            for x in range(self.x, self.x2):
                yield ChipCoordinate(x, y)

    def contains(self, coordinate: ChipCoordinate) -> bool:
        """True if ``coordinate`` lies inside this rectangle."""
        return (self.x <= coordinate.x < self.x2
                and self.y <= coordinate.y < self.y2)

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return (self.x <= other.x and other.x2 <= self.x2
                and self.y <= other.y and other.y2 <= self.y2)

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles share at least one chip."""
        return (self.x < other.x2 and other.x < self.x2
                and self.y < other.y2 and other.y < self.y2)

    def centre(self) -> ChipCoordinate:
        """The (rounded-down) central chip of the rectangle."""
        return ChipCoordinate(self.x + (self.width - 1) // 2,
                              self.y + (self.height - 1) // 2)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%dx%d@(%d,%d)" % (self.width, self.height, self.x, self.y)


def subtract(rect: Rect, hole: Rect) -> List[Rect]:
    """Cover ``rect`` minus ``hole`` with at most four disjoint rectangles.

    The split is the standard guillotine decomposition: full-width strips
    below and above the hole, then side strips at the hole's own height.
    """
    if not rect.intersects(hole):
        return [rect]
    pieces: List[Rect] = []
    hx, hx2 = max(rect.x, hole.x), min(rect.x2, hole.x2)
    hy, hy2 = max(rect.y, hole.y), min(rect.y2, hole.y2)
    if hy > rect.y:                                    # strip below
        pieces.append(Rect(rect.x, rect.y, rect.width, hy - rect.y))
    if hy2 < rect.y2:                                  # strip above
        pieces.append(Rect(rect.x, hy2, rect.width, rect.y2 - hy2))
    if hx > rect.x:                                    # left side
        pieces.append(Rect(rect.x, hy, hx - rect.x, hy2 - hy))
    if hx2 < rect.x2:                                  # right side
        pieces.append(Rect(hx2, hy, rect.x2 - hx2, hy2 - hy))
    return pieces


@dataclass
class Lease:
    """A tenant's exclusive hold on a rectangle of chips.

    ``excluded`` grows when chips inside the rectangle die while the lease
    is live (the monitor condemns them); those chips are no longer part of
    the leased sub-machine and are not returned to the free pool when the
    lease ends.
    """

    lease_id: int
    rect: Rect
    tenant: str = ""
    excluded: Set[ChipCoordinate] = field(default_factory=set)

    def chips(self) -> List[ChipCoordinate]:
        """The currently-usable chips of the lease, in raster order."""
        return [c for c in self.rect.chips() if c not in self.excluded]

    @property
    def n_chips(self) -> int:
        """Number of usable chips remaining in the lease."""
        return self.rect.area - len(self.excluded)

    def contains(self, coordinate: ChipCoordinate) -> bool:
        """True if ``coordinate`` is a usable chip of this lease."""
        return self.rect.contains(coordinate) and coordinate not in self.excluded


class MachinePartitioner:
    """Free-list allocator of rectangular chip regions on one machine.

    Parameters
    ----------
    machine:
        The machine (or a compatible view) being partitioned.
    chip_usable:
        Optional predicate overriding the default fault scan.  The default
        considers a chip unusable when its boot failed, when every core has
        failed or been mapped out, or when all six of its outgoing links
        are marked failed (the chip is unreachable).
    """

    def __init__(self, machine: SpiNNakerMachine,
                 chip_usable=None) -> None:
        self.machine = machine
        self.width = machine.config.width
        self.height = machine.config.height
        self._chip_usable = chip_usable or self._default_usable
        self.faulty: Set[ChipCoordinate] = set()
        self._free: List[Rect] = [Rect(0, 0, self.width, self.height)]
        self._leases: Dict[int, Lease] = {}
        self._lease_ids = itertools.count(1)
        self.refresh_faults()

    # ------------------------------------------------------------------
    # Fault awareness
    # ------------------------------------------------------------------
    def _default_usable(self, coordinate: ChipCoordinate) -> bool:
        chip = self.machine.chips[coordinate]
        if chip.state.boot_failed:
            return False
        if all(core.state.value in ("failed", "disabled")
               for core in chip.cores):
            return False
        if all(self.machine.links[(coordinate, d)].failed for d in Direction):
            return False
        return True

    def refresh_faults(self) -> List[ChipCoordinate]:
        """Re-scan the free space for newly-failed chips and carve them out.

        Returns the chips newly marked faulty.  Chips inside live leases
        are *not* scanned here; run-time failures reach the partitioner
        through :meth:`mark_faulty` (driven by the monitor service).
        """
        newly_faulty = [c for rect in list(self._free) for c in rect.chips()
                        if c not in self.faulty and not self._chip_usable(c)]
        for coordinate in newly_faulty:
            self.mark_faulty(coordinate)
        return newly_faulty

    def mark_faulty(self, coordinate: ChipCoordinate) -> Optional[Lease]:
        """Record a dead chip; returns the lease that held it, if any.

        A free chip is carved out of its free rectangle.  A leased chip is
        excluded from the lease in place (the lease shrinks); the chip is
        never returned to the free pool.
        """
        if coordinate in self.faulty:
            return self.owner_of(coordinate)
        self.faulty.add(coordinate)
        cell = Rect(coordinate.x, coordinate.y, 1, 1)
        for rect in self._free:
            if rect.contains(coordinate):
                self._free.remove(rect)
                self._free.extend(subtract(rect, cell))
                return None
        lease = self.owner_of(coordinate)
        if lease is not None:
            lease.excluded.add(coordinate)
        return lease

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, width: int, height: int, policy: str = "first-fit",
                 tenant: str = "") -> Optional[Lease]:
        """Lease a ``width x height`` rectangle, or return ``None``.

        Candidate placements are corners of free rectangles large enough to
        hold the request; free rectangles never contain faulty chips, so
        every candidate is fault-free by construction.
        """
        if width < 1 or height < 1:
            raise ValueError("lease dimensions must be positive")
        if policy not in PLACEMENT_POLICIES:
            raise ValueError("unknown placement policy %r (expected one of %s)"
                             % (policy, ", ".join(PLACEMENT_POLICIES)))
        if width > self.width or height > self.height:
            return None

        choice = self._choose_placement(width, height, policy)
        if choice is None:
            return None
        return self._commit(choice, tenant)

    def allocate_boards(self, boards_wide: int, boards_high: int,
                        policy: str = "first-fit",
                        tenant: str = "") -> Optional[Lease]:
        """Lease a whole-board rectangle spanning board boundaries.

        On a multi-board machine (see
        :attr:`~repro.core.machine.MachineConfig.board_width`) jobs large
        enough to cross board cables are leased in whole boards, aligned
        to the board grid — a ``2 x 1``-board request returns a
        board-aligned ``2*board_width x board_height`` chip rectangle, so
        the tenant's inter-board links are its own and the machine's
        remaining boards stay whole for later multi-board jobs.
        """
        config = self.machine.config
        if config.board_width is None:
            raise ValueError("machine has no board grid; use allocate()")
        if boards_wide < 1 or boards_high < 1:
            raise ValueError("board-lease dimensions must be positive")
        if policy not in PLACEMENT_POLICIES:
            raise ValueError("unknown placement policy %r (expected one of %s)"
                             % (policy, ", ".join(PLACEMENT_POLICIES)))
        width = boards_wide * config.board_width
        height = boards_high * config.board_height
        if width > self.width or height > self.height:
            return None
        choice = self._choose_placement(width, height, policy,
                                        align=(config.board_width,
                                               config.board_height))
        if choice is None:
            return None
        return self._commit(choice, tenant)

    def _commit(self, choice: Tuple[Rect, Rect], tenant: str) -> Lease:
        free_rect, placed = choice
        self._free.remove(free_rect)
        self._free.extend(subtract(free_rect, placed))
        lease = Lease(lease_id=next(self._lease_ids), rect=placed,
                      tenant=tenant)
        self._leases[lease.lease_id] = lease
        return lease

    def boards_of(self, lease: Lease) -> List[int]:
        """The board ids a lease's rectangle spans (sorted)."""
        config = self.machine.config
        return sorted({config.board_of(coordinate)
                       for coordinate in lease.rect.chips()})

    def _choose_placement(self, width: int, height: int, policy: str,
                          align: Optional[Tuple[int, int]] = None
                          ) -> Optional[Tuple[Rect, Rect]]:
        fitting = [rect for rect in self._free
                   if rect.width >= width and rect.height >= height]
        if not fitting:
            return None
        if align is None and policy == "first-fit":
            rect = min(fitting, key=lambda r: (r.y, r.x))
            return rect, Rect(rect.x, rect.y, width, height)
        if align is None and policy == "best-fit":
            rect = min(fitting,
                       key=lambda r: (r.area - width * height, r.y, r.x))
            return rect, Rect(rect.x, rect.y, width, height)
        if align is not None and policy in ("first-fit", "best-fit"):
            best_aligned: Optional[Tuple[Tuple, Rect, Rect]] = None
            for rect in fitting:
                for placed in self._aligned_placements(rect, width, height,
                                                       align):
                    if policy == "first-fit":
                        score: Tuple = (placed.y, placed.x)
                    else:
                        score = (rect.area - width * height,
                                 placed.y, placed.x)
                    if best_aligned is None or score < best_aligned[0]:
                        best_aligned = (score, rect, placed)
            if best_aligned is None:
                return None
            return best_aligned[1], best_aligned[2]
        # locality-fit: of every candidate placement in every fitting free
        # rectangle, pick the one closest to the host gateway that keeps
        # clear of known-bad silicon around its perimeter.
        gateway = self.machine.ethernet_chips[0]
        best: Optional[Tuple[Tuple[float, int, int], Rect, Rect]] = None
        for rect in fitting:
            candidates = (self._aligned_placements(rect, width, height, align)
                          if align is not None
                          else self._corner_placements(rect, width, height))
            for placed in candidates:
                score = (self.machine.geometry.distance(placed.centre(), gateway)
                         + 4.0 * self._faulty_perimeter(placed),
                         placed.y, placed.x)
                if best is None or score < best[0]:
                    best = (score, rect, placed)
        if best is None:
            return None
        return best[1], best[2]

    @staticmethod
    def _aligned_placements(rect: Rect, width: int, height: int,
                            align: Tuple[int, int]) -> List[Rect]:
        """Placements inside ``rect`` whose origin sits on the grid."""
        align_x, align_y = align
        first_x = -(-rect.x // align_x) * align_x
        first_y = -(-rect.y // align_y) * align_y
        return [Rect(x, y, width, height)
                for y in range(first_y, rect.y2 - height + 1, align_y)
                for x in range(first_x, rect.x2 - width + 1, align_x)]

    @staticmethod
    def _corner_placements(rect: Rect, width: int,
                           height: int) -> List[Rect]:
        origins = {(rect.x, rect.y), (rect.x2 - width, rect.y),
                   (rect.x, rect.y2 - height), (rect.x2 - width, rect.y2 - height)}
        return [Rect(x, y, width, height) for x, y in sorted(origins)]

    def _faulty_perimeter(self, placed: Rect) -> int:
        """Number of faulty chips adjacent to the rectangle's perimeter."""
        count = 0
        for coordinate in self.faulty:
            if (placed.x - 1 <= coordinate.x <= placed.x2
                    and placed.y - 1 <= coordinate.y <= placed.y2
                    and not placed.contains(coordinate)):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Release and coalescing
    # ------------------------------------------------------------------
    def release(self, lease: Lease) -> None:
        """Return a lease's usable chips to the free list and coalesce."""
        if lease.lease_id not in self._leases:
            raise KeyError("lease %d is not live" % lease.lease_id)
        del self._leases[lease.lease_id]
        returned = [lease.rect]
        for coordinate in lease.rect.chips():
            if coordinate in self.faulty:
                cell = Rect(coordinate.x, coordinate.y, 1, 1)
                returned = [piece for rect in returned
                            for piece in subtract(rect, cell)]
        self._free.extend(returned)
        self.coalesce()

    def coalesce(self) -> int:
        """Re-derive a canonical decomposition of the free space.

        Pairwise edge-merging alone can wedge (four rectangles arranged in
        a pinwheel cover a square but share no full edge), so coalescing
        rebuilds the free list from the covered cells: maximal x-intervals
        per row, stacked into rectangles across runs of identical
        intervals.  Two 4x4 regions released out of order become one 8x4
        region a later large request can use, and a fully-free pool always
        collapses back to a single rectangle.

        Returns the reduction in free-list length.
        """
        before = len(self._free)
        columns_by_row: Dict[int, Set[int]] = {}
        for rect in self._free:
            for y in range(rect.y, rect.y2):
                columns_by_row.setdefault(y, set()).update(
                    range(rect.x, rect.x2))

        intervals_by_row: Dict[int, List[Tuple[int, int]]] = {}
        for y, columns in columns_by_row.items():
            intervals: List[Tuple[int, int]] = []
            for x in sorted(columns):
                if intervals and x == intervals[-1][0] + intervals[-1][1]:
                    intervals[-1] = (intervals[-1][0], intervals[-1][1] + 1)
                else:
                    intervals.append((x, 1))
            intervals_by_row[y] = intervals

        rebuilt: List[Rect] = []
        open_runs: Dict[Tuple[int, int], int] = {}  # (x, width) -> start row
        previous_y: Optional[int] = None
        for y in sorted(intervals_by_row):
            if previous_y is not None and y != previous_y + 1:
                for (x, width), start in open_runs.items():
                    rebuilt.append(Rect(x, start, width, previous_y + 1 - start))
                open_runs = {}
            row = set(intervals_by_row[y])
            for key in [key for key in open_runs if key not in row]:
                x, width = key
                start = open_runs.pop(key)
                rebuilt.append(Rect(x, start, width, y - start))
            for key in row:
                open_runs.setdefault(key, y)
            previous_y = y
        for (x, width), start in open_runs.items():
            rebuilt.append(Rect(x, start, width, previous_y + 1 - start))

        self._free = rebuilt
        return before - len(rebuilt)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def owner_of(self, coordinate: ChipCoordinate) -> Optional[Lease]:
        """The live lease holding ``coordinate``, or ``None``."""
        for lease in self._leases.values():
            if lease.rect.contains(coordinate):
                return lease
        return None

    @property
    def leases(self) -> List[Lease]:
        """All live leases."""
        return list(self._leases.values())

    @property
    def free_rectangles(self) -> List[Rect]:
        """The current free list (disjoint, fault-free rectangles)."""
        return list(self._free)

    @property
    def free_area(self) -> int:
        """Number of allocatable chips."""
        return sum(rect.area for rect in self._free)

    @property
    def leased_area(self) -> int:
        """Number of chips currently under lease (excluding dead ones)."""
        return sum(lease.n_chips for lease in self._leases.values())

    def largest_free_rectangle(self) -> int:
        """Area of the largest single free rectangle."""
        return max((rect.area for rect in self._free), default=0)

    def fragmentation(self) -> float:
        """``1 - largest_free_rect / free_area`` — 0 when free space is one
        solid block, approaching 1 as it shatters into small pieces."""
        free = self.free_area
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_rectangle() / free

    def can_fit(self, width: int, height: int) -> bool:
        """True if a ``width x height`` request could be satisfied now."""
        return any(rect.width >= width and rect.height >= height
                   for rect in self._free)
