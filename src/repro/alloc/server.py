"""The host-facing allocation server (spalloc's role in this reproduction).

The server extends the management protocol of
:mod:`repro.host.host_system` with three allocation commands carried in
the same SDP-style datagrams as every other host operation:

* ``CREATE_JOB`` — submit a job (tenant, width, height, priority,
  keepalive interval); the response carries the job id and its initial
  state (``queued`` or ``rejected``);
* ``JOB_KEEPALIVE`` — refresh a job's keepalive and read back its state;
* ``RELEASE_JOB`` — give the lease back.

Attaching the server to a :class:`~repro.host.host_system.HostSystem`
(`host.attach_allocation_server`) routes those commands here; everything
else continues to behave exactly as before.  Python-side callers can use
the richer object API (:meth:`create_job`, :meth:`machine_view`) to get
the actual :class:`~repro.alloc.machine_view.LeasedMachineView` a READY
job boots and loads.

The server can also subscribe to the
:class:`~repro.runtime.monitor.MonitorService`: chips the monitor
condemns shrink the owning lease and leave the allocatable pool for good.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.alloc.job import Job, JobRequest
from repro.alloc.machine_view import LeasedMachineView
from repro.alloc.scheduler import AllocationScheduler
from repro.host.host_system import HostCommand, HostSystem

__all__ = ["AllocationServer", "ERROR_BAD_REQUEST", "ERROR_NO_SUCH_JOB",
           "ERROR_BAD_COMMAND", "ERROR_INTERNAL"]

#: Typed error codes carried in the ``code`` field of error responses.
#: The wire path (SDP today, HTTP via :mod:`repro.service`) maps these to
#: transport-level statuses; internal exceptions never cross the wire.
ERROR_BAD_REQUEST = "bad-request"
ERROR_NO_SUCH_JOB = "no-such-job"
ERROR_BAD_COMMAND = "bad-command"
ERROR_INTERNAL = "internal-error"


def error_response(code: str, message: str) -> Dict[str, Any]:
    """A structured error body (``error`` text plus a typed ``code``)."""
    return {"error": message, "code": code}


class AllocationServer:
    """Multi-tenant job admission over the host's management channel."""

    def __init__(self, host: HostSystem,
                 scheduler: Optional[AllocationScheduler] = None,
                 **scheduler_kwargs: Any) -> None:
        self.host = host
        self.machine = host.machine
        if scheduler is not None and scheduler_kwargs:
            raise ValueError("pass scheduler options either as a built "
                             "scheduler or as keyword arguments, not both")
        self.scheduler = scheduler or AllocationScheduler(self.machine,
                                                          **scheduler_kwargs)
        host.attach_allocation_server(self)

    # ------------------------------------------------------------------
    # SDP command dispatch (called by HostSystem._execute)
    # ------------------------------------------------------------------
    def handle(self, command: HostCommand,
               arguments: Dict[str, Any]) -> Dict[str, Any]:
        """Execute one allocation command and build its response.

        Every failure comes back as a structured error body with a typed
        ``code``; no exception — malformed arguments *or* an internal
        scheduler fault — ever propagates into the host's dispatch loop.
        """
        try:
            if not isinstance(arguments, dict):
                return error_response(
                    ERROR_BAD_REQUEST,
                    "arguments must be a mapping, got %s"
                    % type(arguments).__name__)
            if command is HostCommand.CREATE_JOB:
                return self._handle_create(arguments)
            if command is HostCommand.JOB_KEEPALIVE:
                return self._handle_keepalive(arguments)
            if command is HostCommand.RELEASE_JOB:
                return self._handle_release(arguments)
            return error_response(ERROR_BAD_COMMAND,
                                  "not an allocation command: %s" % (command,))
        except Exception as error:  # the wire path must never crash
            return error_response(ERROR_INTERNAL,
                                  "%s: %s" % (type(error).__name__, error))

    def _handle_create(self, arguments: Dict[str, Any]) -> Dict[str, Any]:
        try:
            request = JobRequest(
                tenant=str(arguments.get("tenant", "")),
                width=int(arguments.get("width", 1)),
                height=int(arguments.get("height", 1)),
                priority=int(arguments.get("priority", 5)),
                keepalive_ms=float(arguments.get("keepalive_ms", 1000.0)),
                label=str(arguments.get("label", "")))
        except (TypeError, ValueError) as error:
            return error_response(ERROR_BAD_REQUEST, str(error))
        job = self.scheduler.submit(request)
        return job.describe()

    def _handle_keepalive(self, arguments: Dict[str, Any]) -> Dict[str, Any]:
        job = self._job_from(arguments)
        if job is None:
            return error_response(ERROR_NO_SUCH_JOB, "no such job")
        alive = self.scheduler.keepalive(job.job_id)
        response = job.describe()
        response["alive"] = alive
        return response

    def _handle_release(self, arguments: Dict[str, Any]) -> Dict[str, Any]:
        job = self._job_from(arguments)
        if job is None:
            return error_response(ERROR_NO_SUCH_JOB, "no such job")
        released = self.scheduler.release(job.job_id)
        response = job.describe()
        response["released"] = released
        return response

    def _job_from(self, arguments: Dict[str, Any]) -> Optional[Job]:
        try:
            return self.scheduler.job(int(arguments["job_id"]))
        except (KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Object API (host-side Python callers)
    # ------------------------------------------------------------------
    def create_job(self, tenant: str, width: int, height: int,
                   priority: int = 5, keepalive_ms: float = 1000.0,
                   label: str = "") -> Job:
        """Submit a job and return the live :class:`Job` object."""
        return self.scheduler.submit(JobRequest(
            tenant=tenant, width=width, height=height, priority=priority,
            keepalive_ms=keepalive_ms, label=label))

    def keepalive(self, job_id: int) -> bool:
        """Refresh a job's keepalive."""
        return self.scheduler.keepalive(job_id)

    def release(self, job_id: int) -> bool:
        """Release a job's lease (or drop it from the queue)."""
        return self.scheduler.release(job_id)

    def job(self, job_id: int) -> Optional[Job]:
        """Look up a job."""
        return self.scheduler.job(job_id)

    def machine_view(self, job_id: int) -> Optional[LeasedMachineView]:
        """The scoped sub-machine of a READY job."""
        return self.scheduler.machine_view(job_id)

    # ------------------------------------------------------------------
    # Monitor integration
    # ------------------------------------------------------------------
    def attach_monitor(self, monitor: Any) -> None:
        """Subscribe to a monitor service's chip-death notifications."""
        monitor.add_chip_death_listener(self.scheduler.handle_dead_chip)
