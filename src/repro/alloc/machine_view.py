"""A scoped view of one machine restricted to a lease.

A job that has been handed a lease needs something that looks like a
:class:`~repro.core.machine.SpiNNakerMachine` but only contains its own
chips, so that the existing boot, flood-fill, mapping and application
layers work unchanged on the sub-machine.  :class:`LeasedMachineView`
provides exactly that:

* ``chips`` is the lease's slice of the parent machine's chip dictionary,
  in parent-frame coordinates — the underlying routers and links are the
  real, shared hardware;
* ``geometry`` is a :class:`LeaseGeometry` whose routes are confined to
  the lease rectangle, so the multicast routing tables generated for a
  job only ever involve the job's own chips and links (this is what makes
  concurrent jobs non-interfering);
* ``send_nearest_neighbour`` refuses to cross the lease boundary, so one
  job's boot-time coordinate flood cannot leak into a neighbouring job;
* ``ethernet_chips`` nominates the lease's origin chip as the job's boot
  gateway, mirroring how every allocated spalloc board set gets its own
  Ethernet-relative root chip.

The view is deliberately thin: simulated time, packet transport and chip
state all live in the parent machine, which is what makes several jobs on
one machine advance together under a single event kernel.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.alloc.partition import Lease
from repro.core.chip import Chip
from repro.core.geometry import ChipCoordinate, Direction, TorusGeometry
from repro.core.machine import Link, SpiNNakerMachine

__all__ = ["LeaseGeometry", "LeasedMachineView"]


class LeaseGeometry(TorusGeometry):
    """Torus geometry restricted to a lease rectangle.

    Coordinates stay in the parent machine's frame.  Displacements (and
    therefore routes) are confined to the rectangle: an axis only wraps
    when the lease spans the full machine along that axis, in which case
    the sub-machine genuinely is a (smaller) torus in that dimension.
    Because dimension-ordered decomposition never leaves the bounding box
    of its endpoints, every route between two lease chips stays inside
    the lease.
    """

    def __init__(self, lease: Lease, machine_width: int,
                 machine_height: int) -> None:
        super().__init__(machine_width, machine_height)
        self.lease = lease
        self.rect = lease.rect
        self.wraps_x = lease.rect.width == machine_width
        self.wraps_y = lease.rect.height == machine_height

    def displacement(self, source: ChipCoordinate,
                     target: ChipCoordinate) -> Tuple[int, int]:
        """Minimal displacement that stays within the lease rectangle."""
        dx_options = (self._axis_candidates(target.x - source.x, self.width)
                      if self.wraps_x else (target.x - source.x,))
        dy_options = (self._axis_candidates(target.y - source.y, self.height)
                      if self.wraps_y else (target.y - source.y,))
        best: Optional[Tuple[int, int, int]] = None
        for dx in dx_options:
            for dy in dy_options:
                candidate = (self.hex_distance(dx, dy), dx, dy)
                if best is None or candidate < best:
                    best = candidate
        return best[1], best[2]

    def all_chips(self) -> Iterator[ChipCoordinate]:
        """Iterate over the lease's usable chips in raster order."""
        for coordinate in self.rect.chips():
            if coordinate not in self.lease.excluded:
                yield coordinate

    def contains(self, coordinate: ChipCoordinate) -> bool:
        """True if ``coordinate`` is a usable chip of the lease."""
        return self.lease.contains(coordinate)

    @property
    def n_chips(self) -> int:
        """Number of usable chips in the lease."""
        return self.lease.n_chips

    def neighbours(self, coord: ChipCoordinate) -> List[Tuple[Direction, ChipCoordinate]]:
        """The ``(direction, neighbour)`` pairs that stay inside the lease."""
        return [(direction, neighbour)
                for direction, neighbour in super().neighbours(coord)
                if self.lease.contains(neighbour)]


class LeasedMachineView:
    """A job's private window onto a shared :class:`SpiNNakerMachine`.

    Exposes the subset of the machine API used by the boot controller, the
    flood-fill loader, the mapping tool-chain and the application runtime,
    limited to the lease's chips.  ``config`` and ``kernel`` are the
    parent's: coordinates remain parent-frame and simulated time is shared
    by every job on the machine.
    """

    def __init__(self, machine: SpiNNakerMachine, lease: Lease) -> None:
        self.machine = machine
        self.lease = lease
        self.config = machine.config
        self.kernel = machine.kernel
        self.geometry = LeaseGeometry(lease, machine.config.width,
                                      machine.config.height)
        self.chips: Dict[ChipCoordinate, Chip] = {}
        self.ethernet_chips: List[ChipCoordinate] = []
        self.refresh()

    def refresh(self) -> None:
        """Re-derive the chip set after the lease shrank (chips condemned)."""
        self.chips = {coordinate: self.machine.chips[coordinate]
                      for coordinate in self.lease.chips()}
        # Internal and boundary links only change when the chip set does,
        # so they are indexed here rather than scanned per access (the
        # parent machine may be orders of magnitude larger than the lease).
        self._internal_links: Dict[Tuple[ChipCoordinate, Direction], Link] = {}
        self._boundary_links: List[Link] = []
        for coordinate in self.chips:
            for direction in Direction:
                link = self.machine.links[(coordinate, direction)]
                if link.target in self.chips:
                    self._internal_links[(coordinate, direction)] = link
                else:
                    self._boundary_links.append(link)  # outbound
                    self._boundary_links.append(       # matching inbound
                        self.machine.links[(link.target, direction.opposite)])
        if not self.chips:
            self.ethernet_chips = []
            return
        gateway = min(self.chips, key=lambda c: (c.y, c.x))
        self.ethernet_chips = [gateway]

    # ------------------------------------------------------------------
    # Access helpers (mirror SpiNNakerMachine)
    # ------------------------------------------------------------------
    def chip(self, x: int, y: int) -> Chip:
        """The chip at parent-frame coordinate ``(x, y)``; must be leased."""
        return self.chips[ChipCoordinate(x, y)]

    def __getitem__(self, coordinate: ChipCoordinate) -> Chip:
        return self.chips[coordinate]

    def __iter__(self) -> Iterator[Chip]:
        return iter(self.chips.values())

    def __contains__(self, coordinate: ChipCoordinate) -> bool:
        return coordinate in self.chips

    @property
    def n_chips(self) -> int:
        """Number of chips in the leased sub-machine."""
        return len(self.chips)

    @property
    def n_cores(self) -> int:
        """Total number of cores in the leased sub-machine."""
        return sum(chip.n_cores for chip in self.chips.values())

    @property
    def origin(self) -> Chip:
        """The lease's boot gateway chip."""
        return self.chips[self.ethernet_chips[0]]

    @property
    def links(self) -> Dict[Tuple[ChipCoordinate, Direction], Link]:
        """The parent links whose both endpoints are inside the lease."""
        return self._internal_links

    def link(self, coordinate: ChipCoordinate, direction: Direction) -> Link:
        """The outgoing link of a leased chip (may leave the lease)."""
        return self.machine.links[(coordinate, direction)]

    def boundary_links(self) -> List[Link]:
        """Parent links with exactly one endpoint inside the lease.

        Traffic on these links is, by construction, not this job's — the
        integration tests use them to prove isolation.
        """
        return list(self._boundary_links)

    # ------------------------------------------------------------------
    # Transport (scoped)
    # ------------------------------------------------------------------
    def send_nearest_neighbour(self, source: ChipCoordinate,
                               direction: Direction, packet: Any) -> bool:
        """Send an nn packet, refusing to cross the lease boundary."""
        target = source.neighbour(direction, self.config.width,
                                  self.config.height)
        if source not in self.chips or target not in self.chips:
            return False
        return self.machine.send_nearest_neighbour(source, direction, packet)

    def send_p2p(self, source: ChipCoordinate, packet: Any) -> bool:
        """Send a p2p packet from a leased chip."""
        return self.machine.send_p2p(source, packet)

    def inject_multicast(self, coordinate: ChipCoordinate,
                         packet: Any) -> None:
        """Inject a multicast packet at a leased chip's router."""
        self.machine.inject_multicast(coordinate, packet)

    # ------------------------------------------------------------------
    # Fault hooks (delegated)
    # ------------------------------------------------------------------
    def fail_link(self, coordinate: ChipCoordinate, direction: Direction,
                  bidirectional: bool = True) -> None:
        """Mark an inter-chip link failed (delegates to the parent)."""
        self.machine.fail_link(coordinate, direction, bidirectional)

    def repair_link(self, coordinate: ChipCoordinate, direction: Direction,
                    bidirectional: bool = True) -> None:
        """Restore a previously-failed link (delegates to the parent)."""
        self.machine.repair_link(coordinate, direction, bidirectional)

    # ------------------------------------------------------------------
    # Power management
    # ------------------------------------------------------------------
    def power_cycle(self) -> None:
        """Reset job-visible chip state, as a spalloc power cycle would.

        Clears the multicast routing tables and monitor mailboxes of every
        leased chip so a new job never sees a predecessor's routes (stale
        entries with recycled keys would otherwise leak packets across the
        lease boundary).
        """
        for chip in self.chips.values():
            chip.router.table.clear()
            chip.monitor_mailbox.clear()

    # ------------------------------------------------------------------
    # Aggregate statistics (lease-scoped)
    # ------------------------------------------------------------------
    def total_dropped_packets(self) -> int:
        """Packets dropped by the lease's routers."""
        return sum(chip.router.stats.dropped for chip in self)

    def total_emergency_invocations(self) -> int:
        """Emergency-routing invocations across the lease."""
        return sum(chip.router.stats.emergency_invocations for chip in self)

    def total_link_traffic(self) -> int:
        """Packets carried by the lease's internal links."""
        return sum(link.packets_carried for link in self.links.values())

    def run(self, duration_us: Optional[float] = None) -> None:
        """Advance the shared simulation (affects every job on the machine)."""
        self.machine.run(duration_us)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return ("LeasedMachineView(lease=%d, rect=%s, chips=%d)"
                % (self.lease.lease_id, self.lease.rect, self.n_chips))
