"""Priority queue and per-tenant quota policing for allocation jobs.

Two independent mechanisms keep one tenant from starving the rest of the
facility, both familiar from single-machine scheduling practice:

* a **submission rate limit** — each tenant's job submissions pass through
  a :class:`~repro.core.admission.TokenBucketRegulator` (the same
  mechanism that polices packet injection on the fabric); a tenant that
  submits faster than its contracted rate for longer than its burst
  allowance has the excess jobs *rejected* outright;
* a **concurrency quota** — a cap on simultaneously-active jobs and on
  simultaneously-leased chips; a job over this quota is *not* rejected,
  it simply stays queued until the tenant releases something.

The queue itself is a binary heap ordered by ``(priority, sequence)``:
strict priority with FIFO tie-breaking, so the scheduler's pass over the
queue is deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.alloc.job import Job, JobState
from repro.core.admission import TokenBucketRegulator, TrafficClass

__all__ = ["TenantQuota", "JobQueue"]


@dataclass(frozen=True)
class TenantQuota:
    """Resource limits for one tenant.

    ``submission_rate_per_ms`` and ``submission_burst`` parameterise the
    token bucket policing job creation; the two ``max_*`` fields bound
    what the tenant may hold concurrently.
    """

    tenant: str
    max_active_jobs: int = 8
    max_leased_chips: int = 256
    submission_rate_per_ms: float = 0.05
    submission_burst: int = 8

    def __post_init__(self) -> None:
        if self.max_active_jobs < 1:
            raise ValueError("a tenant must be allowed at least one job")
        if self.max_leased_chips < 1:
            raise ValueError("a tenant must be allowed at least one chip")

    def build_regulator(self) -> TokenBucketRegulator:
        """The token bucket enforcing this tenant's submission rate."""
        return TokenBucketRegulator(TrafficClass(
            name="job-submissions-%s" % self.tenant,
            guaranteed_rate_packets_per_ms=self.submission_rate_per_ms,
            burst_packets=self.submission_burst))


class JobQueue:
    """Priority-ordered queue of ``QUEUED`` jobs with quota bookkeeping."""

    def __init__(self, default_quota: Optional[TenantQuota] = None) -> None:
        #: Template applied to tenants without an explicit quota.
        self.default_quota = default_quota or TenantQuota(tenant="default")
        self._quotas: Dict[str, TenantQuota] = {}
        self._regulators: Dict[str, TokenBucketRegulator] = {}
        self._heap: List[Tuple[int, int, Job]] = []
        self._sequence = itertools.count()

    # ------------------------------------------------------------------
    # Quotas
    # ------------------------------------------------------------------
    def set_quota(self, quota: TenantQuota) -> None:
        """Install (or replace) one tenant's quota.

        Replacing a quota resets the tenant's submission bucket to the new
        contract's burst allowance.
        """
        self._quotas[quota.tenant] = quota
        self._regulators.pop(quota.tenant, None)

    def quota_for(self, tenant: str) -> TenantQuota:
        """The effective quota of ``tenant`` (explicit or default)."""
        quota = self._quotas.get(tenant)
        if quota is None:
            quota = replace(self.default_quota, tenant=tenant)
            self._quotas[tenant] = quota
        return quota

    def _regulator_for(self, tenant: str) -> TokenBucketRegulator:
        regulator = self._regulators.get(tenant)
        if regulator is None:
            regulator = self.quota_for(tenant).build_regulator()
            self._regulators[tenant] = regulator
        return regulator

    def admit_submission(self, tenant: str, now_ms: float) -> bool:
        """Charge one job submission against the tenant's token bucket."""
        return self._regulator_for(tenant).admit(now_ms)

    def submission_tokens(self, tenant: str) -> float:
        """Tokens the tenant has left in its submission bucket."""
        return self._regulator_for(tenant).tokens

    # ------------------------------------------------------------------
    # Queue operations
    # ------------------------------------------------------------------
    def push(self, job: Job) -> None:
        """Enqueue a ``QUEUED`` job."""
        if job.state is not JobState.QUEUED:
            raise ValueError("only QUEUED jobs belong in the queue, got %s"
                             % job.state.value)
        heapq.heappush(self._heap,
                       (job.request.priority, next(self._sequence), job))

    def pending(self) -> List[Job]:
        """The queued jobs, best-priority first.

        Entries whose job has left the ``QUEUED`` state (scheduled or
        released while waiting) are pruned lazily.
        """
        self._prune()
        return [job for _p, _s, job in sorted(self._heap)]

    def _prune(self) -> None:
        self._heap = [entry for entry in self._heap
                      if entry[2].state is JobState.QUEUED]
        heapq.heapify(self._heap)

    def __len__(self) -> int:
        self._prune()
        return len(self._heap)

    def __contains__(self, job: Job) -> bool:
        return any(entry[2] is job and entry[2].state is JobState.QUEUED
                   for entry in self._heap)
