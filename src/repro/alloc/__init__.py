"""repro.alloc — multi-tenant machine allocation and job scheduling.

The Furber DATE'11 machine is explicitly a *shared* million-core
facility; this package turns the single-application simulator into one,
in the style of the SpiNNaker ecosystem's spalloc server:

* :mod:`repro.alloc.partition` — free-list allocation of rectangular,
  fault-free, torus-aware chip regions with coalescing on release;
* :mod:`repro.alloc.job` — the QUEUED → POWERING → READY →
  EXPIRED/FREED job lifecycle with keepalive accounting;
* :mod:`repro.alloc.queue` — priority queueing plus per-tenant quotas
  (token-bucket submission policing and concurrency caps);
* :mod:`repro.alloc.scheduler` — admission, placement policies
  (first-fit / best-fit / locality-fit), expiry sweeps and statistics;
* :mod:`repro.alloc.machine_view` — the scoped sub-machine a READY job
  boots and loads with the unchanged runtime layers;
* :mod:`repro.alloc.server` — the host-facing SDP command surface
  (CREATE_JOB / JOB_KEEPALIVE / RELEASE_JOB);
* :mod:`repro.alloc.workload` — synthetic Poisson job streams for the
  CLI demos and the throughput benchmark.
"""

from repro.alloc.job import Job, JobRequest, JobState
from repro.alloc.machine_view import LeasedMachineView, LeaseGeometry
from repro.alloc.partition import Lease, MachinePartitioner, Rect, PLACEMENT_POLICIES
from repro.alloc.queue import JobQueue, TenantQuota
from repro.alloc.scheduler import AllocationScheduler, AllocationStatistics
from repro.alloc.server import AllocationServer
from repro.alloc.workload import JobStreamConfig, run_job_stream

__all__ = [
    "Job",
    "JobRequest",
    "JobState",
    "Lease",
    "LeaseGeometry",
    "LeasedMachineView",
    "MachinePartitioner",
    "Rect",
    "PLACEMENT_POLICIES",
    "JobQueue",
    "TenantQuota",
    "AllocationScheduler",
    "AllocationStatistics",
    "AllocationServer",
    "JobStreamConfig",
    "run_job_stream",
]
