"""Job lifecycle: the unit of tenancy on the shared machine.

A job asks for a ``width x height`` sub-machine and moves through the
spalloc-style state machine::

    QUEUED ──────▶ POWERING ──▶ READY ──▶ FREED
       │                │          │
       ▼                ▼          ▼
    REJECTED │ EXPIRED         EXPIRED

* **QUEUED** — admitted to the queue, waiting for capacity and quota;
* **POWERING** — a lease has been carved out and the boards are being
  power-cycled (modelled as a fixed delay plus the allocation
  controller's own decision latency);
* **READY** — the job holds a :class:`~repro.alloc.machine_view.LeasedMachineView`
  it can boot and load independently of every other job;
* **FREED** — released by its owner; the lease returns to the free pool;
* **EXPIRED** — the owner stopped sending keepalives and the server
  reclaimed the lease (the classic crashed-client defence);
* **REJECTED** — refused at submission because the tenant exceeded its
  job-submission rate (token-bucket policed, see :mod:`repro.alloc.queue`).

Timestamps are milliseconds of simulated time from the shared event
kernel, matching the time base of :mod:`repro.core.admission`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["JobState", "JobRequest", "Job"]


class JobState(Enum):
    """The lifecycle states of an allocation job."""

    QUEUED = "queued"
    POWERING = "powering"
    READY = "ready"
    FREED = "freed"
    EXPIRED = "expired"
    REJECTED = "rejected"

    @property
    def is_terminal(self) -> bool:
        """True for states a job never leaves."""
        return self in (JobState.FREED, JobState.EXPIRED, JobState.REJECTED)

    @property
    def is_active(self) -> bool:
        """True while the job holds (or is acquiring) a lease."""
        return self in (JobState.POWERING, JobState.READY)


#: Legal state transitions; anything else is a scheduler bug.
_TRANSITIONS: Dict[JobState, Set[JobState]] = {
    JobState.QUEUED: {JobState.POWERING, JobState.FREED, JobState.EXPIRED,
                      JobState.REJECTED},
    JobState.POWERING: {JobState.READY, JobState.FREED, JobState.EXPIRED},
    JobState.READY: {JobState.FREED, JobState.EXPIRED},
    JobState.FREED: set(),
    JobState.EXPIRED: set(),
    JobState.REJECTED: set(),
}


@dataclass(frozen=True)
class JobRequest:
    """What a tenant asks for when creating a job."""

    tenant: str
    width: int
    height: int
    #: Smaller numbers are scheduled first (same convention as the
    #: admission controller's traffic-class priorities).
    priority: int = 5
    #: The job expires if no keepalive arrives for this long.
    keepalive_ms: float = 1000.0
    label: str = ""

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("a job must name its tenant")
        if self.width < 1 or self.height < 1:
            raise ValueError("job dimensions must be positive")
        if self.keepalive_ms <= 0:
            raise ValueError("keepalive interval must be positive")

    @property
    def n_chips(self) -> int:
        """Number of chips the job asks for."""
        return self.width * self.height


class Job:
    """One tenancy moving through the allocation state machine."""

    def __init__(self, job_id: int, request: JobRequest,
                 now_ms: float) -> None:
        self.job_id = job_id
        self.request = request
        self.state = JobState.QUEUED
        self.submitted_ms = now_ms
        self.last_keepalive_ms = now_ms
        #: Every (state, time) the job has passed through, oldest first.
        self.history: List[Tuple[JobState, float]] = [(JobState.QUEUED, now_ms)]
        #: Set when the job is scheduled (POWERING onwards).
        self.lease = None
        #: Set when the job becomes READY.
        self.machine_view = None

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def transition(self, state: JobState, now_ms: float) -> None:
        """Move to ``state``, enforcing the legal transition graph."""
        if state not in _TRANSITIONS[self.state]:
            raise ValueError("job %d cannot move %s -> %s"
                             % (self.job_id, self.state.value, state.value))
        self.state = state
        self.history.append((state, now_ms))

    def time_entered(self, state: JobState) -> Optional[float]:
        """When the job first entered ``state``, or ``None``."""
        for entered, time_ms in self.history:
            if entered is state:
                return time_ms
        return None

    # ------------------------------------------------------------------
    # Keepalive
    # ------------------------------------------------------------------
    def touch(self, now_ms: float) -> bool:
        """Record a keepalive; returns False if the job is already over.

        Queued jobs need keepalives too: a job whose owner crashed while
        it waited for capacity must leave the queue, not haunt it.
        """
        if self.state.is_terminal:
            return False
        self.last_keepalive_ms = now_ms
        return True

    def keepalive_expired(self, now_ms: float) -> bool:
        """True if the owner has gone quiet for longer than the interval."""
        return (not self.state.is_terminal
                and now_ms - self.last_keepalive_ms > self.request.keepalive_ms)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def wait_ms(self, now_ms: Optional[float] = None) -> float:
        """Time spent in the queue before scheduling (or until ``now_ms``)."""
        scheduled = self.time_entered(JobState.POWERING)
        if scheduled is not None:
            return scheduled - self.submitted_ms
        if now_ms is None or self.state is not JobState.QUEUED:
            return 0.0
        return now_ms - self.submitted_ms

    def describe(self) -> Dict[str, object]:
        """A wire-friendly summary (used by the SDP allocation server)."""
        summary: Dict[str, object] = {
            "job_id": self.job_id,
            "tenant": self.request.tenant,
            "state": self.state.value,
            "width": self.request.width,
            "height": self.request.height,
            "priority": self.request.priority,
            "submitted_ms": self.submitted_ms,
            "keepalive_ms": self.request.keepalive_ms,
            "wait_ms": self.wait_ms(),
        }
        if self.lease is not None:
            summary["lease"] = str(self.lease.rect)
            summary["rect"] = {"x": self.lease.rect.x,
                               "y": self.lease.rect.y,
                               "width": self.lease.rect.width,
                               "height": self.lease.rect.height}
            summary["n_chips"] = self.lease.n_chips
        return summary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return ("Job(%d, %s, %dx%d, %s)"
                % (self.job_id, self.request.tenant, self.request.width,
                   self.request.height, self.state.value))
