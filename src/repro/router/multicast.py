"""The multicast packet router with emergency routing (Sections 4 and 5.3).

Every chip has one router.  For each incoming multicast packet the router:

1. looks the 32-bit routing key up in the associative table;
2. on a hit, copies the packet to every link and local core in the entry's
   route;
3. on a miss, *default-routes* the packet: it continues straight through,
   leaving on the link opposite the one it arrived on (the 'D' nodes of
   Figure 8);
4. if an output link is blocked (congested or failed), the router first
   waits a programmable time, then invokes **emergency routing** — sending
   the packet around the other two sides of the adjacent mesh triangle —
   and finally, after a further programmable wait, drops the packet and
   informs the Monitor Processor.  This wait/divert/drop policy is what
   guarantees the fabric never deadlocks even though routes may contain
   loops (Section 5.3).

The router also forwards point-to-point packets using the algorithmic p2p
table and delivers nearest-neighbour packets to the Monitor Processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.event_kernel import EventKernel
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.packets import EmergencyState, MulticastPacket
from repro.router.routing_table import MulticastRoutingTable


@dataclass
class RouterConfig:
    """Programmable router parameters (Section 5.3).

    ``emergency_wait_us`` is how long the router waits for a blocked link
    to clear before invoking emergency routing; ``drop_wait_us`` is how long
    it persists with emergency routing before giving up and dropping the
    packet.  Both are "programmable delays" in the paper.
    """

    emergency_wait_us: float = 1.0
    drop_wait_us: float = 2.0
    emergency_routing_enabled: bool = True
    #: Number of retry attempts within each wait period.
    retries_per_wait: int = 2
    #: Router pipeline latency per packet, in microseconds.
    routing_latency_us: float = 0.05
    #: Maximum router hops a packet may take before it is dropped.  This is
    #: the simulation's equivalent of the hardware time-phase mechanism and
    #: prevents default-routed packets with no matching table entry from
    #: circulating around the torus forever.
    max_hops: int = 64


@dataclass
class RouterStatistics:
    """Counters exposed to the Monitor Processor and the benchmarks."""

    multicast_routed: int = 0
    injected_local: int = 0
    table_hits: int = 0
    default_routed: int = 0
    delivered_local: int = 0
    forwarded: int = 0
    emergency_invocations: int = 0
    emergency_successes: int = 0
    dropped: int = 0
    aged_out: int = 0
    p2p_routed: int = 0
    nn_delivered: int = 0
    wait_time_us: float = 0.0
    #: Packets forwarded per outgoing link direction.  Incremented one at
    #: a time by the event-driven path and in bulk by the compiled
    #: transport fabric, so per-link load analyses read the same counters
    #: whichever transport carried the traffic.
    forwarded_by_link: Dict[Direction, int] = field(default_factory=dict)
    #: Packets forwarded onto links that leave the board (multi-board
    #: machines only; see :attr:`Router.inter_board_directions`).
    inter_board_forwarded: int = 0
    #: Spike batches accounted by the compiled transport fabric.
    fabric_batches: int = 0


@dataclass
class RoutingDecision:
    """The outputs selected for one packet (used by tests and traces)."""

    links: List[Direction] = field(default_factory=list)
    cores: List[int] = field(default_factory=list)
    default_routed: bool = False
    table_hit: bool = False


class Router:
    """One chip's packet router.

    The router is wired to its chip through three callbacks so that it can
    be unit-tested in isolation:

    ``transmit(direction, packet) -> bool``
        Try to send ``packet`` on the inter-chip link in ``direction``.
        Returns ``False`` if the link is blocked (failed or congested).

    ``deliver_local(core_id, packet) -> None``
        Hand the packet to a local processor subsystem.

    ``notify_monitor(event, **info) -> None``
        Inform the Monitor Processor of a dropped packet or an
        emergency-routing invocation.
    """

    def __init__(self, kernel: EventKernel, coordinate: ChipCoordinate,
                 table: Optional[MulticastRoutingTable] = None,
                 config: Optional[RouterConfig] = None,
                 transmit: Optional[Callable[[Direction, MulticastPacket], bool]] = None,
                 deliver_local: Optional[Callable[[int, MulticastPacket], None]] = None,
                 notify_monitor: Optional[Callable[..., None]] = None) -> None:
        self.kernel = kernel
        self.coordinate = coordinate
        self.table = table if table is not None else MulticastRoutingTable()
        self.config = config or RouterConfig()
        self._transmit = transmit
        self._deliver_local = deliver_local
        self._notify_monitor = notify_monitor
        self.stats = RouterStatistics()
        #: Outgoing directions whose links cross a board boundary, set by
        #: the machine after link construction (empty for single-board
        #: machines and stand-alone routers under unit test).
        self.inter_board_directions: frozenset = frozenset()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(self, transmit: Callable[[Direction, MulticastPacket], bool],
                deliver_local: Callable[[int, MulticastPacket], None],
                notify_monitor: Callable[..., None]) -> None:
        """Attach the chip-level callbacks after construction."""
        self._transmit = transmit
        self._deliver_local = deliver_local
        self._notify_monitor = notify_monitor

    # ------------------------------------------------------------------
    # Decision logic (pure, easily unit-tested)
    # ------------------------------------------------------------------
    def decide(self, packet: MulticastPacket,
               arrival: Optional[Direction]) -> RoutingDecision:
        """Compute the route of ``packet`` without transmitting anything.

        ``arrival`` is the link the packet arrived on, or ``None`` when the
        packet was injected by a local core.
        """
        decision = RoutingDecision()

        if packet.emergency is EmergencyState.FIRST_LEG:
            if arrival is None:
                raise ValueError("a first-leg emergency packet cannot be "
                                 "injected locally")
            # Fixed hardware relation: second leg = arrival link + 1.
            decision.links.append(Direction.emergency_second_leg(arrival))
            return decision

        entry = self.table.lookup(packet.key)
        if entry is not None:
            decision.table_hit = True
            decision.links.extend(sorted(entry.link_directions))
            decision.cores.extend(sorted(entry.processor_ids))
            return decision

        # Miss: default routing — continue straight through.
        decision.default_routed = True
        if packet.emergency is EmergencyState.SECOND_LEG and arrival is not None:
            # The packet detoured around a triangle; "straight through" is
            # defined by the originally-blocked link, which is arrival + 4.
            decision.links.append(Direction((arrival.value + 4) % 6))
        elif arrival is not None:
            decision.links.append(arrival.opposite)
        # A locally-injected packet with no matching entry has nowhere to
        # go; it is dropped (the mapping tool-chain always installs an
        # entry for locally-sourced keys, so this indicates a load error).
        return decision

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def route_multicast(self, packet: MulticastPacket,
                        arrival: Optional[Direction] = None) -> RoutingDecision:
        """Route one multicast packet, transmitting on every selected output."""
        if self._transmit is None or self._deliver_local is None:
            raise RuntimeError("router at %s is not connected to its chip"
                               % (self.coordinate,))
        self.stats.multicast_routed += 1
        if arrival is None:
            self.stats.injected_local += 1
        if arrival is not None and packet.hops >= self.config.max_hops:
            # Time-phase expiry: the packet has been travelling (most likely
            # default-routed with no matching table entry anywhere) for too
            # long; drop it rather than let it circulate forever.
            self.stats.aged_out += 1
            self._drop(packet, reason="time-phase-expired")
            return RoutingDecision()
        decision = self.decide(packet, arrival)
        if decision.table_hit:
            self.stats.table_hits += 1
        if decision.default_routed:
            self.stats.default_routed += 1

        for core_id in decision.cores:
            self.stats.delivered_local += 1
            self._deliver_local(core_id, packet)

        forward_packet = packet.aged()
        for direction in decision.links:
            self._send_with_recovery(forward_packet, direction)

        if (not decision.links and not decision.cores
                and decision.default_routed and arrival is None):
            self._drop(packet, reason="no-route-for-local-key")
        return decision

    # ------------------------------------------------------------------
    # Blocked-link recovery: wait -> emergency -> drop (Section 5.3)
    # ------------------------------------------------------------------
    def _send_with_recovery(self, packet: MulticastPacket,
                            direction: Direction) -> None:
        outgoing = packet
        if packet.emergency is EmergencyState.FIRST_LEG:
            outgoing = packet.with_emergency(EmergencyState.SECOND_LEG)
        elif packet.emergency is EmergencyState.SECOND_LEG:
            outgoing = packet.with_emergency(EmergencyState.NORMAL)

        if self._transmit(direction, outgoing):
            self._record_forward(direction)
            return

        # The output link is blocked: wait a programmable time and retry.
        self._schedule_retry(outgoing, direction, attempt=1,
                             phase="normal")

    def _schedule_retry(self, packet: MulticastPacket, direction: Direction,
                        attempt: int, phase: str) -> None:
        wait = (self.config.emergency_wait_us if phase == "normal"
                else self.config.drop_wait_us)
        delay = wait / max(1, self.config.retries_per_wait)
        self.stats.wait_time_us += delay
        self.kernel.schedule_after(delay, self._retry, priority=5,
                                   label="router-retry",
                                   packet=packet, direction=direction,
                                   attempt=attempt, phase=phase)

    def _retry(self, _kernel: EventKernel, packet: MulticastPacket,
               direction: Direction, attempt: int, phase: str) -> None:
        if self._transmit(direction, packet):
            self._record_forward(direction)
            if phase == "emergency":
                self.stats.emergency_successes += 1
            return

        if attempt < self.config.retries_per_wait:
            self._schedule_retry(packet, direction, attempt + 1, phase)
            return

        if phase == "normal" and self.config.emergency_routing_enabled:
            self._invoke_emergency(packet, direction)
        else:
            self._drop(packet, reason="blocked-link",
                       direction=direction)

    def _invoke_emergency(self, packet: MulticastPacket,
                          direction: Direction) -> None:
        """Redirect the packet around the triangle adjacent to ``direction``."""
        self.stats.emergency_invocations += 1
        if self._notify_monitor is not None:
            self._notify_monitor("emergency-routing", direction=direction,
                                 key=packet.key)
        first_leg, _second_leg = direction.emergency_pair()
        emergency_packet = packet.with_emergency(EmergencyState.FIRST_LEG)
        if self._transmit(first_leg, emergency_packet):
            self._record_forward(first_leg)
            self.stats.emergency_successes += 1
            return
        # The emergency leg is itself blocked: keep trying for the drop
        # wait, then give up.
        self._schedule_retry(emergency_packet, first_leg, attempt=1,
                             phase="emergency")

    def _record_forward(self, direction: Direction) -> None:
        """Count one successful forward on ``direction``."""
        self.stats.forwarded += 1
        self.stats.forwarded_by_link[direction] = (
            self.stats.forwarded_by_link.get(direction, 0) + 1)
        if direction in self.inter_board_directions:
            self.stats.inter_board_forwarded += 1

    # ------------------------------------------------------------------
    # Bulk accounting (compiled transport fabric)
    # ------------------------------------------------------------------
    def account_batch(self, n_packets: int,
                      link_directions: Iterable[Direction] = (),
                      n_local_cores: int = 0,
                      table_hit: Optional[bool] = True,
                      injected: bool = False,
                      dropped: bool = False,
                      aged_out: bool = False) -> None:
        """Charge this router's counters for a precompiled spike batch.

        The compiled transport fabric (:mod:`repro.router.fabric`) routes
        each source key's multicast tree once at compile time; at run time
        it calls this per tree chip to keep the Monitor-visible statistics
        — including the per-link load counters and the routing table's
        lookup/miss counters — identical to what the per-packet event
        path would have recorded for the same traffic.  (Drop diagnostics
        reach the Monitor mailbox as one batched notification carrying a
        count, where the event path posts one entry per packet.)
        ``table_hit=None`` means no routing decision was made (time-phase
        expiry); ``aged_out`` marks those expiry drops.
        """
        if n_packets < 0 or n_local_cores < 0:
            raise ValueError("batch sizes must be non-negative")
        if n_packets == 0:
            return
        stats = self.stats
        stats.fabric_batches += 1
        stats.multicast_routed += n_packets
        if injected:
            stats.injected_local += n_packets
        if table_hit is not None:
            # The event path consults the table once per packet.
            self.table.lookups += n_packets
            if table_hit:
                stats.table_hits += n_packets
            else:
                self.table.misses += n_packets
                stats.default_routed += n_packets
        stats.delivered_local += n_packets * n_local_cores
        for direction in link_directions:
            stats.forwarded += n_packets
            stats.forwarded_by_link[direction] = (
                stats.forwarded_by_link.get(direction, 0) + n_packets)
            if direction in self.inter_board_directions:
                stats.inter_board_forwarded += n_packets
        if aged_out:
            stats.aged_out += n_packets
        if dropped or aged_out:
            stats.dropped += n_packets
            if self._notify_monitor is not None:
                self._notify_monitor(
                    "packet-dropped",
                    reason=("time-phase-expired" if aged_out
                            else "no-route-for-local-key"),
                    direction=None, key=None, packet=None,
                    count=n_packets)

    def _drop(self, packet: MulticastPacket, reason: str,
              direction: Optional[Direction] = None) -> None:
        """Drop a packet and inform the Monitor Processor (Section 5.3)."""
        self.stats.dropped += 1
        if self._notify_monitor is not None:
            self._notify_monitor("packet-dropped", reason=reason,
                                 direction=direction, key=packet.key,
                                 packet=packet)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def delivery_ratio(self) -> float:
        """Fraction of routed packets that were not dropped."""
        if self.stats.multicast_routed == 0:
            return 1.0
        return 1.0 - self.stats.dropped / self.stats.multicast_routed
