"""The compiled multicast transport fabric.

The paper's router fabric carries billions of spike events per second
because the routing work per spike is a single CAM lookup: the multicast
*tree* of every source neuron is fixed at load time by the mapping
tool-chain, and the hardware merely replays it.  The event-driven
simulation path (:meth:`repro.router.multicast.Router.route_multicast`)
faithfully models that replay one packet and one hop at a time, which is
the right fidelity for congestion, emergency-routing and fault studies —
and far too slow for system-scale throughput runs.

This module is the PACMAN-style alternative: walk the installed
:class:`~repro.router.routing_table.MulticastRoutingTable`s **once** per
source routing key and compile the resulting multicast tree into a flat
:class:`RouteProgram` — destination core list, per-destination hop count
and accumulated NoC + link latency, per-link traversal list and per-chip
router accounting records.  At run time a whole tick's spike batch is then
delivered with one scheduled callback per destination core and one bulk
counter update per tree element, instead of O(spikes x hops) discrete
events.  Because the program is derived from the very tables the event
path consults, both transports move identical traffic over identical
trees; the runtime layer (:mod:`repro.runtime.application`) asserts the
two produce identical spike trains on seeded networks.

The fabric assumes the lightly-loaded, fault-free regime the paper says
the interconnect is designed for.  Congestion back-pressure, emergency
routing, link glitches and fault scenarios remain the province of the
per-packet event transport.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.packets import MC_PACKET_BITS
from repro.profile import profile_stage

# One span per spike batch (counter replay is the fabric's entire
# per-tick cost); hoisted so every account_batch re-enters it.
_ACCOUNT_STAGE = profile_stage("fabric_account")

__all__ = [
    "ChipVisit",
    "RouteTarget",
    "RouteProgram",
    "TransportFabric",
    "compile_route",
]


@dataclass(frozen=True)
class RouteTarget:
    """One destination core of a compiled multicast tree."""

    chip: ChipCoordinate
    core_id: int
    #: Inter-chip hops from the source chip to this destination.
    hops: int
    #: Accumulated NoC + link latency from injection to arrival at the
    #: destination core's communications controller, in microseconds.
    latency_us: float


@dataclass(frozen=True)
class ChipVisit:
    """The per-chip router accounting record of one tree traversal.

    Mirrors exactly the counters one packet would touch at this chip's
    router, so :meth:`TransportFabric.account_batch` can replay them in
    bulk for a batch of ``n`` packets.
    """

    chip: ChipCoordinate
    #: ``True`` on a table hit, ``False`` when default-routed, ``None``
    #: when no routing decision was made (time-phase expiry).
    table_hit: Optional[bool]
    link_directions: Tuple[Direction, ...] = ()
    n_local_cores: int = 0
    injected: bool = False
    dropped: bool = False
    aged_out: bool = False


@dataclass
class RouteProgram:
    """A source routing key's multicast tree, compiled to flat form."""

    key: int
    source: ChipCoordinate
    #: Destination cores, in tree-walk order.
    targets: List[RouteTarget] = field(default_factory=list)
    #: Every inter-chip link traversal one packet makes, as
    #: ``(source chip, outgoing direction)`` pairs.
    link_hops: List[Tuple[ChipCoordinate, Direction]] = field(
        default_factory=list)
    #: Router-counter records, one per chip the packet visits.
    chip_visits: List[ChipVisit] = field(default_factory=list)
    #: ``(chip, multiplier)`` pairs for Communications-NoC accounting:
    #: one traversal at the source (injection) plus one per local
    #: delivery at each destination chip.
    noc_batches: List[Tuple[ChipCoordinate, int]] = field(
        default_factory=list)
    #: True when the key has no entry at its source chip: a locally
    #: injected packet would be dropped ("no-route-for-local-key").
    dropped_at_source: bool = False
    #: Branches terminated by the time-phase (max hops) guard.
    aged_out_paths: int = 0
    #: Of :attr:`link_hops`, how many cross a board boundary (multi-board
    #: machines; 0 on a single board).
    n_inter_board_hops: int = 0

    @property
    def n_destinations(self) -> int:
        """Number of destination cores reached by the tree."""
        return len(self.targets)

    @property
    def n_link_hops(self) -> int:
        """Link traversals per packet sent with this key."""
        return len(self.link_hops)

    @property
    def max_hops(self) -> int:
        """Deepest destination's hop distance (0 for local-only trees)."""
        return max((target.hops for target in self.targets), default=0)

    @property
    def max_latency_us(self) -> float:
        """Worst-case transport latency over all destinations."""
        return max((target.latency_us for target in self.targets),
                   default=0.0)


def compile_route(machine, source: ChipCoordinate, key: int) -> RouteProgram:
    """Walk the installed routing tables and compile ``key``'s tree.

    ``machine`` is a :class:`~repro.core.machine.SpiNNakerMachine` (typed
    loosely to keep this module import-light).  The walk replays the
    event path's routing semantics for a normal locally-injected packet:
    indexed table lookup at every chip, default routing (straight
    through) on a miss, drop for a local key with no entry, and the
    time-phase hop limit.  Latencies accumulate the same NoC and link
    service + traversal terms the event transport pays per packet in the
    uncongested case.
    """
    program = RouteProgram(key=key, source=source)
    source_chip = machine.chips[source]
    injection_noc = source_chip.comms_noc
    injection_latency = (1.0 / injection_noc.packets_per_us
                         + injection_noc.latency_us)
    program.noc_batches.append((source, 1))

    # Breadth-first over (chip, arrival link, hops, latency-at-router).
    frontier = deque([(source, None, 0, injection_latency)])
    while frontier:
        coordinate, arrival, hops, latency = frontier.popleft()
        chip = machine.chips[coordinate]
        router = chip.router
        if arrival is not None and hops >= router.config.max_hops:
            # Time-phase expiry: the event path drops the packet here.
            program.aged_out_paths += 1
            program.chip_visits.append(ChipVisit(
                chip=coordinate, table_hit=None, dropped=True,
                aged_out=True))
            continue

        entry = router.table.route_for(key)
        if entry is not None:
            links: Tuple[Direction, ...] = tuple(
                sorted(entry.link_directions))
            cores = sorted(entry.processor_ids)
            table_hit = True
        elif arrival is None:
            # Locally-sourced key with no routing entry: the event path
            # counts a default-route decision, then drops the packet.
            program.dropped_at_source = True
            program.chip_visits.append(ChipVisit(
                chip=coordinate, table_hit=False, injected=True,
                dropped=True))
            continue
        else:
            # Miss in transit: default routing, straight through.
            links = (arrival.opposite,)
            cores = []
            table_hit = False

        program.chip_visits.append(ChipVisit(
            chip=coordinate, table_hit=table_hit, link_directions=links,
            n_local_cores=len(cores), injected=(arrival is None)))

        if cores:
            delivery_noc = chip.comms_noc
            delivery_latency = (latency + 1.0 / delivery_noc.packets_per_us
                                + delivery_noc.latency_us)
            for core_id in cores:
                program.targets.append(RouteTarget(
                    chip=coordinate, core_id=core_id, hops=hops,
                    latency_us=delivery_latency))
            program.noc_batches.append((coordinate, len(cores)))

        for direction in links:
            link = machine.links[(coordinate, direction)]
            program.link_hops.append((coordinate, direction))
            if link.inter_board:
                program.n_inter_board_hops += 1
            frontier.append((link.target, direction.opposite, hops + 1,
                             latency + 1.0 / link.packets_per_us
                             + link.latency_us))
    return program


class TransportFabric:
    """Compiled route programs plus the bulk accounting that replays them.

    One instance serves a whole machine: the runtime compiles a program
    per source routing key after mapping (``prepare()``), then calls
    :meth:`account_batch` once per spike batch so links, routers and NoCs
    show the same loads the per-packet event transport would have
    recorded for identical traffic.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.programs: Dict[int, RouteProgram] = {}
        self.batches_accounted = 0
        self.packets_accounted = 0
        #: Board-to-board link traversals replayed (packets x crossing
        #: hops), the fabric-side view of inter-board load.
        self.inter_board_traversals = 0

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile_key(self, source: ChipCoordinate, key: int) -> RouteProgram:
        """Compile (and cache) the route program of ``key`` from ``source``."""
        program = compile_route(self.machine, source, key)
        self.programs[key] = program
        return program

    def program_for(self, key: int) -> Optional[RouteProgram]:
        """The compiled program of ``key``, or ``None`` if not compiled."""
        return self.programs.get(key)

    def adopt(self, programs: Dict[int, RouteProgram]) -> None:
        """Take over programs precompiled by the mapping layer."""
        self.programs.update(programs)

    # ------------------------------------------------------------------
    # Bulk accounting
    # ------------------------------------------------------------------
    def account_batch(self, program: RouteProgram, n_packets: int) -> None:
        """Charge every counter one batch of ``n_packets`` would touch.

        Replays ``program``'s per-chip router records, per-link
        traversals and NoC crossings in bulk — the fabric's substitute
        for the event transport's per-packet statistics updates.
        """
        if n_packets <= 0:
            return
        with _ACCOUNT_STAGE:
            self.batches_accounted += 1
            self.packets_accounted += n_packets
            self.inter_board_traversals += (n_packets
                                            * program.n_inter_board_hops)
            machine = self.machine
            for visit in program.chip_visits:
                machine.chips[visit.chip].router.account_batch(
                    n_packets,
                    link_directions=visit.link_directions,
                    n_local_cores=visit.n_local_cores,
                    table_hit=visit.table_hit,
                    injected=visit.injected,
                    dropped=visit.dropped,
                    aged_out=visit.aged_out)
            # Spike batches are plain (payload-less) multicast packets;
            # derive the wire size from the packet format rather than
            # assuming it.
            for coordinate, direction in program.link_hops:
                machine.links[(coordinate, direction)].record_batch(
                    n_packets, bit_length=MC_PACKET_BITS)
            for coordinate, multiplier in program.noc_batches:
                machine.chips[coordinate].comms_noc.record_batch(
                    n_packets * multiplier, bit_length=MC_PACKET_BITS)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Aggregate shape statistics of the compiled programs."""
        programs = list(self.programs.values())
        return {
            "programs": float(len(programs)),
            "destinations": float(sum(p.n_destinations for p in programs)),
            "link_hops": float(sum(p.n_link_hops for p in programs)),
            "batches_accounted": float(self.batches_accounted),
            "packets_accounted": float(self.packets_accounted),
            "inter_board_traversals": float(self.inter_board_traversals),
        }
