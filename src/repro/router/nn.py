"""The nearest-neighbour management protocol (Section 5.2).

Nearest-neighbour (nn) packets "allow processors on one chip to communicate
with any of the six chips to which there is a direct connection".  The boot
and flood-fill layers use them for coordinate propagation and application
loading; this module provides the remaining management operations the paper
attributes to the nn fabric — the ones a monitor processor uses to inspect
and repair its neighbourhood:

* **probe** — ask a neighbour whether it has booted and elected a monitor
  (the liveness check behind "if any node fails to boot correctly its
  neighbours will detect this");
* **peek / poke** — read and write words of a neighbour's System RAM (the
  mechanism used to "copy boot code into the failed node's System RAM and
  instruct it to reboot from there");
* **census** — probe all six neighbours and summarise which are alive.

The service installs a dispatching nn handler on every chip.  Any handler
previously installed (for example by :class:`~repro.runtime.boot.BootController`)
is preserved and still receives the commands this service does not consume,
so the service can coexist with the boot and flood-fill layers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.packets import NearestNeighbourPacket, NNCommand

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (chip -> router)
    from repro.core.machine import SpiNNakerMachine

__all__ = [
    "NeighbourReply",
    "NeighbourhoodStatistics",
    "NeighbourhoodService",
]

#: Commands consumed (handled and not forwarded) by the service.
_SERVICE_COMMANDS = frozenset({NNCommand.PROBE, NNCommand.PEEK,
                               NNCommand.POKE, NNCommand.RESPONSE})


@dataclass(frozen=True)
class NeighbourReply:
    """A reply received from a neighbouring chip."""

    request_id: int
    command: NNCommand
    alive: bool
    value: Optional[int] = None


@dataclass
class NeighbourhoodStatistics:
    """Counts of nn management traffic handled by the service."""

    probes_sent: int = 0
    peeks_sent: int = 0
    pokes_sent: int = 0
    replies_received: int = 0
    requests_served: int = 0
    requests_unanswered: int = 0


class NeighbourhoodService:
    """Monitor-processor view of the six adjacent chips.

    Parameters
    ----------
    machine:
        The machine whose chips the service manages.
    run_kernel:
        If True (the default), every request runs the event kernel to
        quiescence so the reply is available synchronously.  Set it to
        False when the caller drives the kernel itself (for example inside
        a larger scripted simulation).
    """

    def __init__(self, machine: "SpiNNakerMachine", run_kernel: bool = True) -> None:
        self.machine = machine
        self.run_kernel = run_kernel
        self.stats = NeighbourhoodStatistics()
        self._request_ids = itertools.count()
        self._replies: Dict[int, NeighbourReply] = {}
        self._previous_handlers: Dict[ChipCoordinate, Optional[Callable]] = {}
        self._install_handlers()

    # ------------------------------------------------------------------
    # Handler installation
    # ------------------------------------------------------------------
    def _install_handlers(self) -> None:
        for coordinate, chip in self.machine.chips.items():
            self._previous_handlers[coordinate] = chip._nn_handler
            chip.on_nearest_neighbour(self._make_handler(coordinate))

    def _make_handler(self, coordinate: ChipCoordinate):
        def handler(packet: NearestNeighbourPacket, arrival: Direction) -> None:
            if packet.command in _SERVICE_COMMANDS:
                self._serve(coordinate, packet, arrival)
            else:
                previous = self._previous_handlers.get(coordinate)
                if previous is not None:
                    previous(packet, arrival)
        return handler

    def uninstall(self) -> None:
        """Restore the nn handlers that were installed before the service."""
        for coordinate, chip in self.machine.chips.items():
            chip.on_nearest_neighbour(self._previous_handlers.get(coordinate))

    # ------------------------------------------------------------------
    # Request serving (runs "on" the neighbour chip)
    # ------------------------------------------------------------------
    def _serve(self, coordinate: ChipCoordinate,
               packet: NearestNeighbourPacket, arrival: Direction) -> None:
        chip = self.machine.chips[coordinate]
        if packet.command is NNCommand.RESPONSE:
            request_id, alive_flag, value = packet.payload
            self.stats.replies_received += 1
            self._replies[request_id] = NeighbourReply(
                request_id=request_id, command=NNCommand.RESPONSE,
                alive=bool(alive_flag),
                value=None if value is None else int(value))
            return

        request_id = packet.payload[0]
        alive = chip.state.booted and chip.monitor_core_id is not None
        value: Optional[int] = None
        if packet.command is NNCommand.PEEK and alive:
            address = packet.payload[1]
            if 0 <= address < len(chip.system_ram):
                value = chip.system_ram[address]
        elif packet.command is NNCommand.POKE and alive:
            address, word = packet.payload[1], packet.payload[2]
            if address >= 0:
                if address >= len(chip.system_ram):
                    chip.system_ram.extend(
                        [0] * (address + 1 - len(chip.system_ram)))
                chip.system_ram[address] = word
                value = word
        self.stats.requests_served += 1
        reply = NearestNeighbourPacket(
            command=NNCommand.RESPONSE,
            payload=(request_id, 1 if alive else 0, value),
            timestamp=self.machine.kernel.now)
        # The reply goes back out of the link the request arrived on.
        chip.send_nearest_neighbour(arrival, reply)

    # ------------------------------------------------------------------
    # Requests (issued by the local monitor processor)
    # ------------------------------------------------------------------
    def _transact(self, source: ChipCoordinate, direction: Direction,
                  command: NNCommand,
                  payload: Tuple) -> Optional[NeighbourReply]:
        request_id = next(self._request_ids)
        packet = NearestNeighbourPacket(command=command,
                                        payload=(request_id,) + payload,
                                        timestamp=self.machine.kernel.now)
        sent = self.machine.send_nearest_neighbour(source, direction, packet)
        if not sent:
            self.stats.requests_unanswered += 1
            return None
        if self.run_kernel:
            self.machine.kernel.run()
        reply = self._replies.pop(request_id, None)
        if reply is None:
            self.stats.requests_unanswered += 1
        return reply

    def probe(self, source: ChipCoordinate,
              direction: Direction) -> bool:
        """True if the neighbour in ``direction`` is booted with a monitor."""
        self.stats.probes_sent += 1
        reply = self._transact(source, direction, NNCommand.PROBE, ())
        return reply is not None and reply.alive

    def peek(self, source: ChipCoordinate, direction: Direction,
             address: int) -> Optional[int]:
        """Read one word of the neighbour's System RAM (None if unavailable)."""
        if address < 0:
            raise ValueError("System RAM address must be non-negative")
        self.stats.peeks_sent += 1
        reply = self._transact(source, direction, NNCommand.PEEK, (address,))
        if reply is None or not reply.alive:
            return None
        return reply.value

    def poke(self, source: ChipCoordinate, direction: Direction,
             address: int, value: int) -> bool:
        """Write one word of the neighbour's System RAM; True on success."""
        if address < 0:
            raise ValueError("System RAM address must be non-negative")
        self.stats.pokes_sent += 1
        reply = self._transact(source, direction, NNCommand.POKE,
                               (address, value))
        return reply is not None and reply.alive and reply.value == value

    def census(self, source: ChipCoordinate) -> Dict[Direction, bool]:
        """Probe all six neighbours of ``source`` and report their liveness."""
        return {direction: self.probe(source, direction)
                for direction in Direction}

    def dead_neighbours(self, source: ChipCoordinate) -> List[Direction]:
        """Directions whose neighbour failed the probe."""
        return [direction for direction, alive in self.census(source).items()
                if not alive]

    def copy_boot_code(self, source: ChipCoordinate, direction: Direction,
                       words: List[int]) -> int:
        """Poke a boot image word-by-word into a neighbour's System RAM.

        Returns the number of words successfully written.  This is the
        peek/poke realisation of the paper's "copy boot code into the
        failed node's System RAM" repair path; it requires the target chip
        to be alive enough to answer nn traffic.
        """
        written = 0
        for address, word in enumerate(words):
            if self.poke(source, direction, address, word):
                written += 1
        return written
