"""The SpiNNaker packet router (Sections 4, 5.2 and 5.3).

The router is "the feature of the architecture that renders it uniquely
suited to modeling large-scale systems of spiking neurons".  This package
models it at the architectural level:

* :mod:`repro.router.routing_table` — ternary key/mask multicast routing
  entries and the 1024-entry CAM table, including table minimisation.
* :mod:`repro.router.multicast` — the router proper: table lookup, default
  routing, the emergency-routing state machine of Figure 8 and the
  wait-then-drop deadlock-avoidance policy.
* :mod:`repro.router.p2p` — the algorithmic point-to-point routing tables
  used for system-management traffic.
* :mod:`repro.router.nn` — the nearest-neighbour management protocol
  (probe, peek, poke, neighbourhood census) used for neighbour repair.
* :mod:`repro.router.fabric` — the compiled multicast transport fabric:
  per-key route programs walked once from the installed tables, replayed
  in bulk for whole spike batches.
"""

from repro.router.fabric import (
    RouteProgram,
    RouteTarget,
    TransportFabric,
    compile_route,
)
from repro.router.multicast import Router, RouterConfig, RouterStatistics, RoutingDecision
from repro.router.nn import (
    NeighbourhoodService,
    NeighbourhoodStatistics,
    NeighbourReply,
)
from repro.router.p2p import P2PRoutingTable
from repro.router.routing_table import (
    MulticastRoutingTable,
    RoutingEntry,
    RoutingTableFullError,
)

__all__ = [
    "RouteProgram",
    "RouteTarget",
    "TransportFabric",
    "compile_route",
    "Router",
    "RouterConfig",
    "RouterStatistics",
    "RoutingDecision",
    "P2PRoutingTable",
    "NeighbourhoodService",
    "NeighbourhoodStatistics",
    "NeighbourReply",
    "MulticastRoutingTable",
    "RoutingEntry",
    "RoutingTableFullError",
]
