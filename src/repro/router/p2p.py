"""Point-to-point routing tables (Section 5.2).

P2p packets carry system-management traffic.  They use conventional 16-bit
source and destination addresses and are "routed algorithmically": each
chip holds a table giving, for every destination chip, the output link on
which to forward a packet (or "local" when the destination is this chip).

The tables are configured during the second phase of boot, after the
coordinate-propagation flood has told every chip where it is.  This module
builds the table from the torus geometry using the same shortest
dimension-ordered routes as the multicast default routing, so the p2p and
multicast fabrics behave consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.geometry import ChipCoordinate, Direction, TorusGeometry


@dataclass
class P2PRoutingTable:
    """One chip's point-to-point routing table.

    The table maps a destination chip coordinate to the link on which to
    forward a packet heading there.  ``None`` means the destination is the
    local chip.
    """

    coordinate: ChipCoordinate
    entries: Dict[ChipCoordinate, Optional[Direction]]

    @classmethod
    def build(cls, coordinate: ChipCoordinate,
              geometry: TorusGeometry) -> "P2PRoutingTable":
        """Build the full table for ``coordinate`` on ``geometry``.

        For every destination the first hop of the shortest dimension-
        ordered route is stored, exactly what the boot code computes once
        the chip knows its own position.
        """
        entries: Dict[ChipCoordinate, Optional[Direction]] = {}
        for destination in geometry.all_chips():
            if destination == coordinate:
                entries[destination] = None
            else:
                route = geometry.route(coordinate, destination)
                entries[destination] = route[0]
        return cls(coordinate=coordinate, entries=entries)

    def next_hop(self, destination: ChipCoordinate) -> Optional[Direction]:
        """The link towards ``destination`` (``None`` if it is this chip).

        Raises
        ------
        KeyError
            If the destination is not in the table (the table has not been
            configured for that chip — for example before boot completes).
        """
        return self.entries[destination]

    def knows(self, destination: ChipCoordinate) -> bool:
        """True if the table has an entry for ``destination``."""
        return destination in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def reachable_destinations(self) -> List[ChipCoordinate]:
        """Every destination the table can forward towards."""
        return list(self.entries)
