"""Multicast routing tables (Section 4).

Each router holds an associative (CAM) table of 1024 entries.  An entry
matches a 32-bit routing key under a ternary mask and yields a *route*: the
set of inter-chip links and local processor cores to which a matching
packet is copied.  Multicast — copying one incoming packet to several
outputs — is what lets a single spike packet reach the thousands of target
neurons implied by biological connectivity without a separate packet per
target.

The module also provides the standard table-minimisation step used by the
mapping tool-chain: adjacent entries with identical routes are merged where
a valid ternary covering exists, which is what makes the 1024-entry table
sufficient for large networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.geometry import Direction
from repro.core.packets import KEY_BITS

#: Number of associative entries in the hardware multicast router.
DEFAULT_TABLE_SIZE = 1024

_KEY_MASK = (1 << KEY_BITS) - 1


class RoutingTableFullError(Exception):
    """Raised when more entries are added than the CAM can hold."""


@dataclass(frozen=True)
class RoutingEntry:
    """One associative routing entry.

    Attributes
    ----------
    key, mask:
        The entry matches a packet key ``k`` when ``k & mask == key & mask``.
    link_directions:
        Inter-chip links on which matching packets are forwarded.
    processor_ids:
        Local cores to which matching packets are delivered.
    """

    key: int
    mask: int
    link_directions: FrozenSet[Direction] = frozenset()
    processor_ids: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if not 0 <= self.key <= _KEY_MASK:
            raise ValueError("key 0x%x does not fit in %d bits" % (self.key, KEY_BITS))
        if not 0 <= self.mask <= _KEY_MASK:
            raise ValueError("mask 0x%x does not fit in %d bits" % (self.mask, KEY_BITS))
        if self.key & ~self.mask & _KEY_MASK:
            raise ValueError(
                "key 0x%x has bits set outside mask 0x%x" % (self.key, self.mask))

    def matches(self, key: int) -> bool:
        """True if a packet with routing key ``key`` hits this entry."""
        return (key & self.mask) == self.key

    @property
    def route(self) -> Tuple[FrozenSet[Direction], FrozenSet[int]]:
        """The (links, cores) output set of this entry."""
        return self.link_directions, self.processor_ids

    @property
    def span(self) -> int:
        """Number of distinct keys covered by this entry (2**wildcards)."""
        wildcard_bits = KEY_BITS - bin(self.mask).count("1")
        return 1 << wildcard_bits

    def same_route(self, other: "RoutingEntry") -> bool:
        """True if both entries copy packets to exactly the same outputs."""
        return (self.link_directions == other.link_directions and
                self.processor_ids == other.processor_ids)


class MulticastRoutingTable:
    """The per-chip associative routing table.

    Lookup returns the *first* matching entry, as in the hardware, so entry
    order is significant when masks overlap.
    """

    def __init__(self, capacity: int = DEFAULT_TABLE_SIZE) -> None:
        if capacity <= 0:
            raise ValueError("table capacity must be positive")
        self.capacity = capacity
        self._entries: List[RoutingEntry] = []
        self.lookups = 0
        self.misses = 0
        #: Key-indexed lookup cache, grouped by mask:
        #: ``{mask: {key & mask: position of first matching entry}}``.
        #: Built lazily and invalidated by every mutation, so lookups are
        #: O(distinct masks) instead of O(entries) while preserving the
        #: hardware's first-match semantics exactly.
        self._index: Optional[Dict[int, Dict[int, int]]] = None

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_entry(self, entry: RoutingEntry) -> None:
        """Append an entry.

        Raises
        ------
        RoutingTableFullError
            If the CAM is already full.
        """
        if len(self._entries) >= self.capacity:
            raise RoutingTableFullError(
                "routing table full: capacity %d" % (self.capacity,))
        self._entries.append(entry)
        self._index = None

    def add(self, key: int, mask: int,
            links: Iterable[Direction] = (),
            cores: Iterable[int] = ()) -> RoutingEntry:
        """Convenience wrapper building and adding a :class:`RoutingEntry`."""
        entry = RoutingEntry(key=key, mask=mask,
                             link_directions=frozenset(links),
                             processor_ids=frozenset(cores))
        self.add_entry(entry)
        return entry

    def extend(self, entries: Iterable[RoutingEntry]) -> None:
        """Add several entries in order."""
        for entry in entries:
            self.add_entry(entry)

    def clear(self) -> None:
        """Remove every entry (used when reloading an application)."""
        self._entries.clear()
        self._index = None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _build_index(self) -> Dict[int, Dict[int, int]]:
        """(Re)build the mask-grouped key index over the current entries."""
        index: Dict[int, Dict[int, int]] = {}
        for position, entry in enumerate(self._entries):
            bucket = index.setdefault(entry.mask, {})
            # First match wins within a mask group; across groups the
            # smallest entry position decides, which route_for resolves.
            bucket.setdefault(entry.key, position)
        self._index = index
        return index

    def route_for(self, key: int) -> Optional[RoutingEntry]:
        """Indexed first-match lookup that leaves the hit/miss counters alone.

        Used by the route compiler and the table-compression validator,
        which probe the table exhaustively and must not distort the
        statistics the Monitor Processor reads.
        """
        index = self._index if self._index is not None else self._build_index()
        best_position: Optional[int] = None
        for mask, bucket in index.items():
            position = bucket.get(key & mask)
            if position is not None and (best_position is None
                                         or position < best_position):
                best_position = position
        if best_position is None:
            return None
        return self._entries[best_position]

    def lookup(self, key: int) -> Optional[RoutingEntry]:
        """Return the first entry matching ``key``, or ``None`` on a miss."""
        self.lookups += 1
        entry = self.route_for(key)
        if entry is None:
            self.misses += 1
        return entry

    def lookup_linear(self, key: int) -> Optional[RoutingEntry]:
        """Reference linear-scan lookup (the hardware CAM walk).

        Kept as the behavioural oracle for the indexed cache: for every
        key, ``lookup_linear`` and :meth:`route_for` must agree — a
        property the test suite asserts before and after minimisation.
        Does not touch the lookup/miss counters.
        """
        for entry in self._entries:
            if entry.matches(key):
                return entry
        return None

    def compile_routes(self, keys: Iterable[int]
                       ) -> Dict[int, Optional[Tuple[FrozenSet[Direction],
                                                     FrozenSet[int]]]]:
        """The key -> route function this table implements over ``keys``.

        Keys that miss every entry map to ``None`` (default routing).
        This is the per-chip building block of the compiled transport
        fabric (:mod:`repro.router.fabric`) and of routing-table
        compression, both of which need the exact observable behaviour of
        the table rather than its entry list.
        """
        routes: Dict[int, Optional[Tuple[FrozenSet[Direction],
                                         FrozenSet[int]]]] = {}
        for key in keys:
            entry = self.route_for(key)
            routes[key] = None if entry is None else entry.route
        return routes

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def entries(self) -> List[RoutingEntry]:
        """The entries in lookup order."""
        return list(self._entries)

    @property
    def occupancy(self) -> float:
        """Fraction of the CAM in use."""
        return len(self._entries) / self.capacity

    # ------------------------------------------------------------------
    # Minimisation
    # ------------------------------------------------------------------
    def minimise(self) -> int:
        """Merge same-route entries that differ in a single mask-covered bit.

        This is the classic Espresso-lite pairwise reduction used by the
        SpiNNaker tool-chain: two entries with identical routes and
        identical masks whose keys differ in exactly one bit are replaced by
        a single entry with that bit removed from the mask.  The pass
        repeats until no further merge is possible.

        Returns the number of entries eliminated.
        """
        eliminated = 0
        self._index = None
        merged = True
        while merged:
            merged = False
            by_route: Dict[Tuple[FrozenSet[Direction], FrozenSet[int], int],
                           List[RoutingEntry]] = {}
            for entry in self._entries:
                by_route.setdefault(
                    (entry.link_directions, entry.processor_ids, entry.mask),
                    []).append(entry)
            for (links, cores, mask), group in by_route.items():
                if len(group) < 2:
                    continue
                pair = _find_mergeable_pair(group)
                if pair is None:
                    continue
                first, second = pair
                differing_bit = (first.key ^ second.key)
                new_entry = RoutingEntry(
                    key=first.key & ~differing_bit,
                    mask=mask & ~differing_bit & _KEY_MASK,
                    link_directions=links,
                    processor_ids=cores)
                index = self._entries.index(first)
                self._entries.remove(first)
                self._entries.remove(second)
                self._entries.insert(index, new_entry)
                eliminated += 1
                merged = True
        return eliminated


def _find_mergeable_pair(group: List[RoutingEntry]
                         ) -> Optional[Tuple[RoutingEntry, RoutingEntry]]:
    """Find two entries in ``group`` whose keys differ in exactly one bit."""
    for i, first in enumerate(group):
        for second in group[i + 1:]:
            difference = first.key ^ second.key
            if difference != 0 and (difference & (difference - 1)) == 0:
                return first, second
    return None
