"""The pass pipeline driver (:class:`MappingPipeline`).

Runs the ordered mapping passes over one :class:`MappingContext`,
skipping passes whose input signatures are unchanged (per-pass artifact
caching) and re-running the rest — which themselves confine the work to
the vertices a change touched (incremental re-map).  The pipeline keeps
per-pass timing and cache statistics for the ``spinnaker-repro compile
report`` subcommand and the E18 benchmark.

Three entry points:

* :meth:`run` — compile, or re-compile after an external change (a chip
  condemnation, a lease shrink): fingerprints decide what re-runs.
* :meth:`remap_moves` — apply an explicit set of vertex moves (the
  functional-migration path, which pins its own spare-core choices) and
  re-run everything downstream of placement.
* :meth:`from_existing` — adopt a placement/key allocation produced by
  the pre-pipeline tool-chain, so a standalone migrator can re-map
  incrementally without recompiling the world first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compile.context import MappingContext
from repro.compile.passes import DEFAULT_PASSES, MappingPass
from repro.mapping.keys import KeyAllocator
from repro.mapping.placement import Placement, Vertex
from repro.neuron.network import Network
from repro.profile import ProfileRegistry

__all__ = ["PassRecord", "MappingPipeline"]

#: "expansion_seed not provided" sentinel — distinct from an explicit
#: ``None``, which means an unseeded expansion shared with the host
#: simulator's unseeded cache entry.
_UNSET = object()


@dataclass
class PassRecord:
    """Bookkeeping of one pass across the pipeline's lifetime."""

    runs: int = 0
    cache_hits: int = 0
    total_s: float = 0.0
    last_s: float = 0.0
    signature: Optional[Tuple] = None
    last_scope: str = "-"

    @property
    def invocations(self) -> int:
        """Times the pipeline considered the pass (runs + cache hits)."""
        return self.runs + self.cache_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of invocations answered from the cache."""
        if self.invocations == 0:
            return 0.0
        return self.cache_hits / self.invocations


class MappingPipeline:
    """The ordered, cached pass pipeline over one machine + network."""

    def __init__(self, machine, network: Network, *,
                 seed: Optional[int],
                 expansion_seed=_UNSET,
                 max_neurons_per_core: int = 256,
                 placement_strategy: str = "locality",
                 broadcast_routing: bool = False,
                 compile_transport: bool = False,
                 shard_by_board: bool = False,
                 minimise: bool = True) -> None:
        self.ctx = MappingContext(
            machine=machine, network=network, seed=seed,
            expansion_seed=(seed if expansion_seed is _UNSET
                            else expansion_seed),
            max_neurons_per_core=max_neurons_per_core,
            placement_strategy=placement_strategy,
            broadcast_routing=broadcast_routing,
            compile_transport=compile_transport,
            shard_by_board=shard_by_board,
            minimise=minimise)
        self.passes: List[MappingPass] = [cls() for cls in DEFAULT_PASSES]
        self.records: Dict[str, PassRecord] = {
            p.name: PassRecord() for p in self.passes}
        # Always-enabled: PassRecord timings and the compile report need
        # per-pass seconds regardless of REPRO_PROFILE.  Passes nest
        # under one "pass_total" stage, so flatten() yields both
        # profile_pass_total_s and a profile_<pass>_s per pass.
        self.profile = ProfileRegistry(enabled=True)
        self._pass_total_stage = self.profile.stage("pass_total")
        self._pass_stages = {p.name: self.profile.stage(p.name)
                             for p in self.passes}

    # ------------------------------------------------------------------
    # Construction from pre-pipeline artifacts
    # ------------------------------------------------------------------
    @classmethod
    def from_existing(cls, machine, network: Network, *,
                      placement: Placement, keys: KeyAllocator,
                      seed: Optional[int],
                      expansion_seed=_UNSET,
                      placement_strategy: str = "locality",
                      broadcast_routing: bool = False,
                      compile_transport: bool = False) -> "MappingPipeline":
        """Adopt an externally built placement and key allocation.

        The adopted artifacts are treated as already-computed passes (the
        placement and key objects are used as-is, not copied) and the
        machine's routing tables are assumed stale: the first route run
        clears and rebuilds every table, after which re-maps are
        incremental.
        """
        pipeline = cls(machine, network, seed=seed,
                       expansion_seed=expansion_seed,
                       max_neurons_per_core=placement.max_neurons_per_core,
                       placement_strategy=placement_strategy,
                       broadcast_routing=broadcast_routing,
                       compile_transport=compile_transport)
        ctx = pipeline.ctx
        ctx.partition = placement.by_population
        ctx.partition_version = 1
        ctx.placement = placement
        ctx.placement_version = 1
        ctx.keys = keys
        ctx.keys_version = 1
        ctx.assume_stale_tables = True
        for name in ("partition", "place", "allocate-keys"):
            index = pipeline._index_of(name)
            record = pipeline.records[name]
            record.runs = 1
            record.signature = pipeline.passes[index].signature(ctx)
            record.last_scope = "adopted"
        return pipeline

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> MappingContext:
        """Compile (or incrementally re-compile) the mapping artifacts."""
        self.ctx.begin_run()
        self._execute(0)
        return self.ctx

    def remap_moves(self,
                    moves: Dict[Vertex, Tuple] ) -> MappingContext:
        """Re-map after explicitly moving ``moves`` vertices.

        Used by the functional-migration path, which picks its own spare
        cores (preferring the failing vertex's own chip) rather than
        re-running the placer.  Only the passes downstream of placement
        run, and only over the moved vertices' trees and cores.

        A later :meth:`run` that sees the machine fingerprint change
        (more faults, a lease shrink) re-places from scratch, superseding
        these pinned choices.
        """
        ctx = self.ctx
        if ctx.placement is None:
            raise RuntimeError("cannot remap moves before the first compile")
        ctx.begin_run()
        for vertex, slot in moves.items():
            ctx.placement.locations[vertex] = slot
        ctx.moved_vertices = set(moves)
        if moves:
            ctx.placement_version += 1
        self._execute(self._index_of("allocate-keys"))
        return ctx

    # ------------------------------------------------------------------
    def _index_of(self, name: str) -> int:
        for index, p in enumerate(self.passes):
            if p.name == name:
                return index
        raise KeyError(name)

    def _execute(self, start: int) -> None:
        with self._pass_total_stage:
            for p in self.passes[start:]:
                record = self.records[p.name]
                signature = p.signature(self.ctx)
                if record.runs and record.signature == signature:
                    record.cache_hits += 1
                    record.last_scope = "cached"
                    continue
                with self._pass_stages[p.name] as frame:
                    p.run(self.ctx)
                elapsed = frame.elapsed_s
                record.runs += 1
                record.signature = signature
                record.last_s = elapsed
                record.total_s += elapsed
                record.last_scope = self.ctx.last_scope.get(p.name, "full")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> List[Dict[str, object]]:
        """Per-pass timing and cache statistics, in pass order."""
        rows = []
        for p in self.passes:
            record = self.records[p.name]
            rows.append({
                "pass": p.name,
                "runs": record.runs,
                "cache_hits": record.cache_hits,
                "hit_rate": record.hit_rate,
                "last_scope": record.last_scope,
                "last_ms": record.last_s * 1000.0,
                "total_ms": record.total_s * 1000.0,
            })
        return rows

    def summary(self) -> Dict[str, float]:
        """Headline artifact counts of the current compilation."""
        ctx = self.ctx
        return {
            "vertices": len(ctx.placement.locations) if ctx.placement else 0,
            "multicast_trees": ctx.routing_summary.multicast_trees,
            "entries_installed": ctx.routing_summary.entries_installed,
            "entries_after_minimisation":
                ctx.routing_summary.entries_after_minimisation,
            "route_programs": len(ctx.route_programs),
            "cores_configured": len(ctx.core_data),
            "total_compile_ms": sum(record.total_s
                                    for record in self.records.values())
                                * 1000.0,
        }
