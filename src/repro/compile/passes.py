"""The mapping-compiler passes.

Each pass is one stage of the paper's partition-and-configure tool-chain,
reading and writing artifacts on a shared :class:`MappingContext`:

========================  =============================================
pass                      artifact produced
========================  =============================================
``partition``             population slices (:class:`Vertex` lists)
``place``                 vertex -> (chip, core) assignment
``allocate-keys``         sticky AER key spaces per source vertex
``route``                 per-key multicast (or broadcast) entries,
                          installed into the chip routing tables
``compress``              per-chip table minimisation
``synaptic-matrices``     packed synaptic blocks in SDRAM + master
                          population tables
``compile-transport``     per-key :class:`RouteProgram`\\ s for the
                          compiled transport fabric
========================  =============================================

Every pass exposes a *signature* — a tuple over the fingerprints and
version counters of its inputs.  The pipeline skips a pass whose
signature is unchanged since its last run (a cache hit) and otherwise
re-runs it; the pass itself then limits the work to the vertices the
change actually touched (an incremental re-map), bumping its output
version only when something really changed so downstream passes can
cache-hit in turn.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.compile.context import (
    BoardContext,
    MappingContext,
    RouteRecord,
    ShardCore,
    machine_fingerprint,
)
from repro.core.geometry import ChipCoordinate
from repro.mapping.keys import KeyAllocator
from repro.mapping.placement import Placer, Vertex
from repro.mapping.routing_generator import RoutingTableGenerator
from repro.mapping.synaptic_matrix import (
    CoreSynapticData,
    write_packed_block,
)
from repro.router.fabric import compile_route
from repro.router.routing_table import RoutingEntry

__all__ = [
    "MappingPass",
    "PartitionPass",
    "PlacePass",
    "AllocateKeysPass",
    "RoutePass",
    "CompressPass",
    "BuildSynapticMatricesPass",
    "CompileTransportPass",
    "ShardByBoardPass",
    "DEFAULT_PASSES",
]


class MappingPass:
    """Base class: a named, signature-cached stage of the pipeline."""

    name = "pass"

    def signature(self, ctx: MappingContext) -> Tuple:
        """Cache key over the pass's inputs; unchanged -> skip."""
        raise NotImplementedError

    def run(self, ctx: MappingContext) -> None:
        """(Re)compute the pass's artifact, incrementally when possible."""
        raise NotImplementedError


class PartitionPass(MappingPass):
    """Split every population into core-sized vertices."""

    name = "partition"

    def signature(self, ctx: MappingContext) -> Tuple:
        return (ctx.network_fp(), ctx.max_neurons_per_core)

    def run(self, ctx: MappingContext) -> None:
        placer = Placer(ctx.machine, ctx.max_neurons_per_core,
                        ctx.placement_strategy)
        partition = placer.partition(ctx.network)
        if partition == ctx.partition:
            ctx.last_scope[self.name] = "unchanged"
            return
        if ctx.partition is not None:
            # The network itself changed: every derived artifact is void.
            ctx.invalidate_artifacts()
            ctx.full_rebuild = True
        ctx.partition = partition
        ctx.partition_version += 1
        ctx.last_scope[self.name] = "%d vertices" % sum(
            len(slices) for slices in partition.values())


class PlacePass(MappingPass):
    """Assign every vertex to an available application core.

    Placement is always recomputed in full (it is cheap and the standard
    placer is a deterministic function of the partition and the machine's
    available slots, so a re-map lands exactly where a cold compile on
    the same machine would); the *diff* against the previous placement is
    what drives the incremental work of every later pass.
    """

    name = "place"

    def signature(self, ctx: MappingContext) -> Tuple:
        return (ctx.partition_version, machine_fingerprint(ctx.machine),
                ctx.placement_strategy)

    def run(self, ctx: MappingContext) -> None:
        placer = Placer(ctx.machine, ctx.max_neurons_per_core,
                        ctx.placement_strategy)
        fresh = placer.place(ctx.network, partition=ctx.partition)
        if ctx.placement is None:
            ctx.placement = fresh
            ctx.moved_vertices = set(fresh.locations)
            ctx.placement_version += 1
            ctx.last_scope[self.name] = "full (%d vertices)" % len(
                fresh.locations)
            return
        old = dict(ctx.placement.locations)
        # Update the existing Placement object in place: the application,
        # migrator and key allocator all hold references to it.
        ctx.placement.max_neurons_per_core = fresh.max_neurons_per_core
        ctx.placement.vertices = fresh.vertices
        ctx.placement.by_population = fresh.by_population
        ctx.placement.locations = fresh.locations
        ctx.moved_vertices = {
            vertex for vertex, slot in fresh.locations.items()
            if old.get(vertex) != slot}
        ctx.removed_vertices = set(old) - set(fresh.locations)
        if ctx.moved_vertices or ctx.removed_vertices:
            ctx.placement_version += 1
        ctx.last_scope[self.name] = "%d moved" % len(ctx.moved_vertices)


class AllocateKeysPass(MappingPass):
    """Allocate AER key spaces — sticky across re-maps.

    A vertex keeps its first-allocated key for life (the virtualised-
    topology principle: a neuron's logical identity never changes, only
    the routing tables follow it to a new physical home), so only brand-
    new vertices receive keys here and a pure re-placement leaves the
    key artifact untouched.
    """

    name = "allocate-keys"

    def signature(self, ctx: MappingContext) -> Tuple:
        return (ctx.partition_version, ctx.placement_version)

    def run(self, ctx: MappingContext) -> None:
        if ctx.keys is None:
            ctx.keys = KeyAllocator(ctx.placement)
            ctx.keys_version += 1
            ctx.last_scope[self.name] = "full (%d keys)" % len(
                ctx.keys.all_key_spaces())
            return
        if ctx.full_rebuild:
            ctx.keys.reallocate(ctx.placement)
            ctx.keys_version += 1
            ctx.last_scope[self.name] = "full (%d keys)" % len(
                ctx.keys.all_key_spaces())
            return
        added = ctx.keys.allocate_missing()
        if added:
            ctx.keys_version += 1
        ctx.last_scope[self.name] = "%d new keys" % len(added)


class RoutePass(MappingPass):
    """Build multicast (or broadcast) trees and install routing entries.

    Keeps one :class:`RouteRecord` per source vertex.  A record is valid
    as long as neither its source slot nor any of its destination slots
    changed, so a re-map rebuilds only the trees the move actually bent;
    chips whose entry set changed are re-installed (and later
    re-minimised) while every other table is left untouched.
    """

    name = "route"

    def signature(self, ctx: MappingContext) -> Tuple:
        return (ctx.placement_version, ctx.keys_version,
                ctx.network_fp(), ctx.expansion_seed,
                ctx.broadcast_routing)

    # ------------------------------------------------------------------
    def run(self, ctx: MappingContext) -> None:
        reach_changed = ctx.ensure_reach()
        generator = RoutingTableGenerator(ctx.machine, ctx.placement,
                                          ctx.keys)
        locations = ctx.placement.locations

        full = reach_changed or not ctx.routes
        if full:
            rebuild = list(ctx.placement.vertices)
        else:
            rebuild = []
            for vertex in ctx.placement.vertices:
                record = ctx.routes.get(vertex)
                if record is None:
                    if ctx.reach_of(vertex):
                        rebuild.append(vertex)
                    continue
                if record.source_slot != locations[vertex]:
                    rebuild.append(vertex)
                    continue
                if any(locations.get(target) != slot
                       for target, slot in record.target_slots.items()):
                    rebuild.append(vertex)

        for vertex in ctx.removed_vertices:
            record = ctx.routes.pop(vertex, None)
            if record is not None:
                self._retire(ctx, record)

        broadcast_chips = (list(ctx.machine.geometry.all_chips())
                           if ctx.broadcast_routing else None)
        rebuilt = 0
        for vertex in rebuild:
            rebuilt += self._rebuild(ctx, generator, vertex,
                                     broadcast_chips)

        self._install(ctx)
        self._summarise(ctx)
        if ctx.dirty_chips or ctx.dirty_keys:
            ctx.routes_version += 1
        ctx.last_scope[self.name] = ("full (%d trees)" % rebuilt if full
                                     else "%d trees" % rebuilt)

    # ------------------------------------------------------------------
    def _rebuild(self, ctx: MappingContext,
                 generator: RoutingTableGenerator, vertex: Vertex,
                 broadcast_chips: Optional[List[ChipCoordinate]]) -> int:
        space = ctx.keys.key_space(vertex)
        source_slot = ctx.placement.locations[vertex]
        source_chip = source_slot[0]
        targets = ctx.reach_of(vertex)
        destinations: Dict[ChipCoordinate, Set[int]] = {}
        target_slots: Dict[Vertex, Tuple[ChipCoordinate, int]] = {}
        for target in targets:
            slot = ctx.placement.locations[target]
            target_slots[target] = slot
            destinations.setdefault(slot[0], set()).add(slot[1])

        old = ctx.routes.pop(vertex, None)
        if not destinations:
            if old is not None:
                self._retire(ctx, old)
            return 0

        tree = generator.build_tree(
            source_chip,
            broadcast_chips if broadcast_chips is not None
            else list(destinations))
        entries: Dict[ChipCoordinate, RoutingEntry] = {}
        n_links = 0
        for chip_coordinate, link_directions in tree.items():
            n_links += len(link_directions)
            cores = destinations.get(chip_coordinate, set())
            if not link_directions and not cores:
                continue
            entries[chip_coordinate] = RoutingEntry(
                key=space.base_key, mask=space.mask,
                link_directions=frozenset(link_directions),
                processor_ids=frozenset(cores))

        record = RouteRecord(key=space.base_key, source_chip=source_chip,
                             source_slot=source_slot,
                             target_slots=target_slots, entries=entries,
                             n_tree_links=n_links)
        self._merge(ctx, old, record)
        ctx.routes[vertex] = record
        return 1

    @staticmethod
    def _retire(ctx: MappingContext, record: RouteRecord) -> None:
        for chip_coordinate in record.entries:
            bucket = ctx.chip_entries.get(chip_coordinate)
            if bucket and bucket.pop(record.key, None) is not None:
                ctx.dirty_chips.add(chip_coordinate)
        ctx.dirty_keys.add(record.key)

    @staticmethod
    def _merge(ctx: MappingContext, old: Optional[RouteRecord],
               record: RouteRecord) -> None:
        if old is not None and old.key != record.key:
            RoutePass._retire(ctx, old)
            old = None
        old_entries = old.entries if old is not None else {}
        for chip_coordinate in set(old_entries) | set(record.entries):
            entry = record.entries.get(chip_coordinate)
            bucket = ctx.chip_entries.setdefault(chip_coordinate, {})
            if entry is None:
                if bucket.pop(record.key, None) is not None:
                    ctx.dirty_chips.add(chip_coordinate)
            elif bucket.get(record.key) != entry:
                bucket[record.key] = entry
                ctx.dirty_chips.add(chip_coordinate)
        if old_entries != record.entries:
            ctx.dirty_keys.add(record.key)

    # ------------------------------------------------------------------
    def _install(self, ctx: MappingContext) -> None:
        first = not getattr(ctx, "tables_installed", False)
        if first and ctx.assume_stale_tables:
            # The tables may hold a pre-pipeline tool-chain's entries for
            # these very keys; start from a clean slate (the legacy
            # full-migration behaviour).
            for chip in ctx.machine:
                chip.router.table.clear()
        for chip_coordinate in ctx.dirty_chips:
            chip = ctx.machine.chips.get(chip_coordinate)
            if chip is None:
                # A lease shrink removed the chip from the machine view
                # while its old entries were being retired; there is no
                # table left to rewrite.
                continue
            table = chip.router.table
            if not first:
                table.clear()
            bucket = ctx.chip_entries.get(chip_coordinate, {})
            table.extend(bucket.values())
        ctx.tables_installed = True

    def _summarise(self, ctx: MappingContext) -> None:
        summary = ctx.routing_summary
        summary.multicast_trees = len(ctx.routes)
        summary.total_tree_links = sum(record.n_tree_links
                                       for record in ctx.routes.values())
        summary.entries_installed = sum(len(bucket)
                                        for bucket in ctx.chip_entries.values())
        summary.chips_touched = sum(1 for bucket in ctx.chip_entries.values()
                                    if bucket)


class CompressPass(MappingPass):
    """Minimise the routing tables the route pass re-installed.

    Broadcast tables are left raw (the E11 baseline measures the
    uncompressed bus-style cost, as the legacy tool-chain did).
    """

    name = "compress"

    def signature(self, ctx: MappingContext) -> Tuple:
        return (ctx.routes_version, ctx.minimise, ctx.broadcast_routing)

    def run(self, ctx: MappingContext) -> None:
        summary = ctx.routing_summary
        if ctx.broadcast_routing or not ctx.minimise:
            summary.entries_after_minimisation = summary.entries_installed
            ctx.last_scope[self.name] = "skipped"
            return
        for chip_coordinate in ctx.dirty_chips:
            chip = ctx.machine.chips.get(chip_coordinate)
            if chip is not None:
                chip.router.table.minimise()
        summary.entries_after_minimisation = sum(
            len(ctx.machine.chips[chip_coordinate].router.table)
            for chip_coordinate, bucket in ctx.chip_entries.items()
            if bucket and chip_coordinate in ctx.machine.chips)
        ctx.last_scope[self.name] = "%d tables" % len(ctx.dirty_chips)


class BuildSynapticMatricesPass(MappingPass):
    """Pack synaptic blocks into SDRAM and build the population tables.

    The packed words of a block depend only on the connectivity expansion
    and the partition — never on the placement — and the key indexing a
    block is sticky, so a re-map rebuilds just the cores whose vertex
    moved, re-writing cached words at a fresh address.
    """

    name = "synaptic-matrices"

    def signature(self, ctx: MappingContext) -> Tuple:
        return (ctx.placement_version, ctx.keys_version,
                ctx.network_fp(), ctx.expansion_seed)

    def run(self, ctx: MappingContext) -> None:
        ctx.ensure_reach()
        # A recomputed reach means the connectivity itself changed (for
        # example a new projection between already-partitioned
        # populations): every core's blocks are stale, not just moved
        # ones, so this is a full rebuild too.
        if ctx.reach_rebuilt or not ctx.core_data:
            self._build_full(ctx)
            return
        self._build_incremental(ctx)

    # ------------------------------------------------------------------
    @staticmethod
    def _free_core(ctx: MappingContext, slot, data: CoreSynapticData) -> None:
        chip = ctx.machine.chips.get(slot[0])
        if chip is None:
            return
        for region in data.regions:
            try:
                chip.sdram.free(region)
            except ValueError:  # pragma: no cover - already gone
                pass

    def _build_full(self, ctx: MappingContext) -> None:
        """Cold build, in the canonical projection -> target -> source
        order (byte- and address-identical to the legacy builder)."""
        for slot, data in ctx.core_data.items():
            self._free_core(ctx, slot, data)
        locations = ctx.placement.locations
        ctx.core_data = {slot: CoreSynapticData(vertex=vertex)
                         for vertex, slot in locations.items()}
        for proj_index, projection in enumerate(ctx.network.projections):
            sources = ctx.partition[projection.pre.label]
            targets = ctx.partition[projection.post.label]
            for target in targets:
                slot = locations[target]
                data = ctx.core_data[slot]
                chip = ctx.machine.chips[slot[0]]
                for source in sources:
                    if not ctx.has_block(proj_index, source, target):
                        continue
                    self._write(ctx, chip, data, proj_index, source, target)
        ctx.last_scope[self.name] = "full (%d cores)" % len(ctx.core_data)

    def _build_incremental(self, ctx: MappingContext) -> None:
        locations = ctx.placement.locations
        # Retire stale cores: their vertex moved away (or vanished).
        for slot, data in list(ctx.core_data.items()):
            if locations.get(data.vertex) == slot:
                continue
            self._free_core(ctx, slot, data)
            del ctx.core_data[slot]
        # Rebuild the moved cores from the cached packed blocks.
        feeders = None
        rebuilt = 0
        for vertex in ctx.placement.vertices:
            slot = locations[vertex]
            if slot in ctx.core_data:
                continue
            if feeders is None:
                feeders = ctx.feeders_of()
            data = CoreSynapticData(vertex=vertex)
            ctx.core_data[slot] = data
            chip = ctx.machine.chips[slot[0]]
            for proj_index, source in feeders.get(vertex, []):
                self._write(ctx, chip, data, proj_index, source, vertex)
            rebuilt += 1
        ctx.last_scope[self.name] = "%d cores" % rebuilt

    @staticmethod
    def _write(ctx: MappingContext, chip, data: CoreSynapticData,
               proj_index: int, source: Vertex, target: Vertex) -> None:
        packed_rows, row_lengths, stride, _n = ctx.packed_block(
            proj_index, source, target)
        write_packed_block(chip, data, ctx.keys.key_space(source), source,
                           packed_rows, row_lengths, stride)


class CompileTransportPass(MappingPass):
    """Compile per-key route programs for the transport fabric.

    Walks the *installed* (minimised) tables, so it must run after the
    compress pass; only the keys whose routes changed are re-walked.
    """

    name = "compile-transport"

    def signature(self, ctx: MappingContext) -> Tuple:
        return (ctx.routes_version, ctx.compile_transport)

    def run(self, ctx: MappingContext) -> None:
        if not ctx.compile_transport:
            ctx.route_programs.clear()
            ctx.routing_summary.programs_compiled = 0
            ctx.last_scope[self.name] = "disabled"
            return
        live = {record.key: record.source_chip
                for record in ctx.routes.values()}
        stale = set(ctx.dirty_keys)
        if not ctx.route_programs:
            stale |= set(live)
        for key in stale:
            source_chip = live.get(key)
            if source_chip is None:
                ctx.route_programs.pop(key, None)
            else:
                ctx.route_programs[key] = compile_route(ctx.machine,
                                                        source_chip, key)
        ctx.routing_summary.programs_compiled = len(ctx.route_programs)
        ctx.last_scope[self.name] = "%d programs" % len(stale)


class ShardByBoardPass(MappingPass):
    """Split the compiled artifacts into per-board sub-contexts.

    The cluster runner (:mod:`repro.cluster`) executes one engine shard
    per board; this pass gives each board everything it needs without
    the machine model in the loop: the board's cores (in canonical
    placement order, so results are independent of how shards are later
    spread over workers) and the decoded delivery legs of every source
    key reaching the board.  Sticky keys are preserved — a vertex's AER
    base key *is* the address cross-board spike batches travel under, so
    the key spaces of :class:`~repro.mapping.keys.KeyAllocator` are used
    verbatim.  Delivery blocks are decoded from the destination cores'
    installed SDRAM blocks (the very words the transport fabric reads),
    keeping the shards' fixed-point arithmetic identical to an
    unsharded on-machine run.
    """

    name = "shard-by-board"

    def signature(self, ctx: MappingContext) -> Tuple:
        config = ctx.machine.config
        return (ctx.shard_by_board, config.board_width, config.board_height,
                ctx.placement_version, ctx.keys_version, ctx.routes_version,
                ctx.network_fp(), ctx.expansion_seed)

    def run(self, ctx: MappingContext) -> None:
        ctx.board_contexts.clear()
        ctx.board_pair_min_delay.clear()
        if not ctx.shard_by_board:
            ctx.last_scope[self.name] = "disabled"
            return
        config = ctx.machine.config
        projecting = {projection.pre.label
                      for projection in ctx.network.projections}

        # Cores, grouped by board in canonical placement order.
        local_index: Dict[Tuple[ChipCoordinate, int], Tuple[int, int]] = {}
        for vertex, (chip, core_id) in ctx.placement.locations.items():
            board = config.board_of(chip)
            context = ctx.board_contexts.setdefault(board,
                                                    BoardContext(board=board))
            local_index[(chip, core_id)] = (board, len(context.cores))
            context.cores.append(ShardCore(
                chip=chip, core_id=core_id, vertex=vertex,
                base_key=ctx.keys.key_space(vertex).base_key,
                has_outgoing=vertex.population_label in projecting))

        # Delivery legs, from the routing records (vertex order keeps the
        # per-key lists deterministic across re-maps and worker counts).
        # Cross-board legs additionally contribute their smallest decoded
        # synaptic delay to the per-board-pair d_min — the lookahead
        # budget the cluster runner's exchange schedule is derived from.
        n_deliveries = 0
        for vertex in ctx.placement.vertices:
            record = ctx.routes.get(vertex)
            if record is None:
                continue
            source_board = config.board_of(record.source_chip)
            for target, slot in record.target_slots.items():
                board, core_index = local_index[slot]
                csr = self._decode_block(ctx, slot, record.key,
                                         target.n_neurons)
                ctx.board_contexts[board].deliveries.setdefault(
                    record.key, []).append((core_index, csr))
                n_deliveries += 1
                if (board != source_board and csr is not None
                        and csr.delay_ticks.size):
                    pair = (source_board, board)
                    leg_min = int(csr.delay_ticks.min())
                    known = ctx.board_pair_min_delay.get(pair)
                    if known is None or leg_min < known:
                        ctx.board_pair_min_delay[pair] = leg_min
        # Flatten each board's legs into the arena the fused engine
        # scatters through (cheap: one argsort per key, built once).
        for context in ctx.board_contexts.values():
            context.build_delivery_index()
        ctx.last_scope[self.name] = "%d boards, %d deliveries" % (
            len(ctx.board_contexts), n_deliveries)

    @staticmethod
    def _decode_block(ctx: MappingContext, slot: Tuple[ChipCoordinate, int],
                      key: int, n_post: int):
        """Decode one destination core's block for ``key`` from its SDRAM.

        Mirrors ``NeuralApplication._compile_delivery``: the first
        matching population-table entry is used, and a missing entry
        yields ``None`` (the shard counts unmatched packets, exactly as
        the fabric transport does).
        """
        from repro.neuron.engine import CSRMatrix
        data = ctx.core_data[slot]
        entry = data.population_table.entry_for(key)
        if entry is None:
            return None
        chip = ctx.machine.chips[slot[0]]
        stride = entry.row_stride_words
        packed = [chip.sdram.peek_block(
            entry.sdram_address + 4 * row * stride, stride)
            for row in range(entry.n_rows)]
        return CSRMatrix.from_packed_rows(packed, n_post=n_post)


#: The canonical pass order of the mapping compiler.
DEFAULT_PASSES = (
    PartitionPass,
    PlacePass,
    AllocateKeysPass,
    RoutePass,
    CompressPass,
    BuildSynapticMatricesPass,
    CompileTransportPass,
    ShardByBoardPass,
)
