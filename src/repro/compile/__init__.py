"""The pass-based mapping compiler (``repro.compile``).

The staged partition-and-configure tool-chain the paper describes —
network description in, per-core routing tables and synaptic data out —
as an ordered, pluggable pass pipeline over a single artifact context:

    Partition -> Place -> AllocateKeys -> Route -> Compress
              -> BuildSynapticMatrices -> CompileTransport -> ShardByBoard

Every consumer of mapping artifacts (the on-machine application, the
functional migrator, the monitor's fault mitigation, allocation-job
leases) goes through one :class:`MappingPipeline`; per-pass caching and
dependency-tracked invalidation mean a chip condemnation or lease shrink
re-runs only the affected passes over the affected vertices instead of
recompiling the world.
"""

from repro.compile.context import (
    BoardContext,
    MappingContext,
    RouteRecord,
    ShardCore,
    machine_fingerprint,
    network_fingerprint,
)
from repro.compile.passes import (
    AllocateKeysPass,
    BuildSynapticMatricesPass,
    CompileTransportPass,
    CompressPass,
    DEFAULT_PASSES,
    MappingPass,
    PartitionPass,
    PlacePass,
    RoutePass,
    ShardByBoardPass,
)
from repro.compile.pipeline import MappingPipeline, PassRecord

__all__ = [
    "BoardContext",
    "MappingContext",
    "MappingPipeline",
    "MappingPass",
    "PassRecord",
    "RouteRecord",
    "ShardCore",
    "DEFAULT_PASSES",
    "PartitionPass",
    "PlacePass",
    "AllocateKeysPass",
    "RoutePass",
    "CompressPass",
    "BuildSynapticMatricesPass",
    "CompileTransportPass",
    "ShardByBoardPass",
    "machine_fingerprint",
    "network_fingerprint",
]
