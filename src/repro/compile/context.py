"""The mapping-compiler artifact store (:class:`MappingContext`).

The paper's software tool-chain is a staged partition-and-configure
pipeline: a neural-network description goes in, per-core routing tables
and synaptic data come out.  :class:`MappingContext` is the single
artifact that flows through the :mod:`repro.compile` pass pipeline — it
holds the inputs (network, machine view, seeds, policy knobs) and every
intermediate product (partition, placement, key spaces, per-key routing
entries, route programs, packed synaptic blocks, per-core data), so each
pass reads its predecessors' outputs and records its own.

Fingerprints over the network description and the machine's health are
what make the per-pass caching and the incremental re-map work: a pass
is skipped when the fingerprints of its inputs have not changed since it
last ran, and re-run only over the vertices the change actually touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.geometry import ChipCoordinate
from repro.mapping.keys import KeyAllocator
from repro.mapping.placement import Placement, Vertex
from repro.mapping.routing_generator import RoutingSummary
from repro.mapping.synaptic_matrix import CoreSynapticData
from repro.neuron.engine import CSRMatrix
from repro.neuron.network import Network, expand_projections
from repro.router.fabric import RouteProgram
from repro.router.routing_table import RoutingEntry

__all__ = [
    "BoardContext",
    "BoardDeliveryIndex",
    "MappingContext",
    "RouteRecord",
    "ShardCore",
    "network_fingerprint",
    "machine_fingerprint",
]


def network_fingerprint(network: Network) -> Tuple:
    """A structural fingerprint of a network description.

    Covers everything the mapping tool-chain's output depends on:
    population sizes and models, projection endpoints and connector
    parameters, stimulus configuration, timestep and seed.  Two networks
    with equal fingerprints compile to identical artifacts (for equal
    machine fingerprints and seeds).
    """
    populations = []
    for population in network.populations:
        extra: Tuple = ()
        rate = getattr(population, "rate_hz", None)
        if rate is not None:
            extra += (("rate_hz", rate),)
        times = getattr(population, "spike_times_ms", None)
        if times is not None:
            extra += (("spike_times", tuple(tuple(t) for t in times)),)
        populations.append((population.label, population.size,
                            population.model_name,
                            population.bias_current_na, extra))
    projections = []
    for projection in network.projections:
        projections.append((projection.pre.label, projection.post.label,
                            type(projection.connector).__name__,
                            repr(projection.connector),
                            projection.plasticity is not None))
    return (network.timestep_ms, network.seed,
            tuple(populations), tuple(projections))


def machine_fingerprint(machine: Any) -> Tuple:
    """A fingerprint of the machine view's mappable resources.

    Enumerates, per chip of the view's geometry (so a
    :class:`~repro.alloc.machine_view.LeasedMachineView` fingerprints
    only its lease), the application cores a placer may use — the same
    availability rule :meth:`Placer._application_cores` applies.  A chip
    condemnation, core fault or lease shrink changes the fingerprint,
    which is what triggers the incremental re-map.
    """
    chips = []
    for coordinate in machine.geometry.all_chips():
        chip = machine.chips[coordinate]
        monitor = (chip.monitor_core_id
                   if chip.monitor_core_id is not None else 0)
        cores = tuple(
            core.core_id for core in chip.cores
            if core.core_id != monitor
            and (core.is_available
                 or core.state.value not in ("failed", "disabled")))
        chips.append((coordinate.x, coordinate.y, monitor, cores))
    return (machine.config.width, machine.config.height, tuple(chips))


@dataclass
class RouteRecord:
    """The routing artifact of one source vertex.

    Everything needed to (a) install the vertex's multicast entries and
    (b) decide on a later re-map whether the record is still valid: the
    tree depends only on the source slot and the destination slots, so
    the record is rebuilt exactly when one of those moved.
    """

    key: int
    source_chip: ChipCoordinate
    #: The placement snapshot the record was built against.
    source_slot: Tuple[ChipCoordinate, int]
    target_slots: Dict[Vertex, Tuple[ChipCoordinate, int]]
    #: One masked entry per chip of the tree.
    entries: Dict[ChipCoordinate, RoutingEntry]
    n_tree_links: int = 0


@dataclass(frozen=True)
class ShardCore:
    """One placed vertex as seen by a board shard.

    Self-contained and picklable: the sharded runner ships these to
    worker processes, so a shard core carries its physical location (the
    per-core RNG derivation key), its population slice and its *sticky*
    AER base key — the cross-board spike-batch address.
    """

    chip: ChipCoordinate
    core_id: int
    vertex: Vertex
    #: The vertex's sticky AER base key (:class:`KeySpace.base_key`).
    base_key: int
    #: False for vertices of populations with no outgoing projections;
    #: their spikes are recorded but never shipped (mirroring the
    #: on-machine runtime).
    has_outgoing: bool


@dataclass
class BoardDeliveryIndex:
    """One board's per-leg delivery blocks merged into a flat arena.

    The per-core delivery path walks ``deliveries[key]`` leg by leg —
    a Python loop per (key, destination core) pair.  This index merges
    every leg of a key into one board-wide CSR: target neuron indices
    are pre-offset into a *board-flat* numbering (core 0's neurons
    first, then core 1's, in canonical core order), and each key's rows
    carry *absolute* bounds into a single targets/weights/delays arena
    shared by every key.  A fused engine can then scatter a whole
    batch list with one gather + one ring update instead of the
    per-key/per-leg loop.

    Merging legs is result-exact: ring accumulation of the fixed-point
    weights is an exact float64 sum, so grouping events per key instead
    of per leg lands identical charge (the per-core path's documented
    mid-batch saturation caveat is the only divergence, and it applies
    equally there).
    """

    #: First board-flat neuron index of each local core.
    core_offsets: np.ndarray
    #: Total neurons across the board's cores (the arena's index space).
    total_neurons: int
    #: One slot per synapse of every delivery leg: board-flat target
    #: neuron, fixed-point weight and programmable delay.
    targets: np.ndarray
    weights: np.ndarray
    delay_ticks: np.ndarray
    #: key -> ``(n_pre + 1,)`` *absolute* arena bounds of each source
    #: row (rows of a key's several legs are merged, leg-ordered within
    #: a row).  Keys whose every leg is matchless are absent.
    row_ptr: Dict[int, np.ndarray] = field(default_factory=dict)
    #: key -> number of matchless legs (``None`` blocks); a batch of
    #: ``n`` spikes on such a key counts ``n`` unmatched packets per
    #: matchless leg, exactly like the per-leg path.
    none_legs: Dict[int, int] = field(default_factory=dict)

    def slots_for(self, key: int, spiking: np.ndarray) -> Optional[np.ndarray]:
        """Absolute arena slots of a batch's synapses, or ``None`` when
        the key has no real legs on this board.

        Same expansion as :meth:`CSRMatrix.synapse_slots`, just against
        absolute row bounds — slot order is (spiking source)-major, so
        per-slot sums match the per-leg path exactly.
        """
        row_ptr = self.row_ptr.get(key)
        if row_ptr is None:
            return None
        starts = row_ptr[spiking]
        counts = row_ptr[spiking + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.intp)
        offsets = np.cumsum(counts) - counts
        return (np.arange(total, dtype=np.intp)
                - np.repeat(offsets, counts) + np.repeat(starts, counts))


@dataclass
class BoardContext:
    """The per-board sub-context the ShardByBoard pass produces.

    Everything one board's execution shard needs, detached from the
    machine model: the board's cores in canonical placement order and,
    for every source key that reaches the board, the precompiled
    delivery legs (destination core plus the decoded synaptic block —
    the same SDRAM words the transport fabric decodes, so fixed-point
    quantisation matches the on-machine run exactly).
    """

    board: int
    cores: List[ShardCore] = field(default_factory=list)
    #: source base key -> [(local core index, decoded block)].  A
    #: ``None`` block mirrors a delivery whose destination core has no
    #: population-table entry for the key (counted as unmatched).
    deliveries: Dict[int, List[Tuple[int, Optional[CSRMatrix]]]] = field(
        default_factory=dict)
    #: The deliveries flattened for the fused engine (built by the
    #: ShardByBoard pass via :meth:`build_delivery_index`).
    delivery_index: Optional[BoardDeliveryIndex] = None

    @property
    def n_cores(self) -> int:
        """Number of placed vertices on this board."""
        return len(self.cores)

    @property
    def placed_vertices(self) -> int:
        """Alias of :attr:`n_cores` — the LPT assignment weight."""
        return len(self.cores)

    def build_delivery_index(self) -> BoardDeliveryIndex:
        """Merge :attr:`deliveries` into a :class:`BoardDeliveryIndex`.

        Row merge order within a key follows the key's leg order (the
        canonical delivery order of the per-core path); arena segments
        follow the key insertion order of :attr:`deliveries`.
        """
        sizes = np.array([core.vertex.n_neurons for core in self.cores],
                         dtype=np.intp)
        core_offsets = np.zeros(len(self.cores), dtype=np.intp)
        if sizes.size:
            core_offsets[1:] = np.cumsum(sizes)[:-1]
        arena_targets: List[np.ndarray] = []
        arena_weights: List[np.ndarray] = []
        arena_delays: List[np.ndarray] = []
        row_ptr: Dict[int, np.ndarray] = {}
        none_legs: Dict[int, int] = {}
        base = 0
        for key, legs in self.deliveries.items():
            matchless = sum(1 for _, csr in legs if csr is None)
            if matchless:
                none_legs[key] = matchless
            real = [(index, csr) for index, csr in legs if csr is not None]
            if not real:
                continue
            n_pre = max(csr.n_pre for _, csr in real)
            pre = np.concatenate([csr.pre_index for _, csr in real])
            order = np.argsort(pre, kind="stable")
            arena_targets.append(np.concatenate(
                [core_offsets[index] + csr.targets
                 for index, csr in real])[order])
            arena_weights.append(np.concatenate(
                [csr.weights for _, csr in real])[order])
            arena_delays.append(np.concatenate(
                [csr.delay_ticks for _, csr in real])[order])
            counts = np.bincount(pre, minlength=n_pre)
            bounds = np.zeros(n_pre + 1, dtype=np.intp)
            bounds[1:] = np.cumsum(counts)
            row_ptr[key] = base + bounds
            base += int(pre.size)

        def arena(chunks: List[np.ndarray], dtype) -> np.ndarray:
            if not chunks:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(chunks).astype(dtype, copy=False)

        self.delivery_index = BoardDeliveryIndex(
            core_offsets=core_offsets,
            total_neurons=int(sizes.sum()),
            targets=arena(arena_targets, np.intp),
            weights=arena(arena_weights, float),
            delay_ticks=arena(arena_delays, np.intp),
            row_ptr=row_ptr,
            none_legs=none_legs,
        )
        return self.delivery_index


@dataclass
class MappingContext:
    """Inputs plus accumulated artifacts of one mapping compilation."""

    machine: Any
    network: Network
    #: Concrete simulation seed (per-core RNG derivation).
    seed: Optional[int]
    #: Seed key for connectivity expansion; ``None`` preserves the
    #: unseeded shared-cache behaviour.
    expansion_seed: Optional[int]
    max_neurons_per_core: int
    placement_strategy: str
    broadcast_routing: bool = False
    compile_transport: bool = False
    #: When set, the ShardByBoard pass splits the compiled artifacts into
    #: per-board :class:`BoardContext`\ s for the cluster runner.
    shard_by_board: bool = False
    minimise: bool = True
    #: Set by :meth:`MappingPipeline.from_existing`: the machine's tables
    #: may hold entries from a pre-pipeline tool-chain, so the first
    #: route pass clears every chip before installing (the legacy
    #: full-migration behaviour).
    assume_stale_tables: bool = False

    # ------------------------------------------------------------------
    # Artifacts (filled in by the passes)
    # ------------------------------------------------------------------
    partition: Optional[Dict[str, List[Vertex]]] = None
    placement: Optional[Placement] = None
    keys: Optional[KeyAllocator] = None
    #: Per-source-vertex routing records.
    routes: Dict[Vertex, RouteRecord] = field(default_factory=dict)
    #: Per-chip installed entry view: ``chip -> {key -> entry}`` in
    #: installation order (the key order vertices were routed in).
    chip_entries: Dict[ChipCoordinate, Dict[int, RoutingEntry]] = field(
        default_factory=dict)
    #: Packed synaptic blocks, placement-independent:
    #: ``(projection index, source vertex, target vertex) ->
    #: (packed_rows, row_lengths, stride_words, n_synapses)``.
    blocks: Dict[Tuple[int, Vertex, Vertex], Tuple] = field(
        default_factory=dict)
    core_data: Dict[Tuple[ChipCoordinate, int], CoreSynapticData] = field(
        default_factory=dict)
    route_programs: Dict[int, RouteProgram] = field(default_factory=dict)
    routing_summary: RoutingSummary = field(default_factory=RoutingSummary)
    #: Per-board sub-contexts (ShardByBoard pass; empty when disabled).
    board_contexts: Dict[int, BoardContext] = field(default_factory=dict)
    #: Minimum synaptic delay (ticks) of every *cross-board* delivery,
    #: per ``(source board, destination board)`` pair — decoded from the
    #: shard delivery blocks by the ShardByBoard pass.  This is the
    #: conservative-lookahead budget of the cluster runner: a spike
    #: emitted at tick ``t`` cannot influence another board before tick
    #: ``t + 1 + d_min``, so boards may run ``1 + d_min`` ticks between
    #: exchange barriers (classic conservative PDES).
    board_pair_min_delay: Dict[Tuple[int, int], int] = field(
        default_factory=dict)

    # ------------------------------------------------------------------
    # Version counters (bumped only when a pass's output actually
    # changed; downstream pass signatures include them)
    # ------------------------------------------------------------------
    partition_version: int = 0
    placement_version: int = 0
    keys_version: int = 0
    routes_version: int = 0
    #: True once the route pass has installed entries into the machine's
    #: tables at least once (first install adds on top, legacy-style;
    #: later installs clear-and-rebuild the dirty chips).
    tables_installed: bool = False

    # ------------------------------------------------------------------
    # Per-run change tracking (reset by :meth:`begin_run`)
    # ------------------------------------------------------------------
    full_rebuild: bool = False
    #: Set when :meth:`ensure_reach` recomputed the expansion-derived
    #: artifacts this run (the network changed without changing the
    #: partition): every block and core is then stale, not just moved ones.
    reach_rebuilt: bool = False
    moved_vertices: Set[Vertex] = field(default_factory=set)
    removed_vertices: Set[Vertex] = field(default_factory=set)
    dirty_chips: Set[ChipCoordinate] = field(default_factory=set)
    dirty_keys: Set[int] = field(default_factory=set)
    #: Per-pass scope notes for the report ("full", "12 vertices", ...).
    last_scope: Dict[str, str] = field(default_factory=dict)

    # Reach cache: projection index -> source vertex -> target vertices
    # with >= 1 synapse, plus the (network fingerprint, expansion seed,
    # partition version) tag it was computed for.
    _reach: Optional[Dict[int, Dict[Vertex, Dict[Vertex, None]]]] = None
    _reach_tag: Optional[Tuple] = None
    #: Network fingerprint computed once per run (several pass
    #: signatures read it; re-deriving it each time would make every
    #: all-cache-hit run pay repeated deep walks of the description).
    _network_fp: Optional[Tuple] = None

    def network_fp(self) -> Tuple:
        """The network fingerprint, computed at most once per run."""
        if self._network_fp is None:
            self._network_fp = network_fingerprint(self.network)
        return self._network_fp

    def min_inter_board_delay(self) -> Optional[int]:
        """The global ``d_min`` over every cross-board delivery.

        ``None`` when no synapse crosses a board boundary (the sharded
        run then has no exchange-timing constraint at all).
        """
        if not self.board_pair_min_delay:
            return None
        return min(self.board_pair_min_delay.values())

    def begin_run(self) -> None:
        """Reset the per-run change-tracking state."""
        self._network_fp = None
        self.full_rebuild = False
        self.reach_rebuilt = False
        self.moved_vertices = set()
        self.removed_vertices = set()
        self.dirty_chips = set()
        self.dirty_keys = set()
        self.last_scope = {}

    def invalidate_artifacts(self) -> None:
        """Drop every derived artifact (the network itself changed)."""
        self.routes.clear()
        self.chip_entries.clear()
        self.blocks.clear()
        self.core_data.clear()
        self.route_programs.clear()
        self._reach = None
        self._reach_tag = None

    # ------------------------------------------------------------------
    # Shared expansion-derived artifacts
    # ------------------------------------------------------------------
    def expansion_tag(self) -> Tuple:
        """Cache tag of the connectivity expansion the artifacts reflect."""
        return (self.network_fp(), self.expansion_seed,
                self.partition_version)

    def ensure_reach(self) -> bool:
        """Compute (or reuse) the source -> target vertex reach map.

        Reach is derived from the shared connectivity expansion and the
        partition only — placement does not enter — so it survives every
        re-map.  Returns ``True`` when it had to be recomputed (every
        downstream routing record is then stale).
        """
        tag = self.expansion_tag()
        if self._reach is not None and self._reach_tag == tag:
            return False
        # The expansion changed: every packed block derived from it is
        # stale (connector parameters may have changed without changing
        # the partition, so this cannot ride on partition invalidation).
        self.blocks.clear()
        self.reach_rebuilt = True
        reach: Dict[int, Dict[Vertex, Dict[Vertex, None]]] = {}
        expanded = expand_projections(self.network, self.expansion_seed,
                                      compile_csr=True)
        for proj_index, projection, _rows, csr in expanded:
            sources = self.partition[projection.pre.label]
            targets = self.partition[projection.post.label]
            starts = np.array([t.slice_start for t in targets])
            per_source = reach.setdefault(proj_index, {})
            for source in sources:
                lo = int(csr.row_ptr[source.slice_start])
                hi = int(csr.row_ptr[source.slice_stop])
                hit = csr.targets[lo:hi]
                if hit.size == 0:
                    continue
                bucket = per_source.setdefault(source, {})
                for index in np.unique(
                        np.searchsorted(starts, hit, side="right") - 1):
                    bucket[targets[int(index)]] = None
        self._reach = reach
        self._reach_tag = tag
        return True

    def reach_of(self, vertex: Vertex) -> Dict[Vertex, None]:
        """Target vertices receiving at least one synapse from ``vertex``,
        merged over every projection (insertion-ordered)."""
        merged: Dict[Vertex, None] = {}
        for per_source in self._reach.values():
            merged.update(per_source.get(vertex, {}))
        return merged

    def has_block(self, proj_index: int, source: Vertex,
                  target: Vertex) -> bool:
        """True if the projection has synapses from ``source`` to ``target``."""
        return target in self._reach.get(proj_index, {}).get(source, {})

    def feeders_of(self) -> Dict[Vertex, List[Tuple[int, Vertex]]]:
        """Reverse reach: target vertex -> (projection index, source
        vertex) pairs, in projection-major then source-slice order — the
        canonical per-core block order of the synaptic-matrix builder."""
        feeders: Dict[Vertex, List[Tuple[int, Vertex]]] = {}
        for proj_index, projection in enumerate(self.network.projections):
            per_source = self._reach.get(proj_index, {})
            for source in self.partition[projection.pre.label]:
                for target in per_source.get(source, {}):
                    feeders.setdefault(target, []).append(
                        (proj_index, source))
        return feeders

    def packed_block(self, proj_index: int, source: Vertex,
                     target: Vertex) -> Tuple:
        """The packed SDRAM block of one (projection, source, target) edge.

        Placement-independent and cached: a re-map that moves either
        vertex re-writes these words at a new address without re-packing.
        """
        cache_key = (proj_index, source, target)
        cached = self.blocks.get(cache_key)
        if cached is None:
            from repro.mapping.synaptic_matrix import pack_block
            from repro.neuron.population import expansion_rng
            projection = self.network.projections[proj_index]
            csr = projection.compile_csr(
                expansion_rng(self.expansion_seed, proj_index),
                seed=self.expansion_seed)
            block = csr.submatrix(source.slice_start, source.slice_stop,
                                  target.slice_start, target.slice_stop)
            cached = pack_block(block)
            self.blocks[cache_key] = cached
        return cached
