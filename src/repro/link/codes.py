"""Delay-insensitive link codes (Section 5.1).

Two code families are used in SpiNNaker:

* the on-chip CHAIN fabric uses a **3-of-6 return-to-zero (RTZ)** code:
  each 4-bit symbol is signalled by raising exactly three of six wires and
  then returning them all to zero;
* the chip-to-chip links use a **2-of-7 non-return-to-zero (NRZ)** code:
  each 4-bit symbol is signalled by *transitioning* exactly two of seven
  wires, with no return phase.

The paper's comparison (which this module regenerates exactly) is:

* *power* — "a 2-of-7 NRZ code uses 3 off-chip wire transitions to send 4
  bits of data; a 3-of-6 RTZ code uses 8 wire transitions to send the same
  4 bits" (data transitions plus the acknowledge transitions);
* *performance* — an RTZ handshake needs two complete out-and-return
  signalling loops per symbol where NRZ needs only one, "effectively
  doubling the throughput".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

#: Number of data bits carried per symbol by both codes.
BITS_PER_SYMBOL = 4


@dataclass(frozen=True)
class DelayInsensitiveCode:
    """An m-of-n delay-insensitive code.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"3-of-6 RTZ"``.
    n_wires:
        Number of data wires in the group.
    n_active:
        Number of wires that signal per symbol (the "m" of m-of-n).
    return_to_zero:
        True for RTZ codes (wires must be driven back to zero after every
        symbol), False for NRZ codes (the new symbol is signalled by wire
        *transitions* relative to the previous state).
    codebook:
        Mapping from 4-bit symbol value to the frozenset of active wires.
    end_of_packet:
        The wire set reserved for the end-of-packet marker.
    """

    name: str
    n_wires: int
    n_active: int
    return_to_zero: bool
    codebook: Dict[int, FrozenSet[int]]
    end_of_packet: FrozenSet[int]

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, symbol: int) -> FrozenSet[int]:
        """Return the set of active wires for a 4-bit ``symbol``."""
        if symbol not in self.codebook:
            raise ValueError("symbol %r is not a valid %d-bit value"
                             % (symbol, BITS_PER_SYMBOL))
        return self.codebook[symbol]

    def decode(self, wires: FrozenSet[int]) -> int:
        """Return the symbol value for a set of active wires.

        Raises
        ------
        ValueError
            If the wire set is not a codeword (a corrupted symbol); the
            delay-insensitive property means any wrong *number* of wires is
            detectable.
        """
        wires = frozenset(wires)
        for symbol, codeword in self.codebook.items():
            if codeword == wires:
                return symbol
        raise ValueError("wire set %s is not a codeword of %s"
                         % (sorted(wires), self.name))

    def is_codeword(self, wires: FrozenSet[int]) -> bool:
        """True if ``wires`` is a valid data codeword."""
        return frozenset(wires) in set(self.codebook.values())

    def encode_nibbles(self, nibbles: Sequence[int]) -> List[FrozenSet[int]]:
        """Encode a sequence of 4-bit values, appending the EOP marker."""
        return [self.encode(n) for n in nibbles] + [self.end_of_packet]

    # ------------------------------------------------------------------
    # Wire-transition accounting (the energy comparison of Section 5.1)
    # ------------------------------------------------------------------
    def data_transitions_per_symbol(self) -> int:
        """Wire transitions on the data wires for one symbol.

        RTZ: each active wire rises and then falls — ``2 * n_active``.
        NRZ: each active wire transitions exactly once — ``n_active``.
        """
        return self.n_active * (2 if self.return_to_zero else 1)

    def ack_transitions_per_symbol(self) -> int:
        """Wire transitions on the acknowledge wire for one symbol.

        RTZ handshakes acknowledge both the data phase and the return-to-
        zero phase (two transitions); NRZ acknowledges once per symbol.
        """
        return 2 if self.return_to_zero else 1

    def transitions_per_symbol(self) -> int:
        """Total wire transitions (data + acknowledge) for one 4-bit symbol.

        This reproduces the paper's numbers: 8 for 3-of-6 RTZ and 3 for
        2-of-7 NRZ.
        """
        return self.data_transitions_per_symbol() + self.ack_transitions_per_symbol()

    def handshake_round_trips_per_symbol(self) -> int:
        """Complete out-and-return signalling loops needed per symbol.

        An RTZ protocol completes two loops per symbol (data + ack, then
        return-to-zero + ack); NRZ completes one.  This is the paper's
        throughput argument.
        """
        return 2 if self.return_to_zero else 1

    def transitions_per_bit(self) -> float:
        """Wire transitions per transmitted data bit."""
        return self.transitions_per_symbol() / BITS_PER_SYMBOL


def _build_codebook(n_wires: int, n_active: int) -> Tuple[Dict[int, FrozenSet[int]],
                                                          FrozenSet[int]]:
    """Assign the first 16 m-of-n codewords to symbols, reserve one for EOP.

    Codewords are enumerated in lexicographic order of their wire indices,
    which is deterministic and therefore stable across runs and versions.
    """
    combinations = [frozenset(c) for c in
                    itertools.combinations(range(n_wires), n_active)]
    n_symbols = 1 << BITS_PER_SYMBOL
    if len(combinations) < n_symbols + 1:
        raise ValueError("%d-of-%d has only %d codewords; %d needed"
                         % (n_active, n_wires, len(combinations), n_symbols + 1))
    codebook = {symbol: combinations[symbol] for symbol in range(n_symbols)}
    end_of_packet = combinations[n_symbols]
    return codebook, end_of_packet


def three_of_six_rtz() -> DelayInsensitiveCode:
    """The on-chip 3-of-6 return-to-zero code (CHAIN fabric)."""
    codebook, eop = _build_codebook(6, 3)
    return DelayInsensitiveCode(name="3-of-6 RTZ", n_wires=6, n_active=3,
                                return_to_zero=True, codebook=codebook,
                                end_of_packet=eop)


def two_of_seven_nrz() -> DelayInsensitiveCode:
    """The chip-to-chip 2-of-7 non-return-to-zero code."""
    codebook, eop = _build_codebook(7, 2)
    return DelayInsensitiveCode(name="2-of-7 NRZ", n_wires=7, n_active=2,
                                return_to_zero=False, codebook=codebook,
                                end_of_packet=eop)


@dataclass
class LinkPerformanceModel:
    """Throughput and energy model of a chip-to-chip link.

    The dominant delay off chip is the wire flight time plus pad delay, so
    the symbol rate is set by how many complete out-and-return loops the
    protocol needs per symbol.  Energy per symbol is proportional to the
    number of off-chip wire transitions.

    Parameters
    ----------
    wire_delay_ns:
        One-way chip-to-chip delay (pad + PCB trace), nanoseconds.
    energy_per_transition_pj:
        Energy dissipated by one off-chip wire transition, picojoules.
    """

    wire_delay_ns: float = 2.0
    energy_per_transition_pj: float = 6.0

    def symbol_period_ns(self, code: DelayInsensitiveCode) -> float:
        """Time to transfer one 4-bit symbol across the link."""
        round_trip = 2.0 * self.wire_delay_ns
        return code.handshake_round_trips_per_symbol() * round_trip

    def throughput_mbit_per_s(self, code: DelayInsensitiveCode) -> float:
        """Sustained data throughput of the link using ``code``."""
        return BITS_PER_SYMBOL / self.symbol_period_ns(code) * 1e3

    def energy_per_symbol_pj(self, code: DelayInsensitiveCode) -> float:
        """Off-chip signalling energy per 4-bit symbol."""
        return code.transitions_per_symbol() * self.energy_per_transition_pj

    def energy_per_bit_pj(self, code: DelayInsensitiveCode) -> float:
        """Off-chip signalling energy per data bit."""
        return self.energy_per_symbol_pj(code) / BITS_PER_SYMBOL

    def packet_transfer_time_ns(self, code: DelayInsensitiveCode,
                                packet_bits: int = 40) -> float:
        """Time to transfer a packet of ``packet_bits`` (plus EOP symbol)."""
        n_symbols = (packet_bits + BITS_PER_SYMBOL - 1) // BITS_PER_SYMBOL
        # The end-of-packet marker costs one more symbol time.
        return (n_symbols + 1) * self.symbol_period_ns(code)

    def comparison(self) -> Dict[str, float]:
        """The headline NRZ-vs-RTZ ratios quoted in Section 5.1."""
        nrz = two_of_seven_nrz()
        rtz = three_of_six_rtz()
        return {
            "nrz_transitions_per_symbol": nrz.transitions_per_symbol(),
            "rtz_transitions_per_symbol": rtz.transitions_per_symbol(),
            "energy_ratio_nrz_over_rtz": (self.energy_per_symbol_pj(nrz) /
                                          self.energy_per_symbol_pj(rtz)),
            "throughput_ratio_nrz_over_rtz": (self.throughput_mbit_per_s(nrz) /
                                              self.throughput_mbit_per_s(rtz)),
        }
