"""Circuit-level model of the self-timed inter-chip links (Section 5.1).

SpiNNaker uses two delay-insensitive code families: a 3-of-6 return-to-zero
code on the on-chip CHAIN fabric and a 2-of-7 non-return-to-zero code on
the chip-to-chip links.  The inter-chip receiver uses a transition-sensing
phase converter (Figure 6) that keeps the link flowing in the presence of
injected glitches, and the link as a whole is a single-token ring with a
deliberate two-token reset protocol.

* :mod:`repro.link.codes` — the two delay-insensitive codebooks, their
  wire-transition counts and the throughput model behind the paper's
  "twice the performance for less than half the energy" claim.
* :mod:`repro.link.phase_converter` — the transition-sensing circuit of
  Figure 6 and the conventional XOR-based circuit it replaces.
* :mod:`repro.link.glitch` — Monte-Carlo glitch injection onto a running
  handshake, reproducing the factor-1000 deadlock reduction.
* :mod:`repro.link.channel` — the single-token inter-chip channel and its
  two-token reset/recovery protocol.
* :mod:`repro.link.chain` — a symbol-level model of the CHAIN on-chip
  fabric: pipeline stages, merge arbiters and the initiator-to-target
  fabric of Figure 3.
"""

from repro.link.chain import (
    ChainFabric,
    ChainLink,
    ChainStage,
    FabricTransfer,
    MergeArbiter,
)
from repro.link.channel import ChannelState, TokenChannel
from repro.link.codes import (
    DelayInsensitiveCode,
    three_of_six_rtz,
    two_of_seven_nrz,
    LinkPerformanceModel,
)
from repro.link.glitch import GlitchInjectionExperiment, GlitchOutcome
from repro.link.phase_converter import (
    ConventionalPhaseConverter,
    TransitionSensingPhaseConverter,
)

__all__ = [
    "ChainFabric",
    "ChainLink",
    "ChainStage",
    "FabricTransfer",
    "MergeArbiter",
    "ChannelState",
    "TokenChannel",
    "DelayInsensitiveCode",
    "three_of_six_rtz",
    "two_of_seven_nrz",
    "LinkPerformanceModel",
    "GlitchInjectionExperiment",
    "GlitchOutcome",
    "ConventionalPhaseConverter",
    "TransitionSensingPhaseConverter",
]
