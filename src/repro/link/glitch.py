"""Monte-Carlo glitch injection on the inter-chip link (Section 5.1, E4).

"It is not possible to avoid data corruption, so the goal is to minimize
the risk of deadlock resulting from glitch injection."  This module drives
both phase-converter circuits with the same stream of genuine data
transitions and randomly-injected glitch edges and measures how often each
circuit deadlocks — reproducing the factor-~1000 reduction reported for
the transition-sensing circuit of Figure 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.link.phase_converter import (
    ConventionalPhaseConverter,
    ConverterStatus,
    TransitionSensingPhaseConverter,
    _PhaseConverterBase,
)


@dataclass
class GlitchOutcome:
    """Aggregate result of a glitch-injection campaign for one circuit."""

    circuit: str
    trials: int = 0
    glitches_injected: int = 0
    deadlocks: int = 0
    corrupted_runs: int = 0
    clean_runs: int = 0

    @property
    def deadlock_probability(self) -> float:
        """Fraction of trials that ended in deadlock."""
        if self.trials == 0:
            return 0.0
        return self.deadlocks / self.trials

    @property
    def deadlocks_per_glitch(self) -> float:
        """Deadlocks normalised by the number of injected glitches."""
        if self.glitches_injected == 0:
            return 0.0
        return self.deadlocks / self.glitches_injected


@dataclass
class GlitchInjectionExperiment:
    """Drive both converter circuits with an identical glitched event stream.

    Parameters
    ----------
    symbol_period:
        Interval between genuine data transitions (arbitrary time units).
    ack_delay:
        Downstream acknowledge delay of the converters.
    glitch_rate:
        Expected number of glitch edges per symbol period (Poisson).
    symbols_per_trial:
        Genuine transitions sent in each trial.
    seed:
        Seed of the random number generator (trials are reproducible).
    """

    symbol_period: float = 2.0
    ack_delay: float = 1.0
    glitch_rate: float = 0.05
    symbols_per_trial: int = 200
    seed: Optional[int] = 42
    race_window_fraction: float = 0.001

    def _event_stream(self, rng: random.Random) -> List[tuple]:
        """Build one trial's merged stream of (time, kind) events.

        ``kind`` is ``"data"`` for genuine transitions and ``"glitch"`` for
        injected edges.  Glitches are a Poisson process with rate
        ``glitch_rate`` per symbol period.
        """
        events: List[tuple] = []
        for i in range(1, self.symbols_per_trial + 1):
            events.append((i * self.symbol_period, "data"))
        duration = self.symbols_per_trial * self.symbol_period
        expected_glitches = self.glitch_rate * self.symbols_per_trial
        # Sample the number of glitches from a Poisson distribution via the
        # standard inversion method (keeps the dependency surface small).
        n_glitches = _poisson_sample(expected_glitches, rng)
        for _ in range(n_glitches):
            events.append((rng.uniform(0.0, duration), "glitch"))
        events.sort(key=lambda item: item[0])
        return events

    def _run_circuit(self, converter: _PhaseConverterBase,
                     events: List[tuple]) -> None:
        for time, kind in events:
            if kind == "data":
                converter.data_edge(time)
            else:
                converter.glitch_pulse(time)

    def run(self, trials: int = 200) -> Dict[str, GlitchOutcome]:
        """Run ``trials`` independent trials on both circuits.

        Both circuits see *exactly the same* event stream in each trial, so
        the comparison isolates the circuit behaviour from the stimulus.
        Returns a mapping ``{"conventional": ..., "transition-sensing": ...}``.
        """
        rng = random.Random(self.seed)
        outcomes = {
            "conventional": GlitchOutcome(circuit="conventional"),
            "transition-sensing": GlitchOutcome(circuit="transition-sensing"),
        }
        for _ in range(trials):
            events = self._event_stream(rng)

            conventional = ConventionalPhaseConverter(ack_delay=self.ack_delay)
            sensing = TransitionSensingPhaseConverter(
                ack_delay=self.ack_delay,
                race_window_fraction=self.race_window_fraction)

            for name, converter in (("conventional", conventional),
                                    ("transition-sensing", sensing)):
                self._run_circuit(converter, events)
                outcome = outcomes[name]
                outcome.trials += 1
                # Count only the glitches the circuit was exposed to while
                # still alive, so the per-glitch hazard is meaningful for a
                # circuit that deadlocks early in the trial.
                outcome.glitches_injected += converter.trace.glitches_seen
                status = converter.trace.status
                if status is ConverterStatus.DEADLOCKED:
                    outcome.deadlocks += 1
                elif status is ConverterStatus.CORRUPTED:
                    outcome.corrupted_runs += 1
                else:
                    outcome.clean_runs += 1
        return outcomes

    def deadlock_reduction_factor(self, trials: int = 200) -> float:
        """The headline number of E4: conventional / transition-sensing.

        Computed per injected glitch.  When the transition-sensing circuit
        never deadlocks in the campaign the factor is reported against a
        one-deadlock upper bound, giving a conservative lower bound on the
        true reduction.
        """
        outcomes = self.run(trials)
        conventional = outcomes["conventional"].deadlocks_per_glitch
        sensing = outcomes["transition-sensing"]
        sensing_rate = sensing.deadlocks_per_glitch
        if sensing_rate == 0.0:
            if sensing.glitches_injected == 0:
                return 1.0
            sensing_rate = 1.0 / sensing.glitches_injected
        if conventional == 0.0:
            return 1.0
        return conventional / sensing_rate


def _poisson_sample(mean: float, rng: random.Random) -> int:
    """Draw a Poisson-distributed integer using Knuth's method.

    For the small means used here (a few glitches per trial) the simple
    multiplication method is both exact and fast.
    """
    if mean <= 0:
        return 0
    import math

    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
