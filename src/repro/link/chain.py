"""A behavioural model of the CHAIN on-chip fabric (Section 5.1, ref [6]).

The on-chip interconnect of the SpiNNaker MPSoC — both the Communications
NoC and the System NoC of Figure 3 — is built from the CHAIN delay-
insensitive fabric: packets are serialised into 3-of-6 RTZ symbols and
pushed through a pipeline of self-timed stages, with merge arbiters where
traffic streams join and steering elements where they fork.

This module models the fabric at the symbol level:

* :class:`ChainStage` — one self-timed pipeline stage with a forward
  latency and a cycle time (the handshake limits how fast consecutive
  symbols can follow each other);
* :class:`ChainLink` — a series of stages; its latency is the sum of stage
  latencies and its throughput is set by the slowest stage;
* :class:`MergeArbiter` — an N-way merge that serialises competing
  packets and records the waiting they suffer;
* :class:`ChainFabric` — a complete initiator-to-target fabric (cores to
  router and memory ports) assembled from links and arbiters, with
  per-transfer latency accounting.

The numbers are architectural, not electrical: stage delays default to
values representative of a 130 nm CHAIN implementation, and only ratios
and orderings are used by the tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.link.codes import BITS_PER_SYMBOL, DelayInsensitiveCode, three_of_six_rtz

__all__ = [
    "ChainStage",
    "ChainLink",
    "MergeArbiter",
    "FabricTransfer",
    "ChainFabric",
]

#: Representative forward latency of one CHAIN pipeline stage (ns).
DEFAULT_STAGE_LATENCY_NS = 1.0
#: Representative cycle time of one CHAIN pipeline stage (ns per symbol).
DEFAULT_STAGE_CYCLE_NS = 2.5


@dataclass(frozen=True)
class ChainStage:
    """One self-timed pipeline stage of the CHAIN fabric.

    Attributes
    ----------
    name:
        Stage label, used in latency breakdowns.
    forward_latency_ns:
        Time for one symbol to traverse the stage when the pipeline ahead
        is empty.
    cycle_time_ns:
        Minimum separation between consecutive symbols through the stage
        (set by the request/acknowledge handshake loop).
    """

    name: str
    forward_latency_ns: float = DEFAULT_STAGE_LATENCY_NS
    cycle_time_ns: float = DEFAULT_STAGE_CYCLE_NS

    def __post_init__(self) -> None:
        if self.forward_latency_ns < 0 or self.cycle_time_ns <= 0:
            raise ValueError("stage latency must be non-negative and cycle "
                             "time positive")


class ChainLink:
    """A pipeline of CHAIN stages carrying serialised symbols."""

    def __init__(self, name: str, stages: Sequence[ChainStage],
                 code: Optional[DelayInsensitiveCode] = None) -> None:
        if not stages:
            raise ValueError("a CHAIN link needs at least one stage")
        self.name = name
        self.stages = list(stages)
        self.code = code or three_of_six_rtz()
        self.symbols_carried = 0
        self._busy_until_ns = 0.0

    @classmethod
    def uniform(cls, name: str, n_stages: int,
                stage_latency_ns: float = DEFAULT_STAGE_LATENCY_NS,
                cycle_time_ns: float = DEFAULT_STAGE_CYCLE_NS) -> "ChainLink":
        """A link of ``n_stages`` identical stages."""
        stages = [ChainStage(name="%s-stage-%d" % (name, index),
                             forward_latency_ns=stage_latency_ns,
                             cycle_time_ns=cycle_time_ns)
                  for index in range(n_stages)]
        return cls(name, stages)

    @property
    def forward_latency_ns(self) -> float:
        """Pipeline fill latency: time for the first symbol to emerge."""
        return sum(stage.forward_latency_ns for stage in self.stages)

    @property
    def cycle_time_ns(self) -> float:
        """Symbol issue interval, set by the slowest stage."""
        return max(stage.cycle_time_ns for stage in self.stages)

    def symbols_for_bits(self, n_bits: int) -> int:
        """Symbols needed to carry ``n_bits`` of data plus the EOP marker."""
        if n_bits < 0:
            raise ValueError("bit count must be non-negative")
        data_symbols = (n_bits + BITS_PER_SYMBOL - 1) // BITS_PER_SYMBOL
        return data_symbols + 1

    def transfer_time_ns(self, n_bits: int) -> float:
        """Time to push a packet of ``n_bits`` through an empty link."""
        n_symbols = self.symbols_for_bits(n_bits)
        return self.forward_latency_ns + (n_symbols - 1) * self.cycle_time_ns

    def throughput_mbit_per_s(self) -> float:
        """Sustained data throughput of the link."""
        return BITS_PER_SYMBOL / self.cycle_time_ns * 1e3

    def accept(self, now_ns: float, n_bits: int) -> Tuple[float, float]:
        """Accept a packet at ``now_ns`` and return (start, completion) times.

        The link serialises packets: a packet arriving while a previous one
        is still draining waits for the tail symbol of the predecessor.
        """
        n_symbols = self.symbols_for_bits(n_bits)
        start = max(now_ns, self._busy_until_ns)
        occupancy = n_symbols * self.cycle_time_ns
        completion = start + self.forward_latency_ns + (n_symbols - 1) * self.cycle_time_ns
        self._busy_until_ns = start + occupancy
        self.symbols_carried += n_symbols
        return start, completion

    def reset_occupancy(self) -> None:
        """Clear the busy state (used between independent experiments)."""
        self._busy_until_ns = 0.0


class MergeArbiter:
    """An N-way self-timed merge element.

    Where several initiators' streams join (for example all cores sending
    to the router's packet input), a CHAIN merge arbiter serialises them.
    The model is first-come-first-served with a fixed per-decision
    overhead; it records how long each transfer waited so the fabric can
    report contention statistics.
    """

    def __init__(self, name: str, n_inputs: int,
                 decision_overhead_ns: float = 1.0) -> None:
        if n_inputs < 1:
            raise ValueError("an arbiter needs at least one input")
        if decision_overhead_ns < 0:
            raise ValueError("decision overhead must be non-negative")
        self.name = name
        self.n_inputs = n_inputs
        self.decision_overhead_ns = decision_overhead_ns
        self.grants = 0
        self.total_wait_ns = 0.0
        self.max_wait_ns = 0.0
        self._busy_until_ns = 0.0

    def request(self, now_ns: float, occupancy_ns: float) -> float:
        """Request the arbiter at ``now_ns`` for ``occupancy_ns`` of service.

        Returns the grant time.  The waiting time (grant - request) is
        accumulated in the contention statistics.
        """
        if occupancy_ns < 0:
            raise ValueError("occupancy must be non-negative")
        grant = max(now_ns, self._busy_until_ns) + self.decision_overhead_ns
        wait = grant - now_ns - self.decision_overhead_ns
        self._busy_until_ns = grant + occupancy_ns
        self.grants += 1
        self.total_wait_ns += wait
        self.max_wait_ns = max(self.max_wait_ns, wait)
        return grant

    @property
    def mean_wait_ns(self) -> float:
        """Mean arbitration wait over all grants."""
        if self.grants == 0:
            return 0.0
        return self.total_wait_ns / self.grants

    def reset(self) -> None:
        """Clear occupancy and statistics."""
        self.grants = 0
        self.total_wait_ns = 0.0
        self.max_wait_ns = 0.0
        self._busy_until_ns = 0.0


@dataclass(frozen=True)
class FabricTransfer:
    """The timing of one packet's journey through the fabric."""

    initiator: str
    target: str
    n_bits: int
    injected_ns: float
    granted_ns: float
    delivered_ns: float

    @property
    def latency_ns(self) -> float:
        """Total injection-to-delivery latency."""
        return self.delivered_ns - self.injected_ns

    @property
    def arbitration_wait_ns(self) -> float:
        """Time spent waiting for the merge arbiter."""
        return self.granted_ns - self.injected_ns


class ChainFabric:
    """An initiator-to-target CHAIN fabric (one chip's Communications NoC).

    The fabric has one ingress link per initiator, a single merge arbiter
    in front of each target, and one egress link per target — the simplest
    topology that exhibits the latencies and contention behaviour of the
    real fabric.  Both NoCs of Figure 3 can be modelled by choosing the
    initiator/target sets appropriately (cores → router for the
    Communications NoC; cores → SDRAM port for the System NoC).
    """

    def __init__(self, initiators: Sequence[str], targets: Sequence[str],
                 ingress_stages: int = 3, egress_stages: int = 2,
                 stage_latency_ns: float = DEFAULT_STAGE_LATENCY_NS,
                 cycle_time_ns: float = DEFAULT_STAGE_CYCLE_NS,
                 arbiter_overhead_ns: float = 1.0) -> None:
        if not initiators or not targets:
            raise ValueError("the fabric needs at least one initiator and one target")
        self.ingress: Dict[str, ChainLink] = {
            name: ChainLink.uniform("ingress-%s" % name, ingress_stages,
                                    stage_latency_ns, cycle_time_ns)
            for name in initiators}
        self.egress: Dict[str, ChainLink] = {
            name: ChainLink.uniform("egress-%s" % name, egress_stages,
                                    stage_latency_ns, cycle_time_ns)
            for name in targets}
        self.arbiters: Dict[str, MergeArbiter] = {
            name: MergeArbiter("arbiter-%s" % name, n_inputs=len(initiators),
                               decision_overhead_ns=arbiter_overhead_ns)
            for name in targets}
        self.transfers: List[FabricTransfer] = []

    def transfer(self, initiator: str, target: str, n_bits: int,
                 now_ns: float = 0.0) -> FabricTransfer:
        """Send a packet of ``n_bits`` from ``initiator`` to ``target``.

        Raises
        ------
        KeyError
            If the initiator or target is not part of the fabric.
        """
        ingress = self.ingress[initiator]
        egress = self.egress[target]
        arbiter = self.arbiters[target]

        _start, ingress_done = ingress.accept(now_ns, n_bits)
        occupancy = egress.symbols_for_bits(n_bits) * egress.cycle_time_ns
        granted = arbiter.request(ingress_done, occupancy)
        _egress_start, delivered = egress.accept(granted, n_bits)

        record = FabricTransfer(initiator=initiator, target=target,
                                n_bits=n_bits, injected_ns=now_ns,
                                granted_ns=granted, delivered_ns=delivered)
        self.transfers.append(record)
        return record

    def unloaded_latency_ns(self, initiator: str, target: str,
                            n_bits: int = 40) -> float:
        """Latency of a packet through an otherwise idle fabric."""
        ingress = self.ingress[initiator]
        egress = self.egress[target]
        arbiter = self.arbiters[target]
        return (ingress.transfer_time_ns(n_bits)
                + arbiter.decision_overhead_ns
                + egress.transfer_time_ns(n_bits))

    def contention_summary(self) -> Dict[str, float]:
        """Aggregate contention statistics across all target arbiters."""
        grants = sum(arbiter.grants for arbiter in self.arbiters.values())
        total_wait = sum(arbiter.total_wait_ns for arbiter in self.arbiters.values())
        max_wait = max((arbiter.max_wait_ns for arbiter in self.arbiters.values()),
                       default=0.0)
        return {
            "transfers": float(len(self.transfers)),
            "grants": float(grants),
            "mean_arbitration_wait_ns": total_wait / grants if grants else 0.0,
            "max_arbitration_wait_ns": max_wait,
            "mean_latency_ns": (sum(t.latency_ns for t in self.transfers)
                                / len(self.transfers)) if self.transfers else 0.0,
        }

    def reset(self) -> None:
        """Clear all occupancy and statistics."""
        for link in list(self.ingress.values()) + list(self.egress.values()):
            link.reset_occupancy()
            link.symbols_carried = 0
        for arbiter in self.arbiters.values():
            arbiter.reset()
        self.transfers.clear()
