"""Phase-converter circuits for the inter-chip links (Figure 6).

The chip-to-chip links signal in 2-phase (NRZ): a *transition* on a wire
carries one symbol event.  Inside the chip the logic works in 4-phase, so
the receiver must convert.  Two circuits are compared in the paper:

* the **conventional** circuit recovers the 4-phase value by XORing the
  wire level with locally-generated state.  "Such an implementation is
  prone to lose state in the presence of faults, resulting in deadlock":
  its input is never masked, so a glitch pulse that arrives while the
  circuit is waiting for data is captured as a runt event, the locally-
  generated phase state diverges from the transmitter's, and the next
  genuine transition is interpreted as the return to an already-seen level
  and silently swallowed — after which the transmitter waits for an
  acknowledge that never comes and the link deadlocks.

* the **transition-sensing** circuit (Figure 6) fires on transitions
  directly, so it is "insensitive to phase parity errors", and it *ignores
  further transitions on its data input until it is re-enabled by the
  acknowledge signal* (¬ack), protecting downstream circuits from spurious
  inputs.  A glitch pulse while the input is masked is ignored outright; a
  glitch while the input is enabled produces one corrupt symbol but the
  flow continues.  The only residual deadlock mechanism is a runt capture
  in the enable latch itself: a transition that lands inside the tiny
  re-enable race window (a few gate delays out of a whole handshake) can
  be lost.  That window is the circuit-level abstraction behind the
  factor-~1000 deadlock reduction reported in the paper.

Both circuits are modelled as state machines driven by a shared event
schedule of genuine data transitions and injected glitch pulses, so the E4
comparison emerges from the state-machine semantics plus one documented
physical parameter (the race-window width) rather than from an assumed
deadlock probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class ConverterStatus(Enum):
    """Observable health of a phase-converter after processing events."""

    RUNNING = "running"        #: Passing data normally.
    CORRUPTED = "corrupted"    #: Has emitted at least one corrupt symbol.
    DEADLOCKED = "deadlocked"  #: No longer able to pass data.


@dataclass
class ConverterTrace:
    """What a converter did with the event stream (for tests and benches)."""

    symbols_accepted: int = 0
    corrupt_symbols: int = 0
    spurious_symbols: int = 0
    swallowed_symbols: int = 0
    glitches_seen: int = 0
    glitches_masked: int = 0
    deadlocked: bool = False

    @property
    def status(self) -> ConverterStatus:
        """Summarise the trace as a :class:`ConverterStatus`."""
        if self.deadlocked:
            return ConverterStatus.DEADLOCKED
        if self.corrupt_symbols or self.spurious_symbols:
            return ConverterStatus.CORRUPTED
        return ConverterStatus.RUNNING


class _PhaseConverterBase:
    """Shared bookkeeping for both phase-converter models.

    The converter sits between the incoming 2-phase data wire and the
    downstream 4-phase logic.  After every output the downstream logic
    acknowledges after ``ack_delay`` time units; until then the converter
    is *busy*.
    """

    def __init__(self, ack_delay: float = 1.0) -> None:
        if ack_delay <= 0:
            raise ValueError("ack_delay must be positive")
        self.ack_delay = ack_delay
        self.trace = ConverterTrace()
        self._ack_due: Optional[float] = None

    # ------------------------------------------------------------------
    # Event inputs
    # ------------------------------------------------------------------
    def data_edge(self, time: float) -> None:
        """A genuine 2-phase data transition arrives at ``time``."""
        self._service_ack(time)
        self._on_data_edge(time)

    def glitch_pulse(self, time: float) -> None:
        """A transient glitch pulse (up-and-back excursion) at ``time``.

        ``glitches_seen`` counts only the glitches the converter was
        exposed to while still alive, so per-glitch deadlock hazards can be
        compared fairly between circuits that die early and circuits that
        survive the whole campaign.
        """
        self._service_ack(time)
        if not self.deadlocked:
            self.trace.glitches_seen += 1
        self._on_glitch_pulse(time)

    # Subclass hooks.
    def _on_data_edge(self, time: float) -> None:
        raise NotImplementedError

    def _on_glitch_pulse(self, time: float) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _service_ack(self, time: float) -> None:
        if self._ack_due is not None and time >= self._ack_due:
            self._ack_due = None

    def _emit(self, time: float, spurious: bool) -> None:
        self.trace.symbols_accepted += 1
        if spurious:
            self.trace.spurious_symbols += 1
            self.trace.corrupt_symbols += 1
        self._ack_due = time + self.ack_delay

    def _deadlock(self) -> None:
        self.trace.deadlocked = True

    @property
    def busy(self) -> bool:
        """True while an output is awaiting its downstream acknowledge."""
        return self._ack_due is not None

    @property
    def deadlocked(self) -> bool:
        """True once the converter can no longer pass data."""
        return self.trace.deadlocked


class ConventionalPhaseConverter(_PhaseConverterBase):
    """The XOR-based 2-phase to 4-phase converter the paper rejects.

    Behavioural abstraction (documented in the module docstring):

    * the input is never masked, so every glitch reaches the phase-recovery
      logic;
    * a glitch pulse arriving while the converter is **idle** (waiting for
      data, roughly half of every handshake period under normal traffic)
      is captured as a runt event: the locally-generated phase state flips
      without a matching transmitter transition.  The next genuine
      transition then brings the wire to a level the converter believes it
      has already processed, so it is swallowed and the link deadlocks.
    * a glitch pulse arriving while the converter is **busy** (data already
      captured, awaiting the downstream acknowledge) is filtered by the
      completion of the 4-phase handshake in progress: the wire level has
      returned to its driven value by the time the acknowledge re-examines
      it, so the pulse only risks corrupting the symbol being transferred.
    """

    def __init__(self, ack_delay: float = 1.0) -> None:
        super().__init__(ack_delay)
        self._phase_corrupted = False

    def _on_data_edge(self, time: float) -> None:
        if self.deadlocked:
            self.trace.swallowed_symbols += 1
            return
        if self._phase_corrupted:
            # The stored phase state no longer matches the transmitter:
            # this genuine transition looks like a return to an old level
            # and is invisible.  The transmitter will never be acknowledged.
            self.trace.swallowed_symbols += 1
            self._deadlock()
            return
        self._emit(time, spurious=False)

    def _on_glitch_pulse(self, time: float) -> None:
        if self.deadlocked:
            return
        if self.busy:
            # Handshake already in flight: the pulse can corrupt the symbol
            # being transferred but the phase state survives.
            self.trace.corrupt_symbols += 1
            return
        # Idle: runt capture corrupts the locally-generated phase state and
        # emits a spurious symbol downstream.
        self._emit(time, spurious=True)
        self._phase_corrupted = True


class TransitionSensingPhaseConverter(_PhaseConverterBase):
    """The transition-sensing converter of Figure 6.

    Behavioural abstraction (documented in the module docstring):

    * the input is masked while the converter is busy, so a glitch pulse in
      that interval is ignored entirely;
    * a glitch pulse while the input is enabled fires the converter once —
      one corrupt symbol goes downstream — after which the input is masked,
      so the glitch cannot do further damage.  The next genuine transition
      is absorbed against the spurious output (data corrupted, flow
      continues), because the circuit senses transitions rather than
      levels and therefore cannot lose phase parity.
    * the only deadlock mechanism left is a runt capture in the enable
      latch: a genuine transition that lands inside the ``race_window`` at
      the instant the acknowledge re-enables the input can be lost.  The
      window represents a few gate delays out of a whole handshake and is
      the single free physical parameter of the model.
    """

    def __init__(self, ack_delay: float = 1.0,
                 race_window_fraction: float = 0.001) -> None:
        super().__init__(ack_delay)
        if not 0 <= race_window_fraction < 1:
            raise ValueError("race_window_fraction must be in [0, 1)")
        self.race_window = race_window_fraction * ack_delay
        #: Set when a glitch-generated output is outstanding; the next
        #: genuine transition will be absorbed against it.
        self._spurious_outstanding = False

    def _on_data_edge(self, time: float) -> None:
        if self.deadlocked:
            self.trace.swallowed_symbols += 1
            return
        if self.busy:
            assert self._ack_due is not None
            if self._ack_due - time <= self.race_window:
                # The transition raced the re-enable of the input latch and
                # was lost: nothing will ever acknowledge the transmitter.
                self.trace.swallowed_symbols += 1
                self._deadlock()
                return
            if self._spurious_outstanding:
                # Masked, and the transmitter's symbol is matched by the
                # earlier spurious output: the data is corrupt but the
                # handshake stays live.
                self._spurious_outstanding = False
                self.trace.corrupt_symbols += 1
                return
            # Masked while a genuine output is still unacknowledged: the
            # wire keeps its level, so the transition is simply processed
            # when the acknowledge returns.  Model that as an accept at the
            # re-enable instant.
            re_enable_time = self._ack_due
            self._service_ack(re_enable_time)
            self._emit(re_enable_time, spurious=False)
            return
        self._emit(time, spurious=False)

    def _on_glitch_pulse(self, time: float) -> None:
        if self.deadlocked:
            return
        if self.busy:
            # Input masked until ¬ack re-enables it: the glitch is ignored.
            self.trace.glitches_masked += 1
            return
        self._emit(time, spurious=True)
        self._spurious_outstanding = True
