"""The single-token inter-chip channel and its reset protocol (Section 5.1).

"The inter-chip link can be viewed as a cycle with a single token that is
passed from end to end."  Resetting one end risks either destroying the
token (deadlock) or creating a second one (malfunction).  SpiNNaker's
solution: *both* transmitter and receiver inject a token when they exit
from reset — deliberately creating the two-token problem — and rely on the
transition-sensing input circuit to absorb the surplus token.

The model tracks the tokens explicitly.  The invariant the tests and the
E5 benchmark check is that after any sequence of resets of either or both
ends the channel converges back to exactly one circulating token, and that
data keeps flowing (no deadlock).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class ChannelState(Enum):
    """Health of the token channel."""

    RUNNING = "running"        #: Exactly one token is circulating.
    ABSORBING = "absorbing"    #: A surplus token is in flight, being absorbed.
    DEADLOCKED = "deadlocked"  #: No token remains: no data can ever flow.


class _End(Enum):
    TRANSMITTER = "transmitter"
    RECEIVER = "receiver"


@dataclass
class TokenChannel:
    """A chip-to-chip link modelled as a token-passing ring.

    The transmitter holds the token while it prepares a symbol; sending the
    symbol passes the token to the receiver; the acknowledge passes it
    back.  :meth:`step` advances one half-cycle (one token hop).

    Reset semantics (the design decision described in the paper):

    * :meth:`reset_end` resets one end.  Any token currently held at that
      end is destroyed (this is the hazard).  On exit from reset the end
      *injects a fresh token*.
    * If both ends are reset together, two tokens are injected.  The
      receiving circuit absorbs a token that arrives while it already
      holds one (the Figure 6 circuit "absorbs (and ignores) a second
      token"), so the channel converges back to a single token.
    """

    #: Tokens currently held at each end (in flight tokens are attributed
    #: to the end they are travelling towards at the next step).
    tokens_at: Dict[_End, int] = field(
        default_factory=lambda: {_End.TRANSMITTER: 1, _End.RECEIVER: 0})
    symbols_transferred: int = 0
    tokens_absorbed: int = 0
    resets_performed: int = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        """Number of tokens anywhere in the ring."""
        return sum(self.tokens_at.values())

    @property
    def state(self) -> ChannelState:
        """Current channel health."""
        total = self.total_tokens
        if total == 0:
            return ChannelState.DEADLOCKED
        if total > 1:
            return ChannelState.ABSORBING
        return ChannelState.RUNNING

    @property
    def deadlocked(self) -> bool:
        """True when the channel can no longer transfer data."""
        return self.state is ChannelState.DEADLOCKED

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Advance one full handshake cycle.

        The acknowledge phase runs first: any token at the receiver returns
        to the transmitter.  A surplus token arriving at a transmitter that
        already holds one — the deliberate two-token situation created when
        both ends exit reset together — is absorbed, implementing the
        Figure 6 behaviour ("absorb (and ignore) a second token that
        arrives while it is awaiting data to send with the first token").
        The data phase then moves the transmitter's token to the receiver,
        transferring one symbol.  Returns ``True`` if a symbol moved.
        """
        if self.deadlocked:
            return False

        # Acknowledge phase: receiver-side tokens return to the transmitter.
        if self.tokens_at[_End.RECEIVER] > 0:
            self.tokens_at[_End.TRANSMITTER] += self.tokens_at[_End.RECEIVER]
            self.tokens_at[_End.RECEIVER] = 0

        # Absorption at the transmitter input circuit.
        if self.tokens_at[_End.TRANSMITTER] > 1:
            self.tokens_absorbed += self.tokens_at[_End.TRANSMITTER] - 1
            self.tokens_at[_End.TRANSMITTER] = 1

        # Data phase: the transmitter's token carries a symbol across.
        transferred = False
        if self.tokens_at[_End.TRANSMITTER] > 0:
            self.tokens_at[_End.RECEIVER] += self.tokens_at[_End.TRANSMITTER]
            self.tokens_at[_End.TRANSMITTER] = 0
            self.symbols_transferred += 1
            transferred = True

        # Defensive absorption at the receiver (cannot normally exceed one).
        if self.tokens_at[_End.RECEIVER] > 1:
            self.tokens_absorbed += self.tokens_at[_End.RECEIVER] - 1
            self.tokens_at[_End.RECEIVER] = 1
        return transferred

    def run(self, half_cycles: int) -> int:
        """Run ``half_cycles`` steps; return the number of symbols moved."""
        before = self.symbols_transferred
        for _ in range(half_cycles):
            self.step()
        return self.symbols_transferred - before

    # ------------------------------------------------------------------
    # Reset protocol
    # ------------------------------------------------------------------
    def reset_end(self, end: str, inject_token_on_exit: bool = True) -> None:
        """Reset one end of the link.

        ``end`` is ``"transmitter"`` or ``"receiver"``.  Any token held at
        that end is destroyed by the reset; if ``inject_token_on_exit`` is
        True (the SpiNNaker design) a fresh token is injected as the end
        leaves reset.  Setting it to False models the naive design the
        paper argues against, in which resetting the end that happens to
        hold the token deadlocks the link.
        """
        key = _End(end)
        self.resets_performed += 1
        self.tokens_at[key] = 0
        if inject_token_on_exit:
            self.tokens_at[key] = 1

    def reset_both(self, inject_token_on_exit: bool = True) -> None:
        """Reset both ends simultaneously (the deliberate two-token case)."""
        self.reset_end("transmitter", inject_token_on_exit)
        self.reset_end("receiver", inject_token_on_exit)

    # ------------------------------------------------------------------
    # Experiments
    # ------------------------------------------------------------------
    @staticmethod
    def reset_storm(n_resets: int, inject_token_on_exit: bool = True,
                    seed: Optional[int] = 1) -> Dict[str, float]:
        """Subject a channel to ``n_resets`` random resets with traffic between.

        Each iteration runs some traffic, resets a random choice of
        transmitter, receiver or both, runs more traffic and records
        whether the channel is still passing data and how many tokens are
        circulating.  Returns summary statistics used by the E5 benchmark.
        """
        rng = random.Random(seed)
        channel = TokenChannel()
        deadlocks = 0
        multi_token_cycles = 0
        symbols = 0
        for _ in range(n_resets):
            symbols += channel.run(rng.randint(2, 10))
            choice = rng.choice(["transmitter", "receiver", "both"])
            if choice == "both":
                channel.reset_both(inject_token_on_exit)
            else:
                channel.reset_end(choice, inject_token_on_exit)
            symbols += channel.run(rng.randint(2, 10))
            if channel.deadlocked:
                deadlocks += 1
                # A real system would escalate to a full link restart; for
                # the statistics we restart the channel so later resets are
                # still counted independently.
                channel = TokenChannel()
            elif channel.total_tokens > 1:
                multi_token_cycles += 1
        return {
            "resets": float(n_resets),
            "deadlocks": float(deadlocks),
            "deadlock_fraction": deadlocks / n_resets if n_resets else 0.0,
            "multi_token_cycles": float(multi_token_cycles),
            "symbols_transferred": float(symbols),
            "tokens_absorbed": float(channel.tokens_absorbed),
        }
