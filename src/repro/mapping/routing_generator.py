"""Multicast routing-table generation (Section 5.3, ref [19]).

For every source vertex the generator computes the set of chips that host
post-synaptic vertices of any projection leaving that vertex, builds a
multicast tree from the source chip to those destinations over the torus,
and installs one masked routing entry per chip on the tree:

* at the source chip the entry lists the outgoing links of the tree (and
  the local cores, if any targets are co-located);
* at intermediate chips the entry forwards along the tree;
* at destination chips the entry delivers to the local target cores.

The trees are built by merging the shortest dimension-ordered routes to
each destination, which is what the real tool-chain's default router does
and gives the traffic reduction measured in experiment E11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import SpiNNakerMachine
from repro.mapping.keys import KeyAllocator
from repro.mapping.placement import Placement, Vertex
from repro.neuron.network import Network, expand_projections
from repro.neuron.population import LATEST_EXPANSION, expansion_rng
from repro.router.fabric import RouteProgram, compile_route
from repro.router.routing_table import RoutingEntry


@dataclass
class RoutingSummary:
    """Statistics of a routing-table generation pass."""

    entries_installed: int = 0
    entries_after_minimisation: int = 0
    chips_touched: int = 0
    multicast_trees: int = 0
    total_tree_links: int = 0
    programs_compiled: int = 0


class RoutingTableGenerator:
    """Builds and installs the per-chip multicast routing tables."""

    def __init__(self, machine: SpiNNakerMachine, placement: Placement,
                 keys: KeyAllocator) -> None:
        self.machine = machine
        self.placement = placement
        self.keys = keys
        #: Compiled key -> route programs for the transport fabric,
        #: emitted by :meth:`generate` when ``compile_programs`` is set.
        self.compiled_programs: Dict[int, RouteProgram] = {}

    # ------------------------------------------------------------------
    # Destination discovery
    # ------------------------------------------------------------------
    def destinations_of(self, network: Network, vertex: Vertex,
                        rng: np.random.Generator,
                        seed: object = LATEST_EXPANSION
                        ) -> Dict[ChipCoordinate, Set[int]]:
        """Chips (and the cores on them) that must receive ``vertex``'s spikes.

        A chip is a destination if any projection from the vertex's
        population has at least one synapse from a neuron in this vertex to
        a neuron placed on that chip.
        """
        destinations: Dict[ChipCoordinate, Set[int]] = {}
        for projection in network.projections:
            if projection.pre.label != vertex.population_label:
                continue
            rows = projection.build_rows(rng, seed=seed)
            target_vertices = self.placement.vertices_of(projection.post.label)
            for source_neuron in range(vertex.slice_start, vertex.slice_stop):
                synapses = rows.get(source_neuron)
                if not synapses:
                    continue
                for synapse in synapses:
                    for target_vertex in target_vertices:
                        if (target_vertex.slice_start <= synapse.target
                                < target_vertex.slice_stop):
                            chip, core = self.placement.location_of(target_vertex)
                            destinations.setdefault(chip, set()).add(core)
                            break
        return destinations

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def build_tree(self, source: ChipCoordinate,
                   destinations: List[ChipCoordinate]
                   ) -> Dict[ChipCoordinate, Set[Direction]]:
        """Merge shortest routes into a multicast tree.

        Returns a mapping from each chip on the tree to the set of outgoing
        link directions the packet must take there.  Destination-only chips
        appear with an empty set.
        """
        tree: Dict[ChipCoordinate, Set[Direction]] = {source: set()}
        for destination in destinations:
            if destination == source:
                continue
            route = self.machine.geometry.route(source, destination)
            current = source
            for direction in route:
                tree.setdefault(current, set()).add(direction)
                current = current.neighbour(direction,
                                            self.machine.config.width,
                                            self.machine.config.height)
            tree.setdefault(current, set())
        return tree

    def _pre_expand(self, network: Network,
                    effective_seed) -> np.random.Generator:
        """Expand every projection under its own per-index stream.

        Registers the canonical connectivity for ``effective_seed`` before
        the vertex loop — the same shared expansion artifact the host
        simulator and the mapping compiler use — so ``destinations_of``
        only ever cache-hits, and returns a generator for any remaining
        (legacy, unseeded) draws.
        """
        expand_projections(network, effective_seed)
        return expansion_rng(effective_seed)

    # ------------------------------------------------------------------
    # Table installation
    # ------------------------------------------------------------------
    def generate(self, network: Network,
                 seed: Optional[int] = None,
                 minimise: bool = True,
                 compile_programs: bool = False) -> RoutingSummary:
        """Install routing entries for every source vertex of the network.

        With ``compile_programs`` the generator also emits the compiled
        key -> tree programs the transport fabric replays at run time
        (:attr:`compiled_programs`), walked from the *installed* tables
        after minimisation so the programs reflect exactly what the
        event-driven router would do.
        """
        effective_seed = network.seed if seed is None else seed
        rng = self._pre_expand(network, effective_seed)
        summary = RoutingSummary()
        touched: Set[ChipCoordinate] = set()
        sources: List[Tuple[ChipCoordinate, int]] = []

        for vertex in self.placement.vertices:
            space = self.keys.key_space(vertex)
            source_chip, _source_core = self.placement.location_of(vertex)
            destinations = self.destinations_of(network, vertex, rng,
                                                seed=effective_seed)
            if not destinations:
                continue
            summary.multicast_trees += 1
            sources.append((source_chip, space.base_key))
            tree = self.build_tree(source_chip, list(destinations))
            summary.total_tree_links += sum(len(links) for links in tree.values())

            for chip_coordinate, link_directions in tree.items():
                cores = destinations.get(chip_coordinate, set())
                if not link_directions and not cores:
                    continue
                entry = RoutingEntry(key=space.base_key, mask=space.mask,
                                     link_directions=frozenset(link_directions),
                                     processor_ids=frozenset(cores))
                self.machine.chips[chip_coordinate].router.table.add_entry(entry)
                summary.entries_installed += 1
                touched.add(chip_coordinate)

        summary.chips_touched = len(touched)
        if minimise:
            remaining = 0
            for coordinate in touched:
                table = self.machine.chips[coordinate].router.table
                table.minimise()
                remaining += len(table)
            summary.entries_after_minimisation = remaining
        else:
            summary.entries_after_minimisation = summary.entries_installed
        if compile_programs:
            self.compiled_programs = {
                key: compile_route(self.machine, source_chip, key)
                for source_chip, key in sources}
            summary.programs_compiled = len(self.compiled_programs)
        return summary

    # ------------------------------------------------------------------
    # Broadcast baseline (experiment E11)
    # ------------------------------------------------------------------
    def generate_broadcast(self, network: Network,
                           seed: Optional[int] = None) -> RoutingSummary:
        """Install *broadcast* entries: every vertex's packets flood every chip.

        This is the bus-style AER baseline the paper contrasts with the
        packet-switched multicast mechanism ("in the past AER has been used
        principally in bus-based broadcast communication").  Each source
        vertex gets an entry on every chip that forwards the packet to the
        whole machine along a spanning tree rooted at the source, and
        delivers it to every application core that hosts post-synaptic
        vertices of the projection (the cores then discard irrelevant
        spikes, as a bus-snooping AER system would).
        """
        effective_seed = network.seed if seed is None else seed
        rng = self._pre_expand(network, effective_seed)
        summary = RoutingSummary()
        touched: Set[ChipCoordinate] = set()
        all_chips = list(self.machine.geometry.all_chips())

        for vertex in self.placement.vertices:
            space = self.keys.key_space(vertex)
            source_chip, _ = self.placement.location_of(vertex)
            destinations = self.destinations_of(network, vertex, rng,
                                                seed=effective_seed)
            if not destinations:
                continue
            summary.multicast_trees += 1
            tree = self.build_tree(source_chip, all_chips)
            summary.total_tree_links += sum(len(links) for links in tree.values())
            for chip_coordinate, link_directions in tree.items():
                cores = destinations.get(chip_coordinate, set())
                if not link_directions and not cores:
                    continue
                entry = RoutingEntry(key=space.base_key, mask=space.mask,
                                     link_directions=frozenset(link_directions),
                                     processor_ids=frozenset(cores))
                self.machine.chips[chip_coordinate].router.table.add_entry(entry)
                summary.entries_installed += 1
                touched.add(chip_coordinate)
        summary.chips_touched = len(touched)
        summary.entries_after_minimisation = summary.entries_installed
        return summary
