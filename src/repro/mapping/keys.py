"""Routing-key allocation (Address Event Representation, Section 4).

Every neuron that can emit a spike needs a unique 32-bit identifier: the
AER routing key carried by its multicast packets.  The allocation scheme is
the standard SpiNNaker one — the key encodes the placement of the source
vertex, so routing tables can use a single masked entry per vertex:

======  =====================================================
bits    meaning
======  =====================================================
31..24  x coordinate of the source chip
23..16  y coordinate of the source chip
15..11  core id of the source vertex (0-31 fits in 5 bits)
10..0   neuron index within the vertex (up to 2048 neurons)
======  =====================================================

The mask for a vertex keeps the chip/core bits and wildcards the neuron
bits, so one routing entry covers every neuron of the vertex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.geometry import ChipCoordinate
from repro.mapping.placement import Placement, Vertex

#: Field widths of the key layout.
NEURON_BITS = 11
CORE_BITS = 5
Y_BITS = 8
X_BITS = 8

NEURON_MASK = (1 << NEURON_BITS) - 1
#: Mask that keeps the chip and core fields and wildcards the neuron index.
VERTEX_MASK = 0xFFFFFFFF & ~NEURON_MASK


@dataclass(frozen=True)
class KeySpace:
    """The key and mask assigned to one source vertex."""

    base_key: int
    mask: int = VERTEX_MASK

    def key_for(self, neuron_index: int) -> int:
        """The full routing key of one neuron of the vertex."""
        if not 0 <= neuron_index <= NEURON_MASK:
            raise ValueError("neuron index %d does not fit in %d bits"
                             % (neuron_index, NEURON_BITS))
        return self.base_key | neuron_index

    def matches(self, key: int) -> bool:
        """True if ``key`` belongs to this vertex's key space."""
        return (key & self.mask) == self.base_key

    def neuron_of(self, key: int) -> int:
        """Extract the neuron index from a full key of this vertex."""
        if not self.matches(key):
            raise ValueError("key 0x%08x is not in this key space" % (key,))
        return key & NEURON_MASK


class KeyAllocator:
    """Allocate placement-derived key spaces to every source vertex."""

    def __init__(self, placement: Placement) -> None:
        self.placement = placement
        self._spaces: Dict[Vertex, KeySpace] = {}
        self._allocate()

    def _allocate(self) -> None:
        for vertex, (chip, core) in self.placement.locations.items():
            self._spaces[vertex] = KeySpace(self.pack_base(chip, core))

    def allocate_missing(self) -> List[Vertex]:
        """Allocate key spaces for newly placed vertices only.

        Keys are *sticky*: a vertex keeps the key space it was first
        allocated even if a later re-map moves it to another core — the
        paper's virtualised-topology principle (a neuron's logical
        identity never changes; only the routing tables follow it).
        Returns the vertices that received a new key space.
        """
        added: List[Vertex] = []
        for vertex, (chip, core) in self.placement.locations.items():
            if vertex not in self._spaces:
                self._spaces[vertex] = KeySpace(self.pack_base(chip, core))
                added.append(vertex)
        return added

    def reallocate(self, placement: Placement) -> None:
        """Forget every key space and re-allocate from ``placement``.

        Only for a full recompile (the network itself changed); an
        incremental re-map must use :meth:`allocate_missing` so existing
        keys stay stable.
        """
        self.placement = placement
        self._spaces.clear()
        self._allocate()

    @staticmethod
    def pack_base(chip: ChipCoordinate, core: int) -> int:
        """Pack a (chip, core) location into the base key."""
        if not 0 <= chip.x < (1 << X_BITS) or not 0 <= chip.y < (1 << Y_BITS):
            raise ValueError("chip %s outside the addressable key space" % (chip,))
        if not 0 <= core < (1 << CORE_BITS):
            raise ValueError("core %d does not fit in %d bits" % (core, CORE_BITS))
        return ((chip.x << (Y_BITS + CORE_BITS + NEURON_BITS)) |
                (chip.y << (CORE_BITS + NEURON_BITS)) |
                (core << NEURON_BITS))

    @staticmethod
    def unpack_base(key: int) -> Tuple[ChipCoordinate, int]:
        """Recover the (chip, core) of a key's source vertex."""
        core = (key >> NEURON_BITS) & ((1 << CORE_BITS) - 1)
        y = (key >> (CORE_BITS + NEURON_BITS)) & ((1 << Y_BITS) - 1)
        x = (key >> (Y_BITS + CORE_BITS + NEURON_BITS)) & ((1 << X_BITS) - 1)
        return ChipCoordinate(x, y), core

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def key_space(self, vertex: Vertex) -> KeySpace:
        """The key space of a vertex."""
        return self._spaces[vertex]

    def key_for_neuron(self, population_label: str, neuron: int) -> int:
        """The routing key of one neuron identified by population and index."""
        vertex, local_index = self.placement.vertex_for_neuron(
            population_label, neuron)
        return self._spaces[vertex].key_for(local_index)

    def vertex_for_key(self, key: int) -> Optional[Vertex]:
        """The source vertex whose key space contains ``key`` (or ``None``)."""
        for vertex, space in self._spaces.items():
            if space.matches(key):
                return vertex
        return None

    def neuron_for_key(self, key: int) -> Optional[Tuple[str, int]]:
        """Resolve a key back to ``(population_label, global_neuron_index)``."""
        vertex = self.vertex_for_key(key)
        if vertex is None:
            return None
        space = self._spaces[vertex]
        return vertex.population_label, vertex.slice_start + space.neuron_of(key)

    def all_key_spaces(self) -> Dict[Vertex, KeySpace]:
        """Every vertex's key space (a copy)."""
        return dict(self._spaces)
