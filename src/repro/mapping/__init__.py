"""Mapping neural networks onto the machine (Section 5.3, refs [18][19]).

"Neurons must be mapped to processors, multicast routing tables computed,
connectivity data constructed, and relevant input/output mechanisms
deployed."  This package is that tool-chain:

* :mod:`repro.mapping.placement` — split populations into core-sized
  vertices and place them on application cores (virtualised topology:
  any neuron may go to any processor, but locality is exploited when
  possible);
* :mod:`repro.mapping.keys` — allocate the 32-bit AER routing keys and
  masks that identify each source neuron;
* :mod:`repro.mapping.routing_generator` — build the per-chip multicast
  routing tables that realise each projection as a multicast tree;
* :mod:`repro.mapping.synaptic_matrix` — pack each projection's synaptic
  rows into the target chip's SDRAM and build the master population table
  used by the packet-received handler to find them.
"""

from repro.mapping.keys import KeyAllocator, KeySpace
from repro.mapping.placement import Placement, Placer, Vertex
from repro.mapping.routing_generator import RoutingTableGenerator
from repro.mapping.synaptic_matrix import MasterPopulationTable, SynapticMatrixBuilder

__all__ = [
    "KeyAllocator",
    "KeySpace",
    "Placement",
    "Placer",
    "Vertex",
    "RoutingTableGenerator",
    "MasterPopulationTable",
    "SynapticMatrixBuilder",
]
