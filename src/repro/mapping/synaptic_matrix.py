"""Synaptic-matrix construction and the master population table (Section 5.3).

When a spike packet arrives at a core, the packet-received handler must
"identify the spiking neuron, map this to the associated block of
connectivity data in SDRAM, and then schedule a DMA to load that
information" (Figure 7).  Two data structures make that possible:

* the **master population table**: a per-core list of ``(key, mask) ->
  (SDRAM base address, row stride)`` records, searched with the incoming
  packet's routing key;
* the **synaptic matrix**: for each source vertex a block of SDRAM holding
  one packed synaptic row per source neuron, each row listing the synapses
  onto the *local* neurons of the core (target indices rewritten to the
  core-local numbering).

The builder walks the network's projections, filters every source row down
to the synapses that land on each destination vertex and writes the packed
rows into the destination chip's SDRAM model, so the on-machine runtime
fetches exactly the bytes a real SpiNNaker core would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


from repro.core.machine import SpiNNakerMachine
from repro.mapping.keys import KeyAllocator, KeySpace
from repro.mapping.placement import Placement, Vertex
from repro.neuron.engine import CSRMatrix
from repro.neuron.population import expansion_rng
from repro.neuron.network import Network


@dataclass(frozen=True)
class PopulationTableEntry:
    """One record of a core's master population table."""

    key: int
    mask: int
    sdram_address: int
    row_stride_words: int
    n_rows: int

    def matches(self, packet_key: int) -> bool:
        """True if the packet key belongs to this entry's source vertex."""
        return (packet_key & self.mask) == self.key

    def address_of(self, packet_key: int) -> Tuple[int, int]:
        """SDRAM address and length (words) of the row for ``packet_key``."""
        neuron_index = packet_key & ~self.mask & 0xFFFFFFFF
        if neuron_index >= self.n_rows:
            raise KeyError("key 0x%08x indexes row %d of a %d-row block"
                           % (packet_key, neuron_index, self.n_rows))
        return (self.sdram_address + 4 * neuron_index * self.row_stride_words,
                self.row_stride_words)


class MasterPopulationTable:
    """The per-core lookup from routing key to synaptic-row address."""

    def __init__(self) -> None:
        self.entries: List[PopulationTableEntry] = []
        self.lookups = 0
        self.misses = 0

    def add(self, entry: PopulationTableEntry) -> None:
        """Register a source vertex's block."""
        self.entries.append(entry)

    def entry_for(self, packet_key: int) -> Optional[PopulationTableEntry]:
        """First entry matching ``packet_key``, without touching counters.

        The counter-neutral probe used by the transport fabric when it
        compiles delivery legs at load time (mirroring
        :meth:`MulticastRoutingTable.route_for`).
        """
        for entry in self.entries:
            if entry.matches(packet_key):
                return entry
        return None

    def lookup(self, packet_key: int) -> Optional[Tuple[int, int]]:
        """Resolve a packet key to ``(sdram_address, row_words)`` or ``None``."""
        self.lookups += 1
        entry = self.entry_for(packet_key)
        if entry is None:
            self.misses += 1
            return None
        return entry.address_of(packet_key)

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class CoreSynapticData:
    """Everything one application core needs to process incoming spikes."""

    vertex: Vertex
    population_table: MasterPopulationTable = field(
        default_factory=MasterPopulationTable)
    total_synapses: int = 0
    total_sdram_words: int = 0
    #: SDRAM regions backing this core's blocks, so an incremental re-map
    #: can free them when the vertex moves off the chip.
    regions: List = field(default_factory=list)


def pack_block(block: "CSRMatrix"):
    """Pack one (source vertex -> destination core) CSR block.

    Returns ``(packed_rows, row_lengths, stride_words, n_synapses)`` —
    the placement-independent artifact the mapping compiler caches: a
    re-map that moves vertices around reuses these words verbatim, only
    the SDRAM addresses and population-table records are rebuilt.
    """
    packed_rows = block.pack_rows()
    row_lengths = block.row_lengths()
    stride = max(len(words) for words in packed_rows)
    return packed_rows, row_lengths, stride, block.n_synapses


def write_packed_block(chip, data: CoreSynapticData, space: KeySpace,
                       source_vertex: Vertex, packed_rows, row_lengths,
                       stride: int) -> None:
    """Write one packed block into ``chip``'s SDRAM and index it.

    The rows are padded to the fixed ``stride`` so the packet handler can
    compute a row address directly from the neuron index, exactly as the
    real master population table does.
    """
    region = chip.sdram.allocate(
        4 * stride * len(packed_rows),
        tag="synapses:%s->%s" % (source_vertex, data.vertex))
    for row_index, words in enumerate(packed_rows):
        words = words + [0] * (stride - len(words))
        chip.sdram.write_block(region.base + 4 * row_index * stride, words)
        data.total_synapses += int(row_lengths[row_index])
    data.total_sdram_words += stride * len(packed_rows)
    data.regions.append(region)
    data.population_table.add(PopulationTableEntry(
        key=space.base_key, mask=space.mask,
        sdram_address=region.base, row_stride_words=stride,
        n_rows=len(packed_rows)))


class SynapticMatrixBuilder:
    """Packs projection connectivity into SDRAM and builds population tables."""

    def __init__(self, machine: SpiNNakerMachine, placement: Placement,
                 keys: KeyAllocator) -> None:
        self.machine = machine
        self.placement = placement
        self.keys = keys
        #: (chip, core) -> CoreSynapticData, filled in by :meth:`build`.
        self.core_data: Dict[Tuple, CoreSynapticData] = {}

    def build(self, network: Network, seed: Optional[int] = None) -> Dict[Tuple, CoreSynapticData]:
        """Construct and write every core's synaptic matrix.

        Returns the per-core data, keyed by ``(chip_coordinate, core_id)``.
        """
        effective_seed = network.seed if seed is None else seed
        self.core_data = {}

        # Initialise a record per placed vertex.
        for vertex, (chip, core) in self.placement.locations.items():
            self.core_data[(chip, core)] = CoreSynapticData(vertex=vertex)

        for index, projection in enumerate(network.projections):
            # Compile once per projection; every (source, target) vertex
            # pair is then a vectorized submatrix slice instead of a
            # per-Synapse filter loop.
            csr = projection.compile_csr(
                expansion_rng(effective_seed, index), seed=effective_seed)
            source_vertices = self.placement.vertices_of(projection.pre.label)
            target_vertices = self.placement.vertices_of(projection.post.label)

            for target_vertex in target_vertices:
                target_location = self.placement.location_of(target_vertex)
                data = self.core_data[target_location]
                chip = self.machine.chips[target_location[0]]

                for source_vertex in source_vertices:
                    block = csr.submatrix(source_vertex.slice_start,
                                          source_vertex.slice_stop,
                                          target_vertex.slice_start,
                                          target_vertex.slice_stop)
                    if block.n_synapses == 0:
                        continue
                    self._write_block(chip, data, source_vertex, block)
        return self.core_data

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _write_block(self, chip, data: CoreSynapticData,
                     source_vertex: Vertex, block: CSRMatrix) -> None:
        """Write one source vertex's rows into the chip's SDRAM.

        ``block`` is the projection submatrix restricted to this source
        vertex's neurons and the destination core's local targets; its
        packed rows are byte-identical to the old per-``SynapticRow``
        construction.
        """
        packed_rows, row_lengths, stride, _ = pack_block(block)
        write_packed_block(chip, data, self.keys.key_space(source_vertex),
                           source_vertex, packed_rows, row_lengths, stride)
