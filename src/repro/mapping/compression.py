"""Routing-table compression against the known key population (Section 5.3).

The hardware multicast router has a fixed 1024-entry CAM, so the mapping
tool-chain must keep each chip's table small.  :meth:`MulticastRoutingTable.minimise`
performs the conservative pairwise merge (same route, same mask, keys one
bit apart).  This module implements the stronger compression used by the
production tool flow: because the tool-chain *knows* every routing key that
will ever be presented to a router (they all come from the key allocator),
entries can be merged far more aggressively — a merged entry only has to
behave correctly for the keys that actually exist, not for all 2^32.

The algorithm is a greedy aligned-block cover:

1. evaluate the existing table against every known key to obtain the exact
   key → route function the table implements (a miss / default route is a
   route value of its own);
2. group keys by route and cover each group with the largest possible
   power-of-two aligned ternary blocks that contain no known key belonging
   to a *different* route group (unknown keys may be absorbed freely —
   they are never presented);
3. emit one routing entry per block.  Keys whose route was "miss" get no
   entry, preserving default routing for them.

The result is behaviourally identical to the original table for every key
in the known population, usually with far fewer entries — the property the
tests verify exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import SpiNNakerMachine
from repro.core.packets import KEY_BITS
from repro.mapping.keys import KeyAllocator
from repro.router.routing_table import MulticastRoutingTable, RoutingEntry

__all__ = [
    "Route",
    "CompressionReport",
    "TableCompressor",
    "compress_machine",
]

_FULL_MASK = (1 << KEY_BITS) - 1

#: A route: the (links, cores) output set of an entry.
Route = Tuple[FrozenSet[Direction], FrozenSet[int]]


@dataclass
class CompressionReport:
    """The outcome of compressing one routing table."""

    entries_before: int
    entries_after: int
    keys_checked: int
    blocks_emitted: int = 0

    @property
    def entries_removed(self) -> int:
        """Net number of CAM entries saved."""
        return self.entries_before - self.entries_after

    @property
    def compression_ratio(self) -> float:
        """``entries_after / entries_before`` (1.0 means no gain)."""
        if self.entries_before == 0:
            return 1.0
        return self.entries_after / self.entries_before


class TableCompressor:
    """Compress a multicast routing table against a known key population.

    Parameters
    ----------
    known_keys:
        Every routing key that can be presented to the table.  For a mapped
        network this is the set of keys the key allocator handed out; the
        convenience constructor :meth:`from_allocator` builds it.
    """

    def __init__(self, known_keys: Iterable[int]) -> None:
        self.known_keys: List[int] = sorted(set(known_keys))
        for key in self.known_keys:
            if not 0 <= key <= _FULL_MASK:
                raise ValueError("key 0x%x does not fit in %d bits"
                                 % (key, KEY_BITS))

    @classmethod
    def from_allocator(cls, keys: KeyAllocator) -> "TableCompressor":
        """Build a compressor from every key the allocator handed out."""
        known: List[int] = []
        for vertex, space in keys.all_key_spaces().items():
            known.extend(space.key_for(index)
                         for index in range(vertex.n_neurons))
        return cls(known)

    # ------------------------------------------------------------------
    # Behaviour extraction
    # ------------------------------------------------------------------
    def observed_routes(self, table: MulticastRoutingTable
                        ) -> Dict[int, Optional[Route]]:
        """The key → route function the table currently implements.

        Keys that miss every entry map to ``None`` (default routing).
        Delegates to :meth:`MulticastRoutingTable.compile_routes` — the
        same indexed behaviour-extraction walk the compiled transport
        fabric uses — which probes without disturbing the table's
        lookup/miss statistics.
        """
        return table.compile_routes(self.known_keys)

    # ------------------------------------------------------------------
    # Block cover
    # ------------------------------------------------------------------
    @staticmethod
    def _aligned_block(key: int, wildcard_bits: int) -> Tuple[int, int]:
        """The (base, mask) of the aligned 2**wildcard_bits block holding ``key``."""
        mask = (_FULL_MASK >> wildcard_bits << wildcard_bits) & _FULL_MASK
        return key & mask, mask

    def cover_group(self, group: Set[int],
                    foreign: Set[int]) -> List[Tuple[int, int]]:
        """Cover ``group`` with maximal aligned blocks avoiding ``foreign`` keys.

        Returns ``(base, mask)`` pairs.  Every key of ``group`` is inside
        exactly one returned block and no key of ``foreign`` is inside any
        of them; unknown keys may be absorbed.
        """
        remaining = set(group)
        blocks: List[Tuple[int, int]] = []
        while remaining:
            key = min(remaining)
            best = self._aligned_block(key, 0)
            for wildcard_bits in range(1, KEY_BITS + 1):
                base, mask = self._aligned_block(key, wildcard_bits)
                conflict = any((other & mask) == base for other in foreign)
                if conflict:
                    break
                best = (base, mask)
            base, mask = best
            blocks.append(best)
            remaining = {other for other in remaining
                         if (other & mask) != base}
        return blocks

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compressed_entries(self, table: MulticastRoutingTable
                           ) -> List[RoutingEntry]:
        """The compressed entry list equivalent to ``table`` on the known keys."""
        routes = self.observed_routes(table)
        groups: Dict[Route, Set[int]] = {}
        for key, route in routes.items():
            if route is None:
                continue
            groups.setdefault(route, set()).add(key)

        entries: List[RoutingEntry] = []
        for route, group in sorted(groups.items(),
                                   key=lambda item: min(item[1])):
            foreign = {key for key, other_route in routes.items()
                       if other_route != route}
            for base, mask in self.cover_group(group, foreign):
                links, cores = route
                entries.append(RoutingEntry(key=base, mask=mask,
                                            link_directions=links,
                                            processor_ids=cores))
        return entries

    def compress(self, table: MulticastRoutingTable) -> CompressionReport:
        """Replace the table's entries with the compressed equivalent."""
        before = len(table)
        entries = self.compressed_entries(table)
        table.clear()
        table.extend(entries)
        return CompressionReport(entries_before=before,
                                 entries_after=len(table),
                                 keys_checked=len(self.known_keys),
                                 blocks_emitted=len(entries))


def compress_machine(machine: SpiNNakerMachine,
                     keys: KeyAllocator) -> Dict[ChipCoordinate, CompressionReport]:
    """Compress every chip's routing table against the allocated keys.

    Returns a per-chip report; chips whose tables were already empty are
    included with a zero-entry report so callers can aggregate totals.
    """
    compressor = TableCompressor.from_allocator(keys)
    reports: Dict[ChipCoordinate, CompressionReport] = {}
    for coordinate, chip in machine.chips.items():
        reports[coordinate] = compressor.compress(chip.router.table)
    return reports
