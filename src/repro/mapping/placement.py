"""Placement: splitting populations into vertices and assigning them to cores.

The paper's "virtualised topology" principle (Section 3.2) says any neuron
*can* be mapped to any processor, but that mapping biologically-proximal
neurons to physically-proximal cores "will minimize routing costs".  The
placer implements both policies:

* ``"round-robin"`` — scatter vertices over the machine in raster order,
  the simplest legal placement (and a useful worst case for traffic);
* ``"locality"`` — place the vertices of each population contiguously and
  place connected populations on nearby chips, a greedy approximation of
  the radix/locality-aware placement of the real tool-chain [19].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.geometry import ChipCoordinate
from repro.core.machine import SpiNNakerMachine
from repro.neuron.network import Network

#: Default maximum number of neurons simulated by one application core; the
#: real-time budget of the SpiNNaker kernel is of this order for LIF /
#: Izhikevich neurons at a 1 ms timestep.
DEFAULT_MAX_NEURONS_PER_CORE = 256


@dataclass(frozen=True)
class Vertex:
    """A slice of a population small enough to run on one core."""

    population_label: str
    slice_start: int
    slice_stop: int
    index: int

    @property
    def n_neurons(self) -> int:
        """Number of neurons in the slice."""
        return self.slice_stop - self.slice_start

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "%s[%d:%d]" % (self.population_label, self.slice_start,
                              self.slice_stop)


class PlacementError(Exception):
    """Raised when the network does not fit on the machine."""


@dataclass
class Placement:
    """The result of placing a network onto a machine."""

    machine: SpiNNakerMachine
    max_neurons_per_core: int
    vertices: List[Vertex] = field(default_factory=list)
    #: vertex -> (chip coordinate, core id)
    locations: Dict[Vertex, Tuple[ChipCoordinate, int]] = field(default_factory=dict)
    #: population label -> vertices, in slice order
    by_population: Dict[str, List[Vertex]] = field(default_factory=dict)

    def location_of(self, vertex: Vertex) -> Tuple[ChipCoordinate, int]:
        """The (chip, core) a vertex was placed on."""
        return self.locations[vertex]

    def vertices_of(self, population_label: str) -> List[Vertex]:
        """The vertices of one population, in slice order."""
        return self.by_population[population_label]

    def vertices_on_chip(self, coordinate: ChipCoordinate) -> List[Tuple[Vertex, int]]:
        """All ``(vertex, core)`` pairs placed on one chip."""
        return [(vertex, core) for vertex, (chip, core) in self.locations.items()
                if chip == coordinate]

    def vertex_for_neuron(self, population_label: str,
                          neuron: int) -> Tuple[Vertex, int]:
        """The vertex holding ``neuron`` and the neuron's index within it."""
        for vertex in self.by_population[population_label]:
            if vertex.slice_start <= neuron < vertex.slice_stop:
                return vertex, neuron - vertex.slice_start
        raise KeyError("neuron %d of %r not found in the placement"
                       % (neuron, population_label))

    @property
    def n_cores_used(self) -> int:
        """Number of application cores with at least one vertex."""
        return len(self.locations)

    def chips_used(self) -> List[ChipCoordinate]:
        """Chips hosting at least one vertex."""
        return sorted({chip for chip, _ in self.locations.values()},
                      key=lambda c: (c.y, c.x))


class Placer:
    """Split populations into vertices and assign them to application cores."""

    def __init__(self, machine: SpiNNakerMachine,
                 max_neurons_per_core: int = DEFAULT_MAX_NEURONS_PER_CORE,
                 strategy: str = "locality") -> None:
        if max_neurons_per_core <= 0:
            raise ValueError("max_neurons_per_core must be positive")
        if strategy not in ("locality", "round-robin"):
            raise ValueError("unknown placement strategy %r" % (strategy,))
        self.machine = machine
        self.max_neurons_per_core = max_neurons_per_core
        self.strategy = strategy

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def partition(self, network: Network) -> Dict[str, List[Vertex]]:
        """Split every population into vertices of at most the core budget."""
        vertices: Dict[str, List[Vertex]] = {}
        index = 0
        for population in network.populations:
            slices: List[Vertex] = []
            start = 0
            while start < population.size:
                stop = min(start + self.max_neurons_per_core, population.size)
                slices.append(Vertex(population.label, start, stop, index))
                index += 1
                start = stop
            vertices[population.label] = slices
        return vertices

    # ------------------------------------------------------------------
    # Core enumeration
    # ------------------------------------------------------------------
    def _application_cores(self) -> Iterator[Tuple[ChipCoordinate, int]]:
        """Iterate over usable (chip, core) slots in placement order.

        Core 0 of every chip is reserved for the Monitor Processor when the
        boot layer has not yet run; cores flagged failed or disabled are
        skipped.
        """
        for coordinate in self.machine.geometry.all_chips():
            chip = self.machine.chips[coordinate]
            monitor = chip.monitor_core_id if chip.monitor_core_id is not None else 0
            for core in chip.cores:
                if core.core_id == monitor:
                    continue
                if not core.is_available and core.state.value in ("failed",
                                                                  "disabled"):
                    continue
                yield coordinate, core.core_id

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(self, network: Network,
              partition: Optional[Dict[str, List[Vertex]]] = None) -> Placement:
        """Place ``network`` onto the machine.

        ``partition`` lets a caller (the pass-based mapping compiler)
        supply an already-computed partition artifact instead of
        re-partitioning; the placement is identical either way.

        Raises
        ------
        PlacementError
            If there are more vertices than available application cores.
        """
        if partition is None:
            partition = self.partition(network)
        all_vertices = [vertex for slices in partition.values()
                        for vertex in slices]
        slots = list(self._application_cores())
        if len(all_vertices) > len(slots):
            raise PlacementError(
                "network needs %d cores but the machine only offers %d"
                % (len(all_vertices), len(slots)))

        placement = Placement(machine=self.machine,
                              max_neurons_per_core=self.max_neurons_per_core,
                              vertices=all_vertices,
                              by_population=partition)

        if self.strategy == "round-robin":
            order = all_vertices
        else:
            # Locality: keep each population contiguous, and order
            # populations so that connected ones are adjacent in the slot
            # sequence (a greedy chain over the projection graph).
            order = self._locality_order(network, partition)

        for vertex, slot in zip(order, slots):
            placement.locations[vertex] = slot
        return placement

    def _locality_order(self, network: Network,
                        partition: Dict[str, List[Vertex]]) -> List[Vertex]:
        """Order vertices so connected populations sit on nearby cores."""
        adjacency: Dict[str, List[str]] = {}
        for projection in network.projections:
            adjacency.setdefault(projection.pre.label, []).append(
                projection.post.label)
            adjacency.setdefault(projection.post.label, []).append(
                projection.pre.label)

        visited: List[str] = []
        seen = set()

        def visit(label: str) -> None:
            if label in seen:
                return
            seen.add(label)
            visited.append(label)
            for neighbour in adjacency.get(label, []):
                visit(neighbour)

        for population in network.populations:
            visit(population.label)

        order: List[Vertex] = []
        for label in visited:
            order.extend(partition.get(label, []))
        return order
