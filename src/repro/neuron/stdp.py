"""Spike-timing-dependent plasticity.

Section 5.3 notes that "if the connectivity data is modified, a DMA must be
scheduled to write the changes back into SDRAM" — the write-back path that
exists purely to support synaptic plasticity.  This module provides the
standard additive pair-based STDP rule used by the SpiNNaker software
stack, so that the write-back path and the learning experiments have a real
workload to run.

The rule keeps one exponentially-decaying trace per pre- and per
post-synaptic neuron.  On a pre-synaptic spike each affected synapse is
depressed in proportion to the post-synaptic trace; on a post-synaptic
spike each incoming synapse is potentiated in proportion to the
pre-synaptic trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.neuron.engine import CSRMatrix
from repro.neuron.synapse import Synapse


@dataclass(frozen=True)
class STDPParameters:
    """Parameters of the additive pair-based STDP rule."""

    tau_plus_ms: float = 20.0
    tau_minus_ms: float = 20.0
    a_plus: float = 0.05
    a_minus: float = 0.06
    w_min: float = 0.0
    w_max: float = 5.0

    def __post_init__(self) -> None:
        if self.tau_plus_ms <= 0 or self.tau_minus_ms <= 0:
            raise ValueError("STDP time constants must be positive")
        if self.w_max < self.w_min:
            raise ValueError("w_max must be at least w_min")


class STDPMechanism:
    """Additive pair-based STDP applied to a projection's synapse rows.

    The mechanism mutates the ``weight`` of the :class:`Synapse` objects in
    place (rebuilding the frozen dataclasses), which in the on-machine
    runtime corresponds to modifying the row in DTCM and scheduling the
    write-back DMA.
    """

    def __init__(self, n_pre: int, n_post: int,
                 parameters: STDPParameters = STDPParameters(),
                 timestep_ms: float = 1.0) -> None:
        if n_pre <= 0 or n_post <= 0:
            raise ValueError("population sizes must be positive")
        self.parameters = parameters
        self.timestep_ms = timestep_ms
        self.pre_trace = np.zeros(n_pre)
        self.post_trace = np.zeros(n_post)
        self._decay_plus = float(np.exp(-timestep_ms / parameters.tau_plus_ms))
        self._decay_minus = float(np.exp(-timestep_ms / parameters.tau_minus_ms))
        self.potentiation_events = 0
        self.depression_events = 0
        self.rows_modified = 0

    def update(self, rows: Dict[int, List[Synapse]], pre_spikes: np.ndarray,
               post_spikes: np.ndarray, time_ms: float) -> None:
        """Apply one tick of STDP given this tick's pre/post spike masks."""
        p = self.parameters
        # Decay the traces first (they represent activity *before* this tick).
        self.pre_trace *= self._decay_plus
        self.post_trace *= self._decay_minus

        pre_indices = np.flatnonzero(pre_spikes)
        post_indices = np.flatnonzero(post_spikes)

        # Depression: pre-synaptic spike reads the post trace.
        for pre in pre_indices:
            row = rows.get(int(pre))
            if not row:
                continue
            modified = False
            for i, synapse in enumerate(row):
                trace = self.post_trace[synapse.target]
                if trace <= 0.0:
                    continue
                new_weight = max(p.w_min, synapse.weight - p.a_minus * trace)
                if new_weight != synapse.weight:
                    row[i] = Synapse(synapse.target, new_weight,
                                     synapse.delay_ticks)
                    self.depression_events += 1
                    modified = True
            if modified:
                self.rows_modified += 1

        # Potentiation: post-synaptic spike reads the pre trace.
        post_spiking = set(int(i) for i in post_indices)
        if post_spiking:
            for pre, row in rows.items():
                trace = self.pre_trace[pre]
                if trace <= 0.0 or not row:
                    continue
                modified = False
                for i, synapse in enumerate(row):
                    if synapse.target not in post_spiking:
                        continue
                    new_weight = min(p.w_max, synapse.weight + p.a_plus * trace)
                    if new_weight != synapse.weight:
                        row[i] = Synapse(synapse.target, new_weight,
                                         synapse.delay_ticks)
                        self.potentiation_events += 1
                        modified = True
                if modified:
                    self.rows_modified += 1

        # Finally the spikes of this tick bump their own traces.
        self.pre_trace[pre_indices] += 1.0
        self.post_trace[post_indices] += 1.0

    def update_csr(self, csr: CSRMatrix, pre_spikes: np.ndarray,
                   post_spikes: np.ndarray, time_ms: float) -> None:
        """Vectorized :meth:`update` over a compiled CSR matrix.

        Mutates ``csr.weights`` in place with gather/scatter operations
        instead of per-``Synapse`` loops, performing the same IEEE
        floating-point operations per synapse (and updating the same
        event/row counters) as the object-based rule, so the two paths
        learn identical weights.
        """
        p = self.parameters
        # Decay the traces first (they represent activity *before* this tick).
        self.pre_trace *= self._decay_plus
        self.post_trace *= self._decay_minus

        pre_indices = np.flatnonzero(pre_spikes)
        post_indices = np.flatnonzero(post_spikes)

        # Depression: pre-synaptic spike reads the post trace.
        if pre_indices.size:
            slots = csr.synapse_slots(pre_indices)
            if slots.size:
                trace = self.post_trace[csr.targets[slots]]
                active = slots[trace > 0.0]
                if active.size:
                    old = csr.weights[active]
                    new = np.maximum(p.w_min,
                                     old - p.a_minus * trace[trace > 0.0])
                    changed = new != old
                    csr.weights[active] = new
                    self.depression_events += int(changed.sum())
                    if changed.any():
                        self.rows_modified += int(np.unique(
                            csr.pre_index[active[changed]]).size)

        # Potentiation: post-synaptic spike reads the pre trace.
        if post_indices.size:
            post_spiked = np.zeros(csr.n_post, dtype=bool)
            post_spiked[post_indices] = True
            trace = self.pre_trace[csr.pre_index]
            candidates = np.flatnonzero(post_spiked[csr.targets]
                                        & (trace > 0.0))
            if candidates.size:
                old = csr.weights[candidates]
                new = np.minimum(p.w_max, old + p.a_plus * trace[candidates])
                changed = new != old
                csr.weights[candidates] = new
                self.potentiation_events += int(changed.sum())
                if changed.any():
                    self.rows_modified += int(np.unique(
                        csr.pre_index[candidates[changed]]).size)

        # Finally the spikes of this tick bump their own traces.
        self.pre_trace[pre_indices] += 1.0
        self.post_trace[post_indices] += 1.0

    def mean_weight(self, rows: Dict[int, List[Synapse]]) -> float:
        """Mean synaptic weight across all rows (for the learning benches)."""
        weights = [s.weight for row in rows.values() for s in row]
        if not weights:
            return 0.0
        return float(np.mean(weights))
