"""Hardware-targeted multi-layer perceptrons (Section 1, reference [3]).

The paper notes that the SpiNNaker architecture will also be applied to
"other important neural models [3]"; reference [3] studies *optimal
connectivity in hardware-targetted MLP networks* — multi-layer perceptrons
whose units have a bounded fan-in (because synaptic rows must fit in the
per-core data memory) and whose weights are held in fixed-point form
(because the ARM968 has no floating-point unit).  This module provides the
MLP substrate those studies need:

* :class:`SparseLayer` — a fully- or sparsely-connected layer whose fan-in
  per unit can be capped, with plain-numpy forward and backward passes;
* :class:`MLP` — a stack of layers trained by mini-batch gradient descent
  on a cross-entropy objective;
* :class:`FixedPointFormat` / :meth:`MLP.quantised` — conversion of a
  trained network to the Qm.n fixed-point representation a SpiNNaker core
  would hold, so the accuracy cost of the hardware number format can be
  measured;
* :func:`synthetic_classification_task` — a reproducible synthetic dataset
  (noisy class prototypes) used by the examples, tests and the fan-in
  ablation benchmark.

Everything is deliberately dependency-light: plain numpy, no autograd.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.neuron.population import simulation_rng

__all__ = [
    "FixedPointFormat",
    "SparseLayer",
    "MLP",
    "TrainingResult",
    "synthetic_classification_task",
]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed Qm.n fixed-point format (the ARM968 number representation).

    ``integer_bits`` excludes the sign bit; ``fractional_bits`` sets the
    resolution.  The SpiNNaker neural kernels typically use s16.15 for
    state and s8.7 or s4.11 for weights.
    """

    integer_bits: int = 8
    fractional_bits: int = 7

    def __post_init__(self) -> None:
        if self.integer_bits < 0 or self.fractional_bits < 0:
            raise ValueError("bit counts must be non-negative")
        if self.integer_bits + self.fractional_bits == 0:
            raise ValueError("the format needs at least one magnitude bit")

    @property
    def total_bits(self) -> int:
        """Total storage bits including the sign."""
        return self.integer_bits + self.fractional_bits + 1

    @property
    def resolution(self) -> float:
        """Smallest representable step."""
        return 2.0 ** -self.fractional_bits

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return 2.0 ** self.integer_bits - self.resolution

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return -(2.0 ** self.integer_bits)

    def quantise(self, values: np.ndarray) -> np.ndarray:
        """Round ``values`` to the nearest representable fixed-point number."""
        array = np.asarray(values, dtype=float)
        scaled = np.round(array / self.resolution) * self.resolution
        return np.clip(scaled, self.min_value, self.max_value)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=1, keepdims=True)


class SparseLayer:
    """One MLP layer with an optional per-unit fan-in cap.

    Parameters
    ----------
    n_inputs, n_outputs:
        Layer dimensions.
    fan_in:
        Maximum number of inputs each output unit may connect to.  ``None``
        means fully connected.  The connectivity pattern is chosen once at
        construction (uniformly at random without replacement) and is held
        fixed during training, as in reference [3].
    activation:
        ``"relu"``, ``"tanh"`` or ``"linear"``.
    """

    def __init__(self, n_inputs: int, n_outputs: int,
                 fan_in: Optional[int] = None, activation: str = "relu",
                 rng: Optional[np.random.Generator] = None) -> None:
        if n_inputs < 1 or n_outputs < 1:
            raise ValueError("layer dimensions must be positive")
        if fan_in is not None and not 1 <= fan_in <= n_inputs:
            raise ValueError("fan_in must lie in [1, n_inputs]")
        if activation not in ("relu", "tanh", "linear"):
            raise ValueError("unknown activation %r" % (activation,))
        rng = rng or simulation_rng(None)
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.fan_in = fan_in
        self.activation = activation

        scale = np.sqrt(2.0 / n_inputs)
        self.weights = rng.normal(0.0, scale, size=(n_inputs, n_outputs))
        self.biases = np.zeros(n_outputs)
        if fan_in is None:
            self.mask = np.ones((n_inputs, n_outputs), dtype=bool)
        else:
            self.mask = np.zeros((n_inputs, n_outputs), dtype=bool)
            for unit in range(n_outputs):
                chosen = rng.choice(n_inputs, size=fan_in, replace=False)
                self.mask[chosen, unit] = True
        self.weights *= self.mask

        self._last_input: Optional[np.ndarray] = None
        self._last_pre_activation: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass; caches the activations needed by :meth:`backward`."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        pre_activation = inputs @ self.weights + self.biases
        self._last_input = inputs
        self._last_pre_activation = pre_activation
        return self._activate(pre_activation)

    def _activate(self, pre_activation: np.ndarray) -> np.ndarray:
        if self.activation == "relu":
            return np.maximum(0.0, pre_activation)
        if self.activation == "tanh":
            return np.tanh(pre_activation)
        return pre_activation

    def _activation_gradient(self, pre_activation: np.ndarray) -> np.ndarray:
        if self.activation == "relu":
            return (pre_activation > 0).astype(float)
        if self.activation == "tanh":
            return 1.0 - np.tanh(pre_activation) ** 2
        return np.ones_like(pre_activation)

    def backward(self, output_gradient: np.ndarray,
                 learning_rate: float) -> np.ndarray:
        """Back-propagate ``output_gradient`` and update the layer in place.

        Returns the gradient with respect to the layer's inputs.  Weight
        updates are masked so pruned connections stay absent.
        """
        if self._last_input is None or self._last_pre_activation is None:
            raise RuntimeError("backward called before forward")
        delta = output_gradient * self._activation_gradient(
            self._last_pre_activation)
        input_gradient = delta @ self.weights.T
        weight_gradient = self._last_input.T @ delta
        batch = self._last_input.shape[0]
        self.weights -= learning_rate * (weight_gradient * self.mask) / batch
        self.biases -= learning_rate * delta.mean(axis=0)
        return input_gradient

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_connections(self) -> int:
        """Number of (potential) synapses the layer implements."""
        return int(self.mask.sum())

    def effective_fan_in(self) -> float:
        """Mean number of inputs actually wired to each output unit."""
        return float(self.mask.sum(axis=0).mean())


@dataclass
class TrainingResult:
    """Loss/accuracy trajectory of one training run."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss after the last epoch (infinity if never trained)."""
        return self.losses[-1] if self.losses else float("inf")

    @property
    def final_accuracy(self) -> float:
        """Training accuracy after the last epoch."""
        return self.accuracies[-1] if self.accuracies else 0.0


class MLP:
    """A small multi-layer perceptron classifier.

    Parameters
    ----------
    layer_sizes:
        ``[n_inputs, hidden..., n_classes]``; at least two entries.
    fan_in:
        Optional fan-in cap applied to every hidden layer (the output layer
        is always fully connected so every class can be expressed).
    seed:
        Seed for the connectivity pattern and weight initialisation.
    """

    def __init__(self, layer_sizes: Sequence[int],
                 fan_in: Optional[int] = None,
                 activation: str = "relu",
                 seed: Optional[int] = None) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("an MLP needs at least input and output layers")
        rng = simulation_rng(seed)
        self.layer_sizes = list(layer_sizes)
        self.fan_in = fan_in
        self.layers: List[SparseLayer] = []
        for index in range(len(layer_sizes) - 1):
            is_output = index == len(layer_sizes) - 2
            layer_fan_in = None if is_output else fan_in
            if layer_fan_in is not None:
                layer_fan_in = min(layer_fan_in, layer_sizes[index])
            self.layers.append(SparseLayer(
                layer_sizes[index], layer_sizes[index + 1],
                fan_in=layer_fan_in,
                activation="linear" if is_output else activation,
                rng=rng))

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of inputs."""
        activations = np.atleast_2d(np.asarray(inputs, dtype=float))
        for layer in self.layers:
            activations = layer.forward(activations)
        return _softmax(activations)

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Most probable class index for each input row."""
        return np.argmax(self.forward(inputs), axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        labels = np.asarray(labels)
        if labels.size == 0:
            return 0.0
        return float(np.mean(self.predict(inputs) == labels))

    def loss(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy loss on a labelled set."""
        probabilities = self.forward(inputs)
        labels = np.asarray(labels)
        picked = probabilities[np.arange(labels.size), labels]
        return float(-np.mean(np.log(np.clip(picked, 1e-12, 1.0))))

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, inputs: np.ndarray, labels: np.ndarray,
              epochs: int = 50, learning_rate: float = 0.1,
              batch_size: int = 32,
              seed: Optional[int] = None) -> TrainingResult:
        """Mini-batch gradient descent on the cross-entropy objective."""
        if epochs < 1:
            raise ValueError("need at least one epoch")
        if learning_rate <= 0:
            raise ValueError("the learning rate must be positive")
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        labels = np.asarray(labels)
        if inputs.shape[0] != labels.shape[0]:
            raise ValueError("inputs and labels must be aligned")
        rng = simulation_rng(seed)
        n_samples = inputs.shape[0]
        result = TrainingResult()

        for _epoch in range(epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, batch_size):
                batch = order[start:start + batch_size]
                batch_inputs = inputs[batch]
                batch_labels = labels[batch]
                probabilities = self.forward(batch_inputs)
                one_hot = np.zeros_like(probabilities)
                one_hot[np.arange(batch_labels.size), batch_labels] = 1.0
                gradient = probabilities - one_hot
                for layer in reversed(self.layers):
                    gradient = layer.backward(gradient, learning_rate)
            result.losses.append(self.loss(inputs, labels))
            result.accuracies.append(self.accuracy(inputs, labels))
        return result

    # ------------------------------------------------------------------
    # Hardware targeting
    # ------------------------------------------------------------------
    def quantised(self, weight_format: FixedPointFormat) -> "MLP":
        """A copy of the network with weights and biases in fixed point.

        The copy shares nothing with the original, so the two can be
        evaluated side by side to measure the accuracy cost of the number
        format (experiment A4 in the ablation suite).
        """
        clone = MLP(self.layer_sizes, fan_in=self.fan_in, seed=0)
        for original, copy in zip(self.layers, clone.layers):
            copy.activation = original.activation
            copy.mask = original.mask.copy()
            copy.weights = weight_format.quantise(original.weights) * copy.mask
            copy.biases = weight_format.quantise(original.biases)
        return clone

    def total_connections(self) -> int:
        """Total synapses across all layers (storage proxy for DTCM/SDRAM)."""
        return sum(layer.n_connections for layer in self.layers)


def synthetic_classification_task(n_classes: int = 4, n_features: int = 16,
                                  n_samples_per_class: int = 50,
                                  noise: float = 0.3,
                                  seed: Optional[int] = None
                                  ) -> Tuple[np.ndarray, np.ndarray]:
    """A reproducible noisy-prototype classification dataset.

    Each class is a random binary prototype vector; samples are the
    prototype plus Gaussian noise.  Returns ``(inputs, labels)``.
    """
    if n_classes < 2:
        raise ValueError("need at least two classes")
    if n_features < 1 or n_samples_per_class < 1:
        raise ValueError("need positive feature and sample counts")
    if noise < 0:
        raise ValueError("noise must be non-negative")
    rng = simulation_rng(seed)
    prototypes = rng.integers(0, 2, size=(n_classes, n_features)).astype(float)
    inputs = []
    labels = []
    for label, prototype in enumerate(prototypes):
        samples = prototype + rng.normal(0.0, noise,
                                         size=(n_samples_per_class, n_features))
        inputs.append(samples)
        labels.extend([label] * n_samples_per_class)
    stacked = np.vstack(inputs)
    label_array = np.array(labels)
    order = rng.permutation(label_array.size)
    return stacked[order], label_array[order]
