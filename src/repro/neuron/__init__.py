"""Spiking-neuron substrate.

SpiNNaker exists to simulate large systems of spiking neurons in biological
real time (Section 1).  This package provides the neuron-level substrate of
the reproduction:

* :mod:`repro.neuron.lif` and :mod:`repro.neuron.izhikevich` — the two
  point-neuron models the architecture is optimised for, updated on the
  1 ms tick of the real-time application model;
* :mod:`repro.neuron.synapse` — synaptic rows, the post-synaptic input
  ring buffer and the *deferred-event model* that re-inserts the
  programmable ("soft") axonal delays removed by the electronically
  instantaneous interconnect (Section 3.2);
* :mod:`repro.neuron.engine` — the vectorized CSR spike-propagation
  engine: projections compiled to flat ``row_ptr``/``targets``/``weights``/
  ``delay_ticks`` arrays, batch-scattered into the ring buffers;
* :mod:`repro.neuron.connectors` — connection-pattern generators
  (one-to-one, all-to-all, fixed-probability, distance-dependent);
* :mod:`repro.neuron.population` — a PyNN-flavoured population/projection
  network-description API;
* :mod:`repro.neuron.network` — a host-side reference simulator used as
  the behavioural baseline for the on-machine runtime;
* :mod:`repro.neuron.stdp` — spike-timing-dependent plasticity, the
  "connectivity data is modified ... write the changes back into SDRAM"
  path of Section 5.3.
"""

from repro.neuron.connectors import (
    AllToAllConnector,
    DistanceDependentConnector,
    FixedProbabilityConnector,
    OneToOneConnector,
)
from repro.neuron.engine import (
    CSRMatrix,
    decode_packed_row,
    pack_synapse_words,
    unpack_synapse_words,
)
from repro.neuron.izhikevich import IzhikevichParameters, IzhikevichPopulation
from repro.neuron.lif import LIFParameters, LIFPopulation
from repro.neuron.network import Network, SimulationResult
from repro.neuron.population import (
    Population,
    Projection,
    SpikeSourceArray,
    SpikeSourcePoisson,
)
from repro.neuron.stdp import STDPParameters, STDPMechanism
from repro.neuron.synapse import DeferredEventBuffer, Synapse, SynapticRow

__all__ = [
    "CSRMatrix",
    "decode_packed_row",
    "pack_synapse_words",
    "unpack_synapse_words",
    "AllToAllConnector",
    "DistanceDependentConnector",
    "FixedProbabilityConnector",
    "OneToOneConnector",
    "IzhikevichParameters",
    "IzhikevichPopulation",
    "LIFParameters",
    "LIFPopulation",
    "Network",
    "SimulationResult",
    "Population",
    "Projection",
    "SpikeSourceArray",
    "SpikeSourcePoisson",
    "STDPParameters",
    "STDPMechanism",
    "DeferredEventBuffer",
    "Synapse",
    "SynapticRow",
]
