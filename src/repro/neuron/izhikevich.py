"""Izhikevich neurons.

The Izhikevich model is the workhorse of the SpiNNaker software stack: it
reproduces a wide range of cortical firing patterns from two coupled
first-order equations,

    dv/dt = 0.04 v^2 + 5 v + 140 - u + I
    du/dt = a (b v - u)

with the after-spike reset ``v <- c, u <- u + d``.  It is cheap enough to
integrate on an embedded core once per millisecond, which is exactly the
design point of the architecture (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class IzhikevichParameters:
    """The four Izhikevich parameters plus the spike cutoff voltage."""

    a: float = 0.02
    b: float = 0.2
    c: float = -65.0
    d: float = 8.0
    v_peak_mv: float = 30.0

    @classmethod
    def regular_spiking(cls) -> "IzhikevichParameters":
        """Cortical regular-spiking (excitatory) cell."""
        return cls(a=0.02, b=0.2, c=-65.0, d=8.0)

    @classmethod
    def fast_spiking(cls) -> "IzhikevichParameters":
        """Cortical fast-spiking (inhibitory) cell."""
        return cls(a=0.1, b=0.2, c=-65.0, d=2.0)

    @classmethod
    def chattering(cls) -> "IzhikevichParameters":
        """Chattering (bursting) cell."""
        return cls(a=0.02, b=0.2, c=-50.0, d=2.0)

    @classmethod
    def intrinsically_bursting(cls) -> "IzhikevichParameters":
        """Intrinsically-bursting cell."""
        return cls(a=0.02, b=0.2, c=-55.0, d=4.0)


class IzhikevichPopulation:
    """State and update rule for a population of Izhikevich neurons.

    Integration uses two half-steps of 0.5 ms for the membrane equation per
    1 ms tick (the scheme used by both Izhikevich's reference code and the
    SpiNNaker kernel) to keep the quadratic term stable.
    """

    def __init__(self, size: int,
                 parameters: Optional[IzhikevichParameters] = None,
                 timestep_ms: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if size <= 0:
            raise ValueError("population size must be positive")
        if timestep_ms <= 0:
            raise ValueError("timestep must be positive")
        self.size = size
        self.parameters = parameters or IzhikevichParameters()
        self.timestep_ms = timestep_ms
        # Deferred import: population.py imports this module at load time.
        from repro.neuron.population import simulation_rng
        self._rng = rng or simulation_rng(None)

        p = self.parameters
        self.v = np.full(size, p.c, dtype=float)
        self.u = p.b * self.v
        self.synaptic_current = np.zeros(size, dtype=float)
        self.spike_count = np.zeros(size, dtype=int)

    def randomise_membrane(self) -> None:
        """Scatter the initial membrane state to desynchronise the network."""
        p = self.parameters
        self.v = self._rng.uniform(p.c, -50.0, self.size)
        self.u = p.b * self.v

    def inject_synaptic_input(self, charge_na: np.ndarray) -> None:
        """Add synaptic input (one value per neuron) for the current tick."""
        if charge_na.shape != (self.size,):
            raise ValueError("expected input of shape (%d,), got %s"
                             % (self.size, charge_na.shape))
        self.synaptic_current += charge_na

    def step(self, external_current_na: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance every neuron by one timestep; return the spike mask."""
        p = self.parameters
        i_total = self.synaptic_current.copy()
        if external_current_na is not None:
            i_total = i_total + external_current_na

        n_substeps = max(1, int(round(self.timestep_ms / 0.5)))
        dt = self.timestep_ms / n_substeps
        v, u = self.v, self.u
        for _ in range(n_substeps):
            v = v + dt * (0.04 * v * v + 5.0 * v + 140.0 - u + i_total)
            u = u + dt * (p.a * (p.b * v - u))

        spikes = v >= p.v_peak_mv
        v = np.where(spikes, p.c, v)
        u = np.where(spikes, u + p.d, u)

        self.v, self.u = v, u
        self.spike_count += spikes.astype(int)
        self.synaptic_current[:] = 0.0
        return spikes

    def reset(self) -> None:
        """Return the population to its initial quiescent state."""
        p = self.parameters
        self.v[:] = p.c
        self.u = p.b * self.v
        self.synaptic_current[:] = 0.0
        self.spike_count[:] = 0


class IzhikevichBlock:
    """Many Izhikevich populations stacked into one ``(n_lanes, width)``
    state, stepped with a single set of array operations per tick.

    Mirrors :class:`repro.neuron.lif.LIFBlock`: one lane per population,
    zero-padded to the widest lane, with the four model parameters as
    ``(n_lanes, 1)`` broadcast columns.  Every update is elementwise, so
    valid cells evolve bit-for-bit like the per-core populations they
    were stacked from.  The quadratic membrane equation has no stable
    rest point, so padded cells are re-clamped to their lane's reset
    state after every step (an elementwise ``where`` that leaves valid
    cells untouched) instead of being allowed to diverge.
    """

    model_name = "izhikevich"

    def __init__(self, states: "list[IzhikevichPopulation]") -> None:
        if not states:
            raise ValueError("IzhikevichBlock needs at least one population")
        self.n_lanes = len(states)
        self.lane_sizes = np.array([s.size for s in states], dtype=np.intp)
        self.width = int(self.lane_sizes.max())
        self.timestep_ms = states[0].timestep_ms

        shape = (self.n_lanes, self.width)
        self.valid = np.zeros(shape, dtype=bool)
        self.v = np.zeros(shape, dtype=float)
        self.u = np.zeros(shape, dtype=float)
        self.synaptic_current = np.zeros(shape, dtype=float)
        for lane, state in enumerate(states):
            n = state.size
            self.valid[lane, :n] = True
            self.v[lane, :n] = state.v
            self.u[lane, :n] = state.u
            self.synaptic_current[lane, :n] = state.synaptic_current
            self.v[lane, n:] = state.parameters.c
            self.u[lane, n:] = state.parameters.b * state.parameters.c

        def column(values: "list[float]") -> np.ndarray:
            return np.array(values, dtype=float).reshape(-1, 1)

        self._a = column([s.parameters.a for s in states])
        self._b = column([s.parameters.b for s in states])
        self._c = column([s.parameters.c for s in states])
        self._d = column([s.parameters.d for s in states])
        self._v_peak = column([s.parameters.v_peak_mv for s in states])

    def inject_synaptic_input(self, charge_na: np.ndarray) -> None:
        """Add synaptic input, one ``(n_lanes, width)`` array per tick."""
        self.synaptic_current += charge_na

    def step(self, external_current_na: Optional[np.ndarray] = None
             ) -> np.ndarray:
        """Advance every lane one timestep; return the masked spike grid."""
        i_total = self.synaptic_current.copy()
        if external_current_na is not None:
            i_total = i_total + external_current_na

        n_substeps = max(1, int(round(self.timestep_ms / 0.5)))
        dt = self.timestep_ms / n_substeps
        v, u = self.v, self.u
        for _ in range(n_substeps):
            v = v + dt * (0.04 * v * v + 5.0 * v + 140.0 - u + i_total)
            u = u + dt * (self._a * (self._b * v - u))

        spikes = v >= self._v_peak
        spikes &= self.valid
        v = np.where(spikes, self._c, v)
        u = np.where(spikes, u + self._d, u)

        # Hold the padding at reset — the quadratic equation would
        # otherwise drive it to overflow over a long run.
        v = np.where(self.valid, v, self._c)
        u = np.where(self.valid, u, self._b * self._c)

        self.v, self.u = v, u
        self.synaptic_current[:] = 0.0
        return spikes

    def lane_voltages(self, lane: int) -> np.ndarray:
        """The valid cells of one lane's membrane potentials."""
        return self.v[lane, :self.lane_sizes[lane]]
