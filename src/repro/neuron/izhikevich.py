"""Izhikevich neurons.

The Izhikevich model is the workhorse of the SpiNNaker software stack: it
reproduces a wide range of cortical firing patterns from two coupled
first-order equations,

    dv/dt = 0.04 v^2 + 5 v + 140 - u + I
    du/dt = a (b v - u)

with the after-spike reset ``v <- c, u <- u + d``.  It is cheap enough to
integrate on an embedded core once per millisecond, which is exactly the
design point of the architecture (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class IzhikevichParameters:
    """The four Izhikevich parameters plus the spike cutoff voltage."""

    a: float = 0.02
    b: float = 0.2
    c: float = -65.0
    d: float = 8.0
    v_peak_mv: float = 30.0

    @classmethod
    def regular_spiking(cls) -> "IzhikevichParameters":
        """Cortical regular-spiking (excitatory) cell."""
        return cls(a=0.02, b=0.2, c=-65.0, d=8.0)

    @classmethod
    def fast_spiking(cls) -> "IzhikevichParameters":
        """Cortical fast-spiking (inhibitory) cell."""
        return cls(a=0.1, b=0.2, c=-65.0, d=2.0)

    @classmethod
    def chattering(cls) -> "IzhikevichParameters":
        """Chattering (bursting) cell."""
        return cls(a=0.02, b=0.2, c=-50.0, d=2.0)

    @classmethod
    def intrinsically_bursting(cls) -> "IzhikevichParameters":
        """Intrinsically-bursting cell."""
        return cls(a=0.02, b=0.2, c=-55.0, d=4.0)


class IzhikevichPopulation:
    """State and update rule for a population of Izhikevich neurons.

    Integration uses two half-steps of 0.5 ms for the membrane equation per
    1 ms tick (the scheme used by both Izhikevich's reference code and the
    SpiNNaker kernel) to keep the quadratic term stable.
    """

    def __init__(self, size: int,
                 parameters: Optional[IzhikevichParameters] = None,
                 timestep_ms: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if size <= 0:
            raise ValueError("population size must be positive")
        if timestep_ms <= 0:
            raise ValueError("timestep must be positive")
        self.size = size
        self.parameters = parameters or IzhikevichParameters()
        self.timestep_ms = timestep_ms
        # Deferred import: population.py imports this module at load time.
        from repro.neuron.population import simulation_rng
        self._rng = rng or simulation_rng(None)

        p = self.parameters
        self.v = np.full(size, p.c, dtype=float)
        self.u = p.b * self.v
        self.synaptic_current = np.zeros(size, dtype=float)
        self.spike_count = np.zeros(size, dtype=int)

    def randomise_membrane(self) -> None:
        """Scatter the initial membrane state to desynchronise the network."""
        p = self.parameters
        self.v = self._rng.uniform(p.c, -50.0, self.size)
        self.u = p.b * self.v

    def inject_synaptic_input(self, charge_na: np.ndarray) -> None:
        """Add synaptic input (one value per neuron) for the current tick."""
        if charge_na.shape != (self.size,):
            raise ValueError("expected input of shape (%d,), got %s"
                             % (self.size, charge_na.shape))
        self.synaptic_current += charge_na

    def step(self, external_current_na: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance every neuron by one timestep; return the spike mask."""
        p = self.parameters
        i_total = self.synaptic_current.copy()
        if external_current_na is not None:
            i_total = i_total + external_current_na

        n_substeps = max(1, int(round(self.timestep_ms / 0.5)))
        dt = self.timestep_ms / n_substeps
        v, u = self.v, self.u
        for _ in range(n_substeps):
            v = v + dt * (0.04 * v * v + 5.0 * v + 140.0 - u + i_total)
            u = u + dt * (p.a * (p.b * v - u))

        spikes = v >= p.v_peak_mv
        v = np.where(spikes, p.c, v)
        u = np.where(spikes, u + p.d, u)

        self.v, self.u = v, u
        self.spike_count += spikes.astype(int)
        self.synaptic_current[:] = 0.0
        return spikes

    def reset(self) -> None:
        """Return the population to its initial quiescent state."""
        p = self.parameters
        self.v[:] = p.c
        self.u = p.b * self.v
        self.synaptic_current[:] = 0.0
        self.spike_count[:] = 0
