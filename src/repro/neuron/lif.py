"""Leaky integrate-and-fire neurons.

The LIF model is the simplest of the "simplified neuron models the
architecture is optimized for" (Section 1).  The membrane equation

    tau_m * dV/dt = -(V - V_rest) + R_m * I(t)

is integrated with the exponential-Euler step used by the SpiNNaker neural
kernel, once per 1 ms timer tick.  A neuron whose membrane potential
crosses the threshold emits a spike, is reset, and is held refractory for a
fixed number of ticks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class LIFParameters:
    """Parameters of a leaky integrate-and-fire population.

    Attributes
    ----------
    tau_m_ms:
        Membrane time constant.
    v_rest_mv, v_reset_mv, v_threshold_mv:
        Resting, post-spike reset and firing-threshold potentials.
    r_m_mohm:
        Membrane resistance (MOhm); input currents are in nA so
        ``r_m_mohm * i_na`` is in mV.
    tau_refrac_ms:
        Absolute refractory period.
    tau_syn_ms:
        Time constant of the exponential synaptic current kernel.
    """

    tau_m_ms: float = 20.0
    v_rest_mv: float = -65.0
    v_reset_mv: float = -70.0
    v_threshold_mv: float = -50.0
    r_m_mohm: float = 10.0
    tau_refrac_ms: float = 2.0
    tau_syn_ms: float = 5.0

    def __post_init__(self) -> None:
        if self.tau_m_ms <= 0:
            raise ValueError("tau_m_ms must be positive")
        if self.tau_syn_ms <= 0:
            raise ValueError("tau_syn_ms must be positive")
        if self.v_threshold_mv <= self.v_reset_mv:
            raise ValueError("threshold must be above the reset potential")
        if self.tau_refrac_ms < 0:
            raise ValueError("tau_refrac_ms must be non-negative")


class LIFPopulation:
    """State and update rule for a population of LIF neurons.

    The population is updated synchronously once per timestep (1 ms on the
    real machine).  Synaptic input arrives as charge delivered into an
    exponentially-decaying synaptic current, matching the "current
    exponential" synapse type of the SpiNNaker software stack.
    """

    def __init__(self, size: int, parameters: Optional[LIFParameters] = None,
                 timestep_ms: float = 1.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        if size <= 0:
            raise ValueError("population size must be positive")
        if timestep_ms <= 0:
            raise ValueError("timestep must be positive")
        self.size = size
        self.parameters = parameters or LIFParameters()
        self.timestep_ms = timestep_ms

        p = self.parameters
        self.v = np.full(size, p.v_rest_mv, dtype=float)
        self.synaptic_current = np.zeros(size, dtype=float)
        self.refractory_ticks_left = np.zeros(size, dtype=int)
        self.refractory_ticks = int(round(p.tau_refrac_ms / timestep_ms))

        # Exponential-Euler decay factors, computed once.
        self._alpha_m = float(np.exp(-timestep_ms / p.tau_m_ms))
        self._alpha_syn = float(np.exp(-timestep_ms / p.tau_syn_ms))

        self.spike_count = np.zeros(size, dtype=int)
        # Deferred import: population.py imports this module at load time.
        from repro.neuron.population import simulation_rng
        self._rng = rng or simulation_rng(None)

    def randomise_membrane(self, low_mv: Optional[float] = None,
                           high_mv: Optional[float] = None) -> None:
        """Randomise initial membrane potentials to desynchronise the network."""
        p = self.parameters
        low = p.v_reset_mv if low_mv is None else low_mv
        high = p.v_threshold_mv if high_mv is None else high_mv
        self.v = self._rng.uniform(low, high, self.size)

    def inject_synaptic_input(self, charge_na: np.ndarray) -> None:
        """Add synaptic charge (one value per neuron) for the current tick."""
        if charge_na.shape != (self.size,):
            raise ValueError("expected input of shape (%d,), got %s"
                             % (self.size, charge_na.shape))
        self.synaptic_current += charge_na

    def step(self, external_current_na: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance every neuron by one timestep.

        Returns a boolean array marking the neurons that spiked this tick.
        """
        p = self.parameters
        i_total = self.synaptic_current.copy()
        if external_current_na is not None:
            i_total = i_total + external_current_na

        # Exponential-Euler integration towards the steady-state voltage.
        v_infinity = p.v_rest_mv + p.r_m_mohm * i_total
        new_v = v_infinity + (self.v - v_infinity) * self._alpha_m

        # Refractory neurons are clamped at reset.
        refractory = self.refractory_ticks_left > 0
        new_v = np.where(refractory, p.v_reset_mv, new_v)
        self.refractory_ticks_left = np.maximum(self.refractory_ticks_left - 1, 0)

        spikes = new_v >= p.v_threshold_mv
        new_v = np.where(spikes, p.v_reset_mv, new_v)
        self.refractory_ticks_left = np.where(
            spikes, self.refractory_ticks, self.refractory_ticks_left)

        self.v = new_v
        self.spike_count += spikes.astype(int)
        # Synaptic current decays after being applied.
        self.synaptic_current *= self._alpha_syn
        return spikes

    def reset(self) -> None:
        """Return the population to its initial quiescent state."""
        p = self.parameters
        self.v[:] = p.v_rest_mv
        self.synaptic_current[:] = 0.0
        self.refractory_ticks_left[:] = 0
        self.spike_count[:] = 0


class LIFBlock:
    """Many LIF populations stacked into one ``(n_lanes, width)`` state.

    A board's fused engine steps every LIF core with a single set of
    array operations instead of one :meth:`LIFPopulation.step` call per
    core.  Each lane holds one population, zero-padded to the widest
    lane; per-population parameters become ``(n_lanes, 1)`` columns that
    broadcast across the row.

    Bit-identity with the per-core path: every operation in
    :meth:`step` is elementwise, and broadcasting a parameter column
    over a row performs the identical IEEE-754 scalar operation the
    per-core step performs with a Python float — so the valid cells of
    the stacked state evolve bit-for-bit like the corresponding
    per-core states.  Padded cells sit at their lane's resting
    potential, receive no input, and have their spikes masked out, so
    they can never influence a valid cell.
    """

    model_name = "lif"

    def __init__(self, states: "list[LIFPopulation]") -> None:
        if not states:
            raise ValueError("LIFBlock needs at least one population")
        self.n_lanes = len(states)
        self.lane_sizes = np.array([s.size for s in states], dtype=np.intp)
        self.width = int(self.lane_sizes.max())
        self.timestep_ms = states[0].timestep_ms

        shape = (self.n_lanes, self.width)
        self.valid = np.zeros(shape, dtype=bool)
        self.v = np.zeros(shape, dtype=float)
        self.synaptic_current = np.zeros(shape, dtype=float)
        self.refractory_ticks_left = np.zeros(shape, dtype=int)
        for lane, state in enumerate(states):
            n = state.size
            self.valid[lane, :n] = True
            self.v[lane, :n] = state.v
            self.synaptic_current[lane, :n] = state.synaptic_current
            self.refractory_ticks_left[lane, :n] = state.refractory_ticks_left
            # Park the padding at rest so it stays numerically quiet.
            self.v[lane, n:] = state.parameters.v_rest_mv

        def column(values: "list[float]") -> np.ndarray:
            return np.array(values, dtype=float).reshape(-1, 1)

        self._v_rest = column([s.parameters.v_rest_mv for s in states])
        self._v_reset = column([s.parameters.v_reset_mv for s in states])
        self._v_threshold = column([s.parameters.v_threshold_mv
                                    for s in states])
        self._r_m = column([s.parameters.r_m_mohm for s in states])
        # Reuse the exact decay factors the per-core states computed.
        self._alpha_m = column([s._alpha_m for s in states])
        self._alpha_syn = column([s._alpha_syn for s in states])
        self._refractory_ticks = np.array(
            [s.refractory_ticks for s in states], dtype=int).reshape(-1, 1)

    def inject_synaptic_input(self, charge_na: np.ndarray) -> None:
        """Add synaptic charge, one ``(n_lanes, width)`` array per tick."""
        self.synaptic_current += charge_na

    def step(self, external_current_na: Optional[np.ndarray] = None
             ) -> np.ndarray:
        """Advance every lane one timestep; return the masked spike grid."""
        i_total = self.synaptic_current.copy()
        if external_current_na is not None:
            i_total = i_total + external_current_na

        v_infinity = self._v_rest + self._r_m * i_total
        new_v = v_infinity + (self.v - v_infinity) * self._alpha_m

        refractory = self.refractory_ticks_left > 0
        new_v = np.where(refractory, self._v_reset, new_v)
        self.refractory_ticks_left = np.maximum(
            self.refractory_ticks_left - 1, 0)

        spikes = new_v >= self._v_threshold
        spikes &= self.valid
        new_v = np.where(spikes, self._v_reset, new_v)
        self.refractory_ticks_left = np.where(
            spikes, self._refractory_ticks, self.refractory_ticks_left)

        self.v = new_v
        self.synaptic_current *= self._alpha_syn
        return spikes

    def lane_voltages(self, lane: int) -> np.ndarray:
        """The valid cells of one lane's membrane potentials."""
        return self.v[lane, :self.lane_sizes[lane]]
