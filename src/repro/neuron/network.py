"""Host-side reference network simulator.

This simulator executes a population/projection network directly on the
host, with the same 1 ms tick, the same deferred-event (soft-delay) buffers
and the same neuron update rules as the on-machine runtime
(:mod:`repro.runtime.application`).  It serves two purposes:

* it is the behavioural baseline the on-machine simulation is checked
  against (same network, same seed, same spike counts); and
* it is the fast vehicle for the purely neural experiments (retina coding,
  rank-order codes, soft-delay ablation) that do not need the machine
  model in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.neuron.population import (
    Population,
    Projection,
    SpikeSourceArray,
    SpikeSourcePoisson,
    expansion_rng,
    simulation_rng,
)
from repro.neuron.synapse import DeferredEventBuffer, MAX_DELAY_TICKS
from repro.profile import profile_stage

# The Fig. 7 timer-tick phases, hoisted so the loop re-enters the same
# stage objects (a disabled entry is one flag check).
_TICK_STAGE = profile_stage("tick")
_STIMULUS_STAGE = profile_stage("stimulus")
_NEURON_UPDATE_STAGE = profile_stage("neuron_update")
_RECORD_STAGE = profile_stage("record")
_PROPAGATE_STAGE = profile_stage("propagate")


def expand_projections(network: "Network", seed: Optional[int],
                       compile_csr: bool = False):
    """Expand every projection of ``network`` once under ``seed``.

    The single shared entry point to the connectivity-expansion artifact:
    the host reference simulator, the routing/synaptic mapping passes of
    :mod:`repro.compile` and the host system all go through here, so one
    seed has exactly one expansion (cached on the projections) however
    many layers consume it and in whatever order.

    Returns ``[(index, projection, rows, csr-or-None)]`` with projections
    in network order; ``compile_csr`` additionally compiles each
    expansion to its flat CSR form.
    """
    expanded = []
    for index, projection in enumerate(network.projections):
        rng = expansion_rng(seed, index)
        rows = projection.build_rows(rng, seed=seed)
        csr = (projection.compile_csr(rng, seed=seed)
               if compile_csr else None)
        expanded.append((index, projection, rows, csr))
    return expanded


@dataclass
class SimulationResult:
    """Recorded output of a network run.

    ``spikes`` maps a population label to a list of ``(time_ms, neuron)``
    pairs; ``voltages`` maps a label to an array of shape
    ``(n_ticks, n_neurons)``.
    """

    duration_ms: float
    timestep_ms: float
    spikes: Dict[str, List[Tuple[float, int]]] = field(default_factory=dict)
    voltages: Dict[str, np.ndarray] = field(default_factory=dict)
    spike_counts: Dict[str, np.ndarray] = field(default_factory=dict)

    def spike_times(self, label: str, neuron: int) -> List[float]:
        """Spike times (ms) of one neuron in one population."""
        return [t for t, n in self.spikes.get(label, []) if n == neuron]

    def total_spikes(self, label: Optional[str] = None) -> int:
        """Total spikes of one population, or of the whole network."""
        if label is not None:
            return int(self.spike_counts[label].sum())
        return int(sum(counts.sum() for counts in self.spike_counts.values()))

    def mean_rate_hz(self, label: str) -> float:
        """Mean firing rate of a population over the run."""
        counts = self.spike_counts[label]
        seconds = self.duration_ms / 1000.0
        if seconds <= 0:
            return 0.0
        return float(counts.mean() / seconds)


class Network:
    """A container of populations and projections plus the reference simulator."""

    def __init__(self, timestep_ms: float = 1.0,
                 seed: Optional[int] = None) -> None:
        if timestep_ms <= 0:
            raise ValueError("timestep must be positive")
        self.timestep_ms = timestep_ms
        self.seed = seed
        self.populations: List[Population] = []
        self.projections: List[Projection] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_population(self, population: Population) -> Population:
        """Add a population (or spike source) to the network."""
        if population in self.populations:
            return population
        if any(p.label == population.label for p in self.populations):
            raise ValueError("duplicate population label %r" % (population.label,))
        self.populations.append(population)
        return population

    def add_projection(self, projection: Projection) -> Projection:
        """Add a projection; its endpoints are added automatically."""
        for endpoint in (projection.pre, projection.post):
            if endpoint not in self.populations:
                self.add_population(endpoint)
        self.projections.append(projection)
        return projection

    def connect(self, pre: Population, post: Population,
                connector, label: Optional[str] = None,
                plasticity: Optional[object] = None) -> Projection:
        """Convenience wrapper: build and add a projection."""
        projection = Projection(pre=pre, post=post, connector=connector,
                                label=label, plasticity=plasticity)
        return self.add_projection(projection)

    def population(self, label: str) -> Population:
        """Look a population up by label."""
        for population in self.populations:
            if population.label == label:
                return population
        raise KeyError("no population labelled %r" % (label,))

    @property
    def n_neurons(self) -> int:
        """Total neurons (excluding spike sources)."""
        return sum(p.size for p in self.populations if not p.is_spike_source)

    def n_synapses(self, rng: Optional[np.random.Generator] = None) -> int:
        """Total synapses across all projections."""
        if rng is not None:
            return sum(projection.n_synapses(rng)
                       for projection in self.projections)
        return sum(projection.n_synapses(expansion_rng(self.seed, index),
                                         seed=self.seed)
                   for index, projection in enumerate(self.projections))

    # ------------------------------------------------------------------
    # Reference simulation
    # ------------------------------------------------------------------
    def run(self, duration_ms: float, seed: Optional[int] = None,
            propagation: str = "csr") -> SimulationResult:
        """Simulate the network on the host for ``duration_ms``.

        The loop mirrors the on-machine application model: each tick drains
        the deferred-event buffers into the neuron models, integrates the
        membrane equations, collects the spikes and pushes their synaptic
        consequences back into the buffers with the programmed delays.

        ``propagation`` selects the spike-propagation path: ``"csr"`` (the
        default) batch-scatters each projection's spikes through its
        compiled :class:`~repro.neuron.engine.CSRMatrix`, while
        ``"reference"`` walks the per-source ``Synapse`` object lists one
        event at a time.  Both paths perform the same floating-point
        operations in the same order, so a seeded network produces
        identical spike trains under either — ``"reference"`` exists as
        the equivalence baseline, not as a supported fast path.  (Sole
        caveat: a ring-buffer cell driven past the 16-bit saturation
        limit mid-tick by mixed-sign weights clamps per event on the
        reference path but per batch on the CSR path, so heavily
        saturating networks may diverge.)
        """
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        if propagation not in ("csr", "reference"):
            raise ValueError("propagation must be 'csr' or 'reference', "
                             "got %r" % (propagation,))
        effective_seed = self.seed if seed is None else seed
        rng = simulation_rng(effective_seed)
        n_ticks = int(round(duration_ms / self.timestep_ms))

        # Build per-population state, input buffers and recording stores.
        states: Dict[str, object] = {}
        buffers: Dict[str, DeferredEventBuffer] = {}
        result = SimulationResult(duration_ms=duration_ms,
                                  timestep_ms=self.timestep_ms)
        for population in self.populations:
            result.spike_counts[population.label] = np.zeros(population.size,
                                                             dtype=int)
            if population.record_spikes:
                result.spikes[population.label] = []
            if population.is_spike_source:
                continue
            states[population.label] = population.build_state(self.timestep_ms,
                                                              rng)
            buffers[population.label] = DeferredEventBuffer(
                population.size, MAX_DELAY_TICKS)
            if population.record_voltages:
                result.voltages[population.label] = np.zeros(
                    (n_ticks, population.size))

        # Expand every projection once (cached per seed); in CSR mode also
        # compile each expansion into its flat-array form.  The expansion
        # artifact is shared with the mapping compiler — see
        # :func:`expand_projections` — so results do not depend on
        # expansion order or on cache hits/misses.
        rows_by_projection = [
            (projection, rows, csr)
            for _index, projection, rows, csr in expand_projections(
                self, effective_seed, compile_csr=(propagation == "csr"))]

        for tick in range(n_ticks):
            with _TICK_STAGE:
                time_ms = tick * self.timestep_ms
                spikes_this_tick: Dict[str, np.ndarray] = {}

                # Stimulus populations generate their spikes first.
                with _STIMULUS_STAGE:
                    for population in self.populations:
                        if isinstance(population, SpikeSourcePoisson):
                            spikes_this_tick[population.label] = \
                                population.spikes_for_tick(
                                    self.timestep_ms, rng)
                        elif isinstance(population, SpikeSourceArray):
                            spikes_this_tick[population.label] = \
                                population.spikes_for_tick(
                                    tick, self.timestep_ms)

                # Neuron populations: drain deferred inputs and integrate.
                with _NEURON_UPDATE_STAGE:
                    for population in self.populations:
                        if population.is_spike_source:
                            continue
                        state = states[population.label]
                        inputs = buffers[population.label].drain()
                        state.inject_synaptic_input(inputs)
                        bias = None
                        if population.bias_current_na:
                            bias = np.full(population.size,
                                           population.bias_current_na)
                        spikes = state.step(bias)
                        spikes_this_tick[population.label] = spikes
                        if population.record_voltages:
                            result.voltages[population.label][tick] = state.v

                # Record and propagate the spikes.
                with _RECORD_STAGE:
                    for population in self.populations:
                        spikes = spikes_this_tick.get(population.label)
                        if spikes is None:
                            continue
                        spiking_neurons = np.flatnonzero(spikes)
                        if spiking_neurons.size == 0:
                            continue
                        result.spike_counts[population.label][
                            spiking_neurons] += 1
                        if population.record_spikes:
                            result.spikes[population.label].extend(
                                (time_ms, int(neuron))
                                for neuron in spiking_neurons)

                with _PROPAGATE_STAGE:
                    for projection, rows, csr in rows_by_projection:
                        pre_spikes = spikes_this_tick.get(
                            projection.pre.label)
                        if pre_spikes is None:
                            continue
                        target_buffer = buffers.get(projection.post.label)
                        if target_buffer is None:
                            continue
                        if csr is not None:
                            spiking = np.flatnonzero(pre_spikes)
                            if spiking.size:
                                csr.scatter(spiking, target_buffer)
                        else:
                            for neuron in np.flatnonzero(pre_spikes):
                                for synapse in rows.get(int(neuron), ()):
                                    target_buffer.add_synapse(synapse)
                        if projection.plasticity is not None:
                            post_spikes = spikes_this_tick.get(
                                projection.post.label)
                            if post_spikes is None:
                                post_spikes = np.zeros(projection.post.size,
                                                       dtype=bool)
                            if csr is not None:
                                projection.plasticity.update_csr(
                                    csr, pre_spikes, post_spikes, time_ms)
                            else:
                                projection.plasticity.update(
                                    rows, pre_spikes, post_spikes, time_ms)

        # Commit plasticity-modified CSR weights back into the cached rows
        # so the object view (mapping layer, post-run inspection) agrees —
        # the host-side analogue of the SDRAM write-back DMA (Section 5.3).
        # A reference-mode run mutates the rows directly instead, so any
        # previously compiled CSR for this seed is now stale.
        for projection, rows, csr in rows_by_projection:
            if projection.plasticity is None:
                continue
            if csr is not None:
                csr.write_back(rows)
            else:
                projection.invalidate_csr(seed=effective_seed)

        return result
