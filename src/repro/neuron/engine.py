"""Vectorized CSR spike-propagation engine.

The deferred-event ("soft delay") model is "one of the most expensive
functions of the neuron models" (Sections 3.2 and 5.3 of the paper), and
the original reference simulator paid for it twice over: every projection
was expanded into per-source lists of :class:`~repro.neuron.synapse.Synapse`
objects, and every spike walked its list one Python object at a time.

This module compiles a projection's expanded rows once into a
compressed-sparse-row (CSR) matrix — four flat NumPy arrays:

* ``row_ptr``  — ``n_pre + 1`` offsets; row ``i`` occupies synapse slots
  ``row_ptr[i]:row_ptr[i + 1]``;
* ``targets``  — post-synaptic neuron index per synapse;
* ``weights``  — synaptic efficacy (nA) per synapse;
* ``delay_ticks`` — programmable soft delay per synapse.

All spikes of a tick are then scattered into the
:class:`~repro.neuron.synapse.DeferredEventBuffer` ring with one
``np.add.at`` per projection instead of a per-synapse Python loop, and the
same arrays drive the vectorized STDP update
(:meth:`repro.neuron.stdp.STDPMechanism.update_csr`) and the packed-word
SDRAM blocks written by the mapping layer.  The scatter performs the same
floating-point additions in the same order as the object-based loop, so
the two propagation paths produce identical spike trains for a seeded
network (see ``tests/test_neuron_engine.py``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.neuron.synapse import (
    DELAY_BITS,
    INDEX_BITS,
    MAX_DELAY_TICKS,
    WEIGHT_BITS,
    WEIGHT_FIXED_POINT,
    DeferredEventBuffer,
    Synapse,
)

_SIGN_BIT = 1 << (WEIGHT_BITS - 1)
_WEIGHT_MAGNITUDE_MASK = _SIGN_BIT - 1
_INDEX_MASK = (1 << INDEX_BITS) - 1
_DELAY_MASK = (1 << DELAY_BITS) - 1


# ----------------------------------------------------------------------
# Vectorized packed-word codec (bit-compatible with Synapse.pack/unpack)
# ----------------------------------------------------------------------
def pack_synapse_words(targets: np.ndarray, weights: np.ndarray,
                       delay_ticks: np.ndarray) -> np.ndarray:
    """Pack aligned synapse arrays into 32-bit SDRAM synaptic words.

    Bit-for-bit identical to calling :meth:`Synapse.pack` on every synapse
    (both round half-to-even when quantising the weight).
    """
    targets = np.asarray(targets, dtype=np.int64)
    delay_ticks = np.asarray(delay_ticks, dtype=np.int64)
    weights = np.asarray(weights, dtype=float)
    if targets.size and (targets.min() < 0
                         or targets.max() >= (1 << INDEX_BITS)):
        raise ValueError("target indices must fit in %d bits and be "
                         "non-negative" % (INDEX_BITS,))
    if delay_ticks.size and (delay_ticks.min() < 1
                             or delay_ticks.max() > (1 << DELAY_BITS)):
        raise ValueError("delays must lie in 1..%d ticks to fit the %d-bit "
                         "field" % (1 << DELAY_BITS, DELAY_BITS))
    magnitude = np.rint(np.abs(weights) * WEIGHT_FIXED_POINT).astype(np.int64)
    magnitude = np.minimum(magnitude, _WEIGHT_MAGNITUDE_MASK)
    weight_field = np.where(weights < 0, magnitude | _SIGN_BIT, magnitude)
    words = ((weight_field << (DELAY_BITS + INDEX_BITS)) |
             ((delay_ticks - 1) << INDEX_BITS) | targets)
    return words.astype(np.uint32)


def unpack_synapse_words(words: np.ndarray) -> Tuple[np.ndarray, np.ndarray,
                                                     np.ndarray]:
    """Unpack 32-bit synaptic words into ``(targets, weights, delay_ticks)``.

    The inverse of :func:`pack_synapse_words`, matching
    :meth:`Synapse.unpack` exactly.
    """
    words = np.asarray(words, dtype=np.uint32).astype(np.int64)
    targets = (words & _INDEX_MASK).astype(np.int64)
    delay_ticks = (((words >> INDEX_BITS) & _DELAY_MASK) + 1).astype(np.int64)
    weight_field = words >> (DELAY_BITS + INDEX_BITS)
    magnitude = (weight_field & _WEIGHT_MAGNITUDE_MASK) / WEIGHT_FIXED_POINT
    weights = np.where(weight_field & _SIGN_BIT, -magnitude, magnitude)
    return targets, weights, delay_ticks


def decode_packed_row(words: Sequence[int]) -> Tuple[int, np.ndarray,
                                                     np.ndarray, np.ndarray]:
    """Decode one packed SDRAM row (count header + synapse words).

    Returns ``(count, targets, weights, delay_ticks)``; the fast-path
    replacement for ``SynapticRow.unpack`` used by the on-machine
    DMA-complete handler, with the same validation.
    """
    if len(words) == 0:
        raise ValueError("a packed synaptic row has at least a header word")
    count = int(words[0])
    if count > len(words) - 1:
        raise ValueError("row header claims %d synapses but only %d words follow"
                         % (count, len(words) - 1))
    targets, weights, delay_ticks = unpack_synapse_words(
        np.asarray(words[1:count + 1], dtype=np.uint32))
    return count, targets, weights, delay_ticks


class CSRMatrix:
    """A projection's synapses compiled into flat CSR arrays."""

    __slots__ = ("n_pre", "n_post", "row_ptr", "targets", "weights",
                 "delay_ticks", "pre_index")

    def __init__(self, n_pre: int, n_post: int, row_ptr: np.ndarray,
                 targets: np.ndarray, weights: np.ndarray,
                 delay_ticks: np.ndarray) -> None:
        if n_pre <= 0 or n_post <= 0:
            raise ValueError("population sizes must be positive")
        self.n_pre = n_pre
        self.n_post = n_post
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=float)
        self.delay_ticks = np.asarray(delay_ticks, dtype=np.int64)
        if self.row_ptr.shape != (n_pre + 1,):
            raise ValueError("row_ptr must have n_pre + 1 entries")
        if not (self.targets.shape == self.weights.shape
                == self.delay_ticks.shape):
            raise ValueError("targets, weights and delay_ticks must align")
        if self.targets.size:
            if self.targets.min() < 0 or self.targets.max() >= n_post:
                raise ValueError("synapse target outside the post population")
            if (self.delay_ticks.min() < 1
                    or self.delay_ticks.max() > MAX_DELAY_TICKS):
                raise ValueError("synapse delays must lie in 1..%d ticks"
                                 % (MAX_DELAY_TICKS,))
        #: Source neuron of every synapse slot (the row each slot belongs to).
        self.pre_index = np.repeat(np.arange(n_pre, dtype=np.int64),
                                   np.diff(self.row_ptr))

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Dict[int, List[Synapse]], n_pre: int,
                  n_post: int) -> "CSRMatrix":
        """Compile per-source :class:`Synapse` lists into CSR arrays."""
        counts = np.zeros(n_pre + 1, dtype=np.int64)
        for pre, synapses in rows.items():
            if not 0 <= pre < n_pre:
                raise IndexError("row key %d outside population of %d"
                                 % (pre, n_pre))
            counts[pre + 1] = len(synapses)
        row_ptr = np.cumsum(counts)
        total = int(row_ptr[-1])
        ordered = (s for pre in range(n_pre) for s in rows.get(pre, ()))
        flat = list(ordered)
        targets = np.fromiter((s.target for s in flat), dtype=np.int64,
                              count=total)
        weights = np.fromiter((s.weight for s in flat), dtype=float,
                              count=total)
        delays = np.fromiter((s.delay_ticks for s in flat), dtype=np.int64,
                             count=total)
        return cls(n_pre, n_post, row_ptr, targets, weights, delays)

    def to_rows(self) -> Dict[int, List[Synapse]]:
        """Expand back into per-source synapse lists (rows may be empty)."""
        rows: Dict[int, List[Synapse]] = {}
        for pre in range(self.n_pre):
            lo, hi = int(self.row_ptr[pre]), int(self.row_ptr[pre + 1])
            rows[pre] = [Synapse(int(self.targets[i]), float(self.weights[i]),
                                 int(self.delay_ticks[i]))
                         for i in range(lo, hi)]
        return rows

    def write_back(self, rows: Dict[int, List[Synapse]]) -> None:
        """Sync (possibly plasticity-modified) weights into a rows dict.

        ``rows`` must be the expansion this matrix was compiled from; the
        on-machine analogue is the write-back DMA that commits modified
        connectivity data to SDRAM (Section 5.3).
        """
        for pre, row in rows.items():
            lo = int(self.row_ptr[pre])
            for offset, synapse in enumerate(row):
                weight = float(self.weights[lo + offset])
                if weight != synapse.weight:
                    row[offset] = Synapse(synapse.target, weight,
                                          synapse.delay_ticks)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_synapses(self) -> int:
        """Total synapses in the matrix."""
        return int(self.targets.size)

    def max_delay(self) -> int:
        """Largest programmable delay used (0 for an empty matrix)."""
        if self.delay_ticks.size == 0:
            return 0
        return int(self.delay_ticks.max())

    def row_lengths(self) -> np.ndarray:
        """Synapse count of every source row."""
        return np.diff(self.row_ptr)

    def synapse_slots(self, pre_indices: np.ndarray) -> np.ndarray:
        """Flat synapse-array indices of all synapses of the given rows.

        Rows are expanded in the order given (ascending when the caller
        passes ``np.flatnonzero`` of a spike mask), with each row's
        synapses kept in storage order — the exact order the object-based
        reference loop visits them.
        """
        pre_indices = np.asarray(pre_indices, dtype=np.int64)
        if pre_indices.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.row_ptr[pre_indices]
        counts = self.row_ptr[pre_indices + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        offsets = np.cumsum(counts) - counts
        return (np.arange(total, dtype=np.int64)
                - np.repeat(offsets, counts) + np.repeat(starts, counts))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def scatter(self, pre_indices: np.ndarray,
                buffer: DeferredEventBuffer) -> int:
        """Batch-defer every synaptic event of the spiking source neurons.

        Returns the number of synaptic events scattered.
        """
        slots = self.synapse_slots(pre_indices)
        if slots.size:
            buffer.add_events(self.targets[slots], self.weights[slots],
                              self.delay_ticks[slots])
        return int(slots.size)

    # ------------------------------------------------------------------
    # Mapping-layer views and the packed SDRAM format
    # ------------------------------------------------------------------
    def submatrix(self, pre_start: int, pre_stop: int, post_start: int,
                  post_stop: int) -> "CSRMatrix":
        """Restrict to a (source-slice, target-slice) block.

        Source rows are renumbered from ``pre_start`` and target indices
        are rewritten into the target slice's local numbering — the view a
        destination core's synaptic-matrix block needs.
        """
        n_pre = pre_stop - pre_start
        n_post = post_stop - post_start
        lo, hi = int(self.row_ptr[pre_start]), int(self.row_ptr[pre_stop])
        targets = self.targets[lo:hi]
        keep = (targets >= post_start) & (targets < post_stop)
        counts = np.zeros(n_pre + 1, dtype=np.int64)
        if keep.any():
            kept_rows = self.pre_index[lo:hi][keep] - pre_start
            np.add.at(counts, kept_rows + 1, 1)
        row_ptr = np.cumsum(counts)
        return CSRMatrix(n_pre, n_post, row_ptr,
                         targets[keep] - post_start,
                         self.weights[lo:hi][keep],
                         self.delay_ticks[lo:hi][keep])

    def pack_rows(self) -> List[List[int]]:
        """Pack every row for SDRAM: ``[count, word, word, ...]`` per row.

        Row ``i`` of the result equals ``SynapticRow(i, rows[i]).pack()``.
        """
        words = pack_synapse_words(self.targets, self.weights,
                                   self.delay_ticks)
        packed: List[List[int]] = []
        for pre in range(self.n_pre):
            lo, hi = int(self.row_ptr[pre]), int(self.row_ptr[pre + 1])
            packed.append([hi - lo] + [int(w) for w in words[lo:hi]])
        return packed

    @classmethod
    def from_packed_rows(cls, packed: Sequence[Sequence[int]],
                         n_post: int) -> "CSRMatrix":
        """Rebuild a matrix from per-row packed SDRAM words (with padding)."""
        counts = np.zeros(len(packed) + 1, dtype=np.int64)
        targets_parts, weights_parts, delays_parts = [], [], []
        for pre, words in enumerate(packed):
            count, targets, weights, delays = decode_packed_row(words)
            counts[pre + 1] = count
            targets_parts.append(targets)
            weights_parts.append(weights)
            delays_parts.append(delays)
        row_ptr = np.cumsum(counts)
        empty = np.empty(0, dtype=np.int64)
        return cls(len(packed), n_post, row_ptr,
                   np.concatenate(targets_parts) if targets_parts else empty,
                   np.concatenate(weights_parts) if weights_parts else empty,
                   np.concatenate(delays_parts) if delays_parts else empty)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "CSRMatrix(%d pre, %d post, %d synapses)" % (
            self.n_pre, self.n_post, self.n_synapses)
