"""Populations, spike sources and projections (the network-description API).

The user-facing model-description layer is deliberately PyNN-flavoured —
the paper's stated goal is a machine "ready for use by neuroscientists and
psychologists who do not wish to have to contend with concurrency issues at
any level below the neurological model" (Section 6).  A network is a set of
:class:`Population` objects (neuron groups or spike sources) joined by
:class:`Projection` objects (a connector plus synapse parameters); the
mapping layer then places it on the machine and the runtime executes it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.neuron.connectors import Connector
from repro.neuron.engine import CSRMatrix
from repro.neuron.izhikevich import IzhikevichParameters, IzhikevichPopulation
from repro.neuron.lif import LIFParameters, LIFPopulation
from repro.neuron.synapse import Synapse, SynapticRow

_population_counter = itertools.count()

#: Sentinel ``seed`` value for :meth:`Projection.build_rows`: reuse the most
#: recently built expansion whatever seed produced it (the legacy behaviour
#: of the unkeyed cache), building an unseeded one if none exists yet.
LATEST_EXPANSION = object()

#: Stream-split constant mixed into the connectivity-expansion generator so
#: its draws are statistically independent of the simulation generator
#: seeded with the same value.
_EXPANSION_STREAM = 0x5EED

#: Stream-split constant for the per-core generators of the on-machine
#: runtime (neuron-state initialisation, Poisson stimulus draws, timer
#: stagger), keeping them independent of both the expansion stream and
#: the host simulator's ``default_rng(seed)``.
_CORE_STREAM = 0xC04E


def core_rng(seed: Optional[int], chip_x: int, chip_y: int, core_id: int,
             stream: int = 0) -> np.random.Generator:
    """The generator of the application core at ``(chip_x, chip_y, core_id)``.

    Derived purely from the seed and the core's physical location (the
    same seed-sequence mechanism as :func:`expansion_rng`), so per-core
    randomness does not depend on the order in which the mapping layer
    happens to iterate over placements — any two tool-chains that put a
    vertex on the same core give it the same stream.  ``stream``
    separates independent uses at one core (0 = neuron state / stimulus,
    1 = timer stagger).
    """
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng(
        [_CORE_STREAM, stream, chip_x, chip_y, core_id, seed])


def simulation_rng(seed: Optional[int]) -> np.random.Generator:
    """The host-side simulation/workload stream for ``seed``.

    Exactly ``np.random.default_rng(seed)`` — the stream that drives
    membrane initialisation, stimulus draws and host-side workloads,
    decorrelated from :func:`expansion_rng` and :func:`core_rng` by
    their stream-split constants.  The third sanctioned seam: shipped
    code constructs generators only here (``repro.checks`` enforces
    it), so every stream stays pinned to the run's seed and audits of
    "where does randomness enter?" have one module to read.  Passing
    ``None`` explicitly opts out of determinism, exactly like the other
    seams.
    """
    return np.random.default_rng(seed)


def expansion_rng(seed: Optional[int],
                  projection_index: int = 0) -> np.random.Generator:
    """The generator every layer uses to expand connectivity for ``seed``.

    Each projection gets its own stream, keyed by its position in the
    network's projection list, so a network expanded anywhere — host
    simulator, synaptic-matrix builder, routing generator, in any order —
    yields the same synapses for the same seed, while staying
    decorrelated from the simulation stream (``default_rng(seed)``) that
    drives membrane initialisation and Poisson stimuli.
    """
    if seed is None:
        return np.random.default_rng()
    return np.random.default_rng([_EXPANSION_STREAM, projection_index, seed])


class Population:
    """A homogeneous group of neurons described by one model and parameter set.

    Parameters
    ----------
    size:
        Number of neurons.
    model:
        ``"lif"`` or ``"izhikevich"``, or an explicit parameters object
        (:class:`LIFParameters` / :class:`IzhikevichParameters`).
    label:
        Optional human-readable name; an automatic one is generated when
        omitted.
    """

    def __init__(self, size: int,
                 model: Union[str, LIFParameters, IzhikevichParameters] = "lif",
                 label: Optional[str] = None) -> None:
        if size <= 0:
            raise ValueError("population size must be positive")
        self.size = size
        self.label = label or "population-%d" % next(_population_counter)
        if isinstance(model, str):
            if model == "lif":
                self.model_name = "lif"
                self.parameters: Union[LIFParameters, IzhikevichParameters] = LIFParameters()
            elif model == "izhikevich":
                self.model_name = "izhikevich"
                self.parameters = IzhikevichParameters()
            else:
                raise ValueError("unknown neuron model %r" % (model,))
        elif isinstance(model, LIFParameters):
            self.model_name = "lif"
            self.parameters = model
        elif isinstance(model, IzhikevichParameters):
            self.model_name = "izhikevich"
            self.parameters = model
        else:
            raise TypeError("model must be a name or a parameters object")
        self.record_spikes = False
        self.record_voltages = False
        #: External bias current per neuron (nA), applied every tick.
        self.bias_current_na = 0.0

    # ------------------------------------------------------------------
    def record(self, spikes: bool = True, voltages: bool = False) -> None:
        """Request recording of spikes and/or membrane voltages."""
        self.record_spikes = spikes
        self.record_voltages = voltages

    def build_state(self, timestep_ms: float,
                    rng: np.random.Generator) -> Union[LIFPopulation,
                                                       IzhikevichPopulation]:
        """Instantiate the simulation state for this population."""
        if self.model_name == "lif":
            state = LIFPopulation(self.size, self.parameters, timestep_ms, rng)
        else:
            state = IzhikevichPopulation(self.size, self.parameters,
                                         timestep_ms, rng)
        return state

    @property
    def is_spike_source(self) -> bool:
        """True for stimulus populations that generate rather than integrate."""
        return False

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Population(%r, size=%d, model=%s)" % (self.label, self.size,
                                                      self.model_name)


class SpikeSourcePoisson(Population):
    """A stimulus population emitting independent Poisson spike trains."""

    def __init__(self, size: int, rate_hz: float,
                 label: Optional[str] = None) -> None:
        if rate_hz < 0:
            raise ValueError("rate must be non-negative")
        super().__init__(size, model="lif", label=label)
        self.model_name = "poisson-source"
        self.rate_hz = rate_hz

    @property
    def is_spike_source(self) -> bool:
        return True

    @staticmethod
    def spike_probability(rate_hz: float, timestep_ms: float) -> float:
        """Probability of at least one spike in one tick of a Poisson train.

        ``1 - exp(-rate * dt)`` rather than the naive ``rate * dt``, which
        is not a probability for rates above ``1 / dt`` (1 kHz at the 1 ms
        tick) and overestimates the rate well below that.
        """
        return float(-np.expm1(-rate_hz * timestep_ms / 1000.0))

    def spikes_for_tick(self, timestep_ms: float,
                        rng: np.random.Generator) -> np.ndarray:
        """Sample this tick's spike mask."""
        probability = self.spike_probability(self.rate_hz, timestep_ms)
        return rng.random(self.size) < probability


class SpikeSourceArray(Population):
    """A stimulus population replaying explicit spike times (ms) per neuron."""

    def __init__(self, spike_times_ms: Sequence[Sequence[float]],
                 label: Optional[str] = None) -> None:
        super().__init__(len(spike_times_ms), model="lif", label=label)
        self.model_name = "array-source"
        self.spike_times_ms = [sorted(times) for times in spike_times_ms]

    @property
    def is_spike_source(self) -> bool:
        return True

    def spikes_for_tick(self, tick: int, timestep_ms: float) -> np.ndarray:
        """Spike mask for the tick covering ``[tick*dt, (tick+1)*dt)``."""
        start = tick * timestep_ms
        end = start + timestep_ms
        mask = np.zeros(self.size, dtype=bool)
        for neuron, times in enumerate(self.spike_times_ms):
            for t in times:
                if start <= t < end:
                    mask[neuron] = True
                    break
        return mask


@dataclass
class Projection:
    """A bundle of synapses from one population to another.

    The connector is expanded lazily (per simulation / per mapping) so the
    same network description can be instantiated with different seeds.
    Expansions are cached **per seed**: running the same network with
    ``seed=A`` and then ``seed=B`` builds two independent connectivities
    instead of silently reusing the first seed's synapses (the old unkeyed
    cache poisoned every cross-seed comparison).
    """

    pre: Population
    post: Population
    connector: Connector
    label: Optional[str] = None
    #: Optional plasticity mechanism (see :mod:`repro.neuron.stdp`).
    plasticity: Optional[object] = None
    #: Per-seed expansion cache; the compiled CSR form is cached alongside.
    _rows_cache: Dict[object, Dict[int, List[Synapse]]] = field(
        default_factory=dict, repr=False, compare=False)
    _csr_cache: Dict[object, tuple] = field(
        default_factory=dict, repr=False, compare=False)
    _latest_key: object = field(default=None, repr=False, compare=False)

    def build_rows(self, rng: np.random.Generator, refresh: bool = False,
                   seed: object = LATEST_EXPANSION) -> Dict[int, List[Synapse]]:
        """Expand the connector into per-source synapse lists (cached per seed).

        ``seed`` is the cache key.  Callers passing a real seed MUST derive
        ``rng`` from :func:`expansion_rng` with that seed and this
        projection's index in its network — the cache trusts the pairing,
        and a mismatched generator would register wrong connectivity for
        every later consumer of that seed.  Passing
        :data:`LATEST_EXPANSION` (the default) returns the most recent
        expansion regardless of its seed — the legacy behaviour callers
        without a seed in hand rely on — or builds an unseeded expansion
        when nothing is cached yet.
        """
        key = seed
        if key is LATEST_EXPANSION:
            if self._rows_cache and not refresh:
                return self._rows_cache[self._latest_key]
            # A refresh without a seed is an explicitly unseeded rebuild;
            # it must not overwrite a seed-keyed entry with connectivity
            # drawn from an arbitrary generator.
            key = None
        if refresh or key not in self._rows_cache:
            self._rows_cache[key] = self.connector.build(self.pre.size,
                                                         self.post.size, rng)
            self._csr_cache.pop(key, None)
        self._latest_key = key
        return self._rows_cache[key]

    def compile_csr(self, rng: np.random.Generator,
                    seed: object = LATEST_EXPANSION) -> CSRMatrix:
        """Compile the (cached) expansion into its CSR form, once per seed.

        The returned matrix shares the cache entry's lifetime: plasticity
        mutates its weight array in place, and the caller is expected to
        :meth:`CSRMatrix.write_back` into the rows so both views agree.
        """
        rows = self.build_rows(rng, seed=seed)
        key = self._latest_key
        cached = self._csr_cache.get(key)
        if cached is None or cached[0] is not rows:
            cached = (rows, CSRMatrix.from_rows(rows, self.pre.size,
                                                self.post.size))
            self._csr_cache[key] = cached
        return cached[1]

    def invalidate_csr(self, seed: object = LATEST_EXPANSION) -> None:
        """Drop the compiled CSR for a seed after its rows were mutated.

        Callers that modify the ``Synapse`` objects of an expansion in
        place (the object-based STDP path) must invalidate, or a later
        :meth:`compile_csr` would hand back pre-mutation weights.
        """
        key = self._latest_key if seed is LATEST_EXPANSION else seed
        self._csr_cache.pop(key, None)

    def synaptic_rows(self, rng: np.random.Generator,
                      seed: object = LATEST_EXPANSION) -> Dict[int, SynapticRow]:
        """Expand into :class:`SynapticRow` objects keyed by source index."""
        rows = self.build_rows(rng, seed=seed)
        return {pre: SynapticRow(pre, synapses)
                for pre, synapses in rows.items()}

    def n_synapses(self, rng: np.random.Generator,
                   seed: object = LATEST_EXPANSION) -> int:
        """Total number of synapses in the projection."""
        return sum(len(synapses)
                   for synapses in self.build_rows(rng, seed=seed).values())

    def max_delay(self, rng: np.random.Generator,
                  seed: object = LATEST_EXPANSION) -> int:
        """Largest programmable delay used by the projection."""
        rows = self.build_rows(rng, seed=seed)
        return max((s.delay_ticks for synapses in rows.values()
                    for s in synapses), default=0)
