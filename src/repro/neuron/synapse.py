"""Synapses, synaptic rows and the deferred-event ("soft delay") model.

Section 3.2 of the paper: electronic communication is effectively
instantaneous on biological timescales, but biological axonal/synaptic
delays "are almost certainly functional, so they can't simply be eliminated
in the model.  Instead, they are made 'soft'.  Each synapse has a
programmable delay associated with its input, which is re-inserted
algorithmically at the target neuron."  The paper also notes this is "one
of the most expensive functions of the neuron models in terms of the cost
of data storage held locally".

This module provides:

* :class:`Synapse` — one connection: target neuron, weight, programmable
  delay in timesteps;
* :class:`SynapticRow` — all the synapses sourced from one pre-synaptic
  neuron, which is exactly the block of data fetched from SDRAM by DMA
  when that neuron's spike packet arrives (Section 5.3);
* :class:`DeferredEventBuffer` — the circular post-synaptic input buffer
  indexed by ``(arrival_tick mod max_delay)`` that implements the
  algorithmic re-insertion of the delay at the target neuron.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

#: Number of delay slots supported by the deferred-event buffer.  The
#: SpiNNaker synaptic-word format reserves 4 bits for the delay, giving a
#: maximum programmable delay of 16 timesteps (16 ms at the 1 ms tick).
MAX_DELAY_TICKS = 16
#: Bit widths of the packed synaptic word (weight, delay, target index).
WEIGHT_BITS = 16
DELAY_BITS = 4
INDEX_BITS = 12
#: Fixed-point scaling of the 16-bit weight field.
WEIGHT_FIXED_POINT = 1 << 4
#: Largest charge magnitude (nA) representable in the 16-bit fixed-point
#: weight format (paper Section 5.3).  The deferred-event ring buffer
#: accumulates in the same format on the real machine, so accumulated
#: charge saturates — it cannot wrap — at this value.
WEIGHT_SATURATION_NA = ((1 << (WEIGHT_BITS - 1)) - 1) / WEIGHT_FIXED_POINT


@dataclass(frozen=True)
class Synapse:
    """One synaptic connection from an implicit source neuron.

    Attributes
    ----------
    target:
        Index of the post-synaptic neuron within its population/core.
    weight:
        Synaptic efficacy (nA of charge delivered per pre-synaptic spike;
        negative for inhibitory synapses).
    delay_ticks:
        Programmable delay in whole timesteps (1..MAX_DELAY_TICKS).
    """

    target: int
    weight: float
    delay_ticks: int = 1

    def __post_init__(self) -> None:
        if self.target < 0:
            raise ValueError("synapse target index must be non-negative")
        if not 1 <= self.delay_ticks <= MAX_DELAY_TICKS:
            raise ValueError("delay must be in 1..%d ticks, got %d"
                             % (MAX_DELAY_TICKS, self.delay_ticks))

    # ------------------------------------------------------------------
    # The packed SDRAM word format (Section 5.3's "connectivity data")
    # ------------------------------------------------------------------
    def pack(self) -> int:
        """Pack the synapse into the 32-bit SDRAM synaptic word."""
        if self.target >= (1 << INDEX_BITS):
            raise ValueError("target index %d does not fit in %d bits"
                             % (self.target, INDEX_BITS))
        weight_fixed = int(round(abs(self.weight) * WEIGHT_FIXED_POINT))
        weight_fixed = min(weight_fixed, (1 << (WEIGHT_BITS - 1)) - 1)
        if self.weight < 0:
            weight_fixed |= 1 << (WEIGHT_BITS - 1)
        return ((weight_fixed << (DELAY_BITS + INDEX_BITS)) |
                ((self.delay_ticks - 1) << INDEX_BITS) |
                self.target)

    @classmethod
    def unpack(cls, word: int) -> "Synapse":
        """Reconstruct a synapse from its packed 32-bit word."""
        target = word & ((1 << INDEX_BITS) - 1)
        delay = ((word >> INDEX_BITS) & ((1 << DELAY_BITS) - 1)) + 1
        weight_field = word >> (DELAY_BITS + INDEX_BITS)
        magnitude = (weight_field & ((1 << (WEIGHT_BITS - 1)) - 1)) / WEIGHT_FIXED_POINT
        sign = -1.0 if weight_field & (1 << (WEIGHT_BITS - 1)) else 1.0
        return cls(target=target, weight=sign * magnitude, delay_ticks=delay)


class SynapticRow:
    """All synapses sourced from one pre-synaptic neuron.

    A row is the unit of DMA transfer: when the spike packet of the source
    neuron arrives at a core, the core fetches that neuron's row from SDRAM
    into local memory and applies every synapse in it.
    """

    def __init__(self, source_key: int,
                 synapses: Iterable[Synapse] = ()) -> None:
        self.source_key = source_key
        self.synapses: List[Synapse] = list(synapses)

    def add(self, synapse: Synapse) -> None:
        """Append one synapse to the row."""
        self.synapses.append(synapse)

    def __len__(self) -> int:
        return len(self.synapses)

    def __iter__(self):
        return iter(self.synapses)

    @property
    def n_words(self) -> int:
        """Size of the row in 32-bit SDRAM words (header word + synapses)."""
        return 1 + len(self.synapses)

    def pack(self) -> List[int]:
        """Pack the row for SDRAM: a count header followed by synapse words."""
        return [len(self.synapses)] + [s.pack() for s in self.synapses]

    @classmethod
    def unpack(cls, source_key: int, words: Sequence[int]) -> "SynapticRow":
        """Rebuild a row from its packed SDRAM representation."""
        if not words:
            raise ValueError("a packed synaptic row has at least a header word")
        count = words[0]
        if count > len(words) - 1:
            raise ValueError("row header claims %d synapses but only %d words follow"
                             % (count, len(words) - 1))
        return cls(source_key,
                   (Synapse.unpack(word) for word in words[1:count + 1]))

    def total_charge(self) -> float:
        """Sum of synaptic weights (the charge one spike ultimately delivers)."""
        return sum(s.weight for s in self.synapses)

    def max_delay(self) -> int:
        """Largest programmable delay in the row (0 for an empty row)."""
        return max((s.delay_ticks for s in self.synapses), default=0)


class DeferredEventBuffer:
    """The post-synaptic input ring buffer (the deferred-event model).

    The buffer holds one row per future timestep (up to ``max_delay``
    ticks ahead) and one column per neuron on the core.  When a synaptic
    row is processed at tick ``t``, each synapse's weight is accumulated
    into slot ``(t + delay) mod (max_delay + 1)``; at the start of each
    timer tick the current slot is drained into the neuron model and
    cleared.  This is how the programmable delay is "re-inserted
    algorithmically at the target neuron" (Section 3.2).
    """

    def __init__(self, n_neurons: int,
                 max_delay_ticks: int = MAX_DELAY_TICKS) -> None:
        if n_neurons <= 0:
            raise ValueError("n_neurons must be positive")
        if max_delay_ticks < 1:
            raise ValueError("max_delay_ticks must be at least 1")
        self.n_neurons = n_neurons
        self.max_delay_ticks = max_delay_ticks
        self.n_slots = max_delay_ticks + 1
        self._buffer = np.zeros((self.n_slots, n_neurons), dtype=float)
        self._current_tick = 0
        self.events_deferred = 0
        self.saturations = 0

    @property
    def current_tick(self) -> int:
        """The tick whose inputs will be drained next."""
        return self._current_tick

    def add_synapse(self, synapse: Synapse) -> None:
        """Defer one synaptic event by its programmable delay."""
        self.add_input(synapse.target, synapse.weight, synapse.delay_ticks)

    def add_input(self, target: int, weight: float, delay_ticks: int) -> None:
        """Accumulate ``weight`` for ``target`` to arrive ``delay_ticks`` ahead."""
        if not 0 <= target < self.n_neurons:
            raise IndexError("target %d outside population of %d neurons"
                             % (target, self.n_neurons))
        if not 1 <= delay_ticks <= self.max_delay_ticks:
            raise ValueError("delay %d outside 1..%d" % (delay_ticks,
                                                         self.max_delay_ticks))
        slot = (self._current_tick + delay_ticks) % self.n_slots
        accumulated = self._buffer[slot, target] + weight
        if accumulated > WEIGHT_SATURATION_NA:
            accumulated = WEIGHT_SATURATION_NA
            self.saturations += 1
        elif accumulated < -WEIGHT_SATURATION_NA:
            accumulated = -WEIGHT_SATURATION_NA
            self.saturations += 1
        self._buffer[slot, target] = accumulated
        self.events_deferred += 1

    def add_events(self, targets: np.ndarray, weights: np.ndarray,
                   delay_ticks: np.ndarray) -> None:
        """Defer a whole batch of synaptic events in one vectorized scatter.

        This is the fast path used by the CSR propagation engine
        (:mod:`repro.neuron.engine`): all three arrays are aligned
        per-event, and the accumulation into the ring is performed with
        ``np.add.at`` so repeated ``(slot, target)`` pairs sum in element
        order — exactly the order the scalar :meth:`add_input` loop would
        use.  Saturation is clamped once per touched buffer cell after
        each call (the scalar path clamps after every event), so the two
        paths agree exactly whenever the accumulated charge stays inside
        the 16-bit weight range; a cell that saturates mid-batch from
        mixed-sign weights may land differently.
        """
        targets = np.asarray(targets, dtype=np.intp)
        delay_ticks = np.asarray(delay_ticks, dtype=np.intp)
        weights = np.asarray(weights, dtype=float)
        if targets.size == 0:
            return
        # Validate the whole batch up front so an invalid event can never
        # leave the buffer partially mutated.
        if targets.min() < 0 or targets.max() >= self.n_neurons:
            raise IndexError("event targets outside population of %d neurons"
                             % (self.n_neurons,))
        if delay_ticks.min() < 1 or delay_ticks.max() > self.max_delay_ticks:
            raise ValueError("event delays outside 1..%d"
                             % (self.max_delay_ticks,))
        self._scatter(targets, weights, delay_ticks)

    def add_events_aged(self, targets: np.ndarray, weights: np.ndarray,
                        delay_ticks: np.ndarray, age: int) -> None:
        """Defer events whose *send* tick lies ``age`` ticks in the past.

        The conservative-lookahead cluster exchange applies cross-board
        batches at super-step barriers instead of every tick, so a batch
        sent at tick ``t`` may only reach its destination ring when the
        buffer has already advanced to tick ``t + 1 + age``.  The event's
        programmable delay is re-based onto the buffer's current tick:
        an effective delay of ``delay - age``, where ``0`` is legal and
        means the event drains *this* tick (it arrived exactly at the
        barrier).  Lookahead never exceeds ``1 + d_min`` ticks, so the
        effective delay of a correctly exchanged batch is never
        negative; a negative value here means the caller violated the
        lookahead bound and is rejected before any mutation.
        """
        if age < 0:
            raise ValueError("age must be non-negative, got %d" % (age,))
        if age == 0:
            self.add_events(targets, weights, delay_ticks)
            return
        targets = np.asarray(targets, dtype=np.intp)
        delay_ticks = np.asarray(delay_ticks, dtype=np.intp)
        weights = np.asarray(weights, dtype=float)
        if targets.size == 0:
            return
        if targets.min() < 0 or targets.max() >= self.n_neurons:
            raise IndexError("event targets outside population of %d neurons"
                             % (self.n_neurons,))
        effective = delay_ticks - age
        if effective.min() < 0 or delay_ticks.max() > self.max_delay_ticks:
            raise ValueError(
                "aged event delays outside %d..%d (lookahead bound "
                "violated)" % (age, self.max_delay_ticks))
        self._scatter(targets, weights, effective)

    def _scatter(self, targets: np.ndarray, weights: np.ndarray,
                 delay_ticks: np.ndarray) -> None:
        """Accumulate a validated batch at ``current + delay`` slots."""
        if targets.size <= 32:
            # Small batches (single DMA rows on the machine model) are
            # cheaper through a scalar accumulate than through the fixed
            # overhead of a vectorized scatter.  Clamping still happens
            # per touched cell after the batch, so results never depend
            # on which side of this threshold a batch falls.
            touched_cells = set()
            tick = self._current_tick
            for target, weight, delay in zip(targets.tolist(),
                                             weights.tolist(),
                                             delay_ticks.tolist()):
                slot = (tick + delay) % self.n_slots
                self._buffer[slot, target] += weight
                touched_cells.add((slot, target))
            self.events_deferred += int(targets.size)
            for slot, target in touched_cells:
                value = self._buffer[slot, target]
                if value > WEIGHT_SATURATION_NA:
                    self._buffer[slot, target] = WEIGHT_SATURATION_NA
                    self.saturations += 1
                elif value < -WEIGHT_SATURATION_NA:
                    self._buffer[slot, target] = -WEIGHT_SATURATION_NA
                    self.saturations += 1
            return
        slots = (self._current_tick + delay_ticks) % self.n_slots
        cells = slots * self.n_neurons + targets
        np.add.at(self._buffer.ravel(), cells, weights)
        self.events_deferred += int(targets.size)

        # Clamp at the fixed-point weight range.  Only cells touched by
        # this call can have newly crossed the limit (cells clamped by
        # earlier calls sit exactly *at* the limit and are not
        # re-counted).  For batches much smaller than the buffer, clamp
        # the unique touched cells; for dense batches a whole-row scan of
        # the touched slots is cheaper than deduplicating the indices.
        flat = self._buffer.ravel()
        if targets.size < self.n_neurons:
            unique_cells = np.unique(cells)
            values = flat[unique_cells]
            over = np.abs(values) > WEIGHT_SATURATION_NA
            if over.any():
                self.saturations += int(over.sum())
                flat[unique_cells[over]] = (np.sign(values[over])
                                            * WEIGHT_SATURATION_NA)
            return
        touched = np.zeros(self.n_slots, dtype=bool)
        touched[slots] = True
        for slot in np.flatnonzero(touched):
            row = self._buffer[slot]
            n_over = int(np.count_nonzero(np.abs(row) > WEIGHT_SATURATION_NA))
            if n_over:
                self.saturations += n_over
                np.clip(row, -WEIGHT_SATURATION_NA, WEIGHT_SATURATION_NA,
                        out=row)

    def add_row(self, row: SynapticRow) -> None:
        """Defer every synapse of a freshly-fetched row."""
        for synapse in row:
            self.add_synapse(synapse)

    def drain(self) -> np.ndarray:
        """Return and clear the inputs scheduled for the current tick.

        Advances the buffer to the next tick, exactly as the timer-interrupt
        handler does before integrating the neuron equations.
        """
        slot = self._current_tick % self.n_slots
        inputs = self._buffer[slot].copy()
        self._buffer[slot] = 0.0
        self._current_tick += 1
        return inputs

    def pending_charge(self) -> float:
        """Total charge currently waiting in the buffer (for tests)."""
        return float(np.sum(self._buffer))

    def reset(self) -> None:
        """Clear the buffer and rewind the tick and event/saturation counters."""
        self._buffer[:] = 0.0
        self._current_tick = 0
        self.events_deferred = 0
        self.saturations = 0


class FusedDeferredEventBuffer:
    """One deferred-event ring shared by every core of a board.

    The per-core :class:`DeferredEventBuffer` gives each core its own
    ``(n_slots, n_neurons)`` ring; a board's fused engine instead packs
    all of its cores' columns into a single ``(n_slots, total_width)``
    array at caller-chosen per-core column offsets, so one vectorized
    scatter per tick can deliver events to every core at once and one
    row drain hands every core its inputs.

    Events address the ring by *cell* — the fused column index, i.e.
    ``core_offset + target`` — so the caller resolves core offsets once
    at build time (see ``BoardDeliveryIndex``) and the hot path carries
    no per-core indirection.  Delays may arrive pre-aged by the
    conservative-lookahead exchange: an effective delay of ``0`` is
    legal and means "drains this tick", exactly as
    :meth:`DeferredEventBuffer.add_events_aged` defines it.

    Bit-identity with the per-core rings: weights are fixed-point
    multiples of ``2^-4`` held in float64, so ring accumulation is an
    exact sum and independent of event order or batch grouping — a
    single fused scatter lands the same values as many per-core ones.
    Saturation is clamped once per touched cell after each call (the
    per-core vector path clamps per ``add_events`` call), so the two
    layouts agree exactly whenever accumulated charge stays inside the
    16-bit weight range; a cell that saturates mid-batch from
    mixed-sign weights may land differently, mirroring the documented
    :meth:`DeferredEventBuffer.add_events` caveat.
    """

    def __init__(self, total_width: int,
                 max_delay_ticks: int = MAX_DELAY_TICKS) -> None:
        if total_width <= 0:
            raise ValueError("total_width must be positive")
        if max_delay_ticks < 1:
            raise ValueError("max_delay_ticks must be at least 1")
        self.total_width = total_width
        self.max_delay_ticks = max_delay_ticks
        self.n_slots = max_delay_ticks + 1
        self._buffer = np.zeros((self.n_slots, total_width), dtype=float)
        self._current_tick = 0
        self.events_deferred = 0
        self.saturations = 0

    @property
    def current_tick(self) -> int:
        """The tick whose inputs will be drained next."""
        return self._current_tick

    def add_events(self, cells: np.ndarray, weights: np.ndarray,
                   effective_delays: np.ndarray) -> None:
        """Accumulate a batch of events addressed by fused cell index.

        ``effective_delays`` are already re-based by the batch's age
        (``delay - age``); ``0`` means the event drains this tick.  The
        whole batch is validated before any mutation, matching the
        per-core buffer's all-or-nothing contract.
        """
        cells = np.asarray(cells, dtype=np.intp)
        effective_delays = np.asarray(effective_delays, dtype=np.intp)
        weights = np.asarray(weights, dtype=float)
        if cells.size == 0:
            return
        if cells.min() < 0 or cells.max() >= self.total_width:
            raise IndexError("event cells outside the fused width of %d"
                             % (self.total_width,))
        if (effective_delays.min() < 0
                or effective_delays.max() > self.max_delay_ticks):
            raise ValueError("effective delays outside 0..%d (lookahead "
                             "bound violated)" % (self.max_delay_ticks,))
        flat_cells = effective_delays + self._current_tick
        np.remainder(flat_cells, self.n_slots, out=flat_cells)
        flat_cells *= self.total_width
        flat_cells += cells
        flat = self._buffer.ravel()
        self.events_deferred += int(cells.size)
        # Clamping happens once per touched cell after the batch, per
        # the per-core vector path's rule (cells clamped by earlier
        # calls sit exactly at the limit and are not re-counted).  For
        # batches smaller than the ring width, scatter in place and
        # clamp the deduplicated cells; a dense batch instead pre-sums
        # per cell (exact: fixed-point weights in float64) and clamps
        # by scanning the touched slot rows, skipping the O(n log n)
        # dedup that would dominate large fused scatters.
        if cells.size < self.total_width:
            np.add.at(flat, flat_cells, weights)
            unique_cells = np.unique(flat_cells)
            values = flat[unique_cells]
            over = np.abs(values) > WEIGHT_SATURATION_NA
            if over.any():
                self.saturations += int(over.sum())
                flat[unique_cells[over]] = (np.sign(values[over])
                                            * WEIGHT_SATURATION_NA)
            return
        flat += np.bincount(flat_cells, weights=weights,
                            minlength=flat.size)
        delay_counts = np.bincount(effective_delays,
                                   minlength=self.n_slots)
        touched_slots = ((self._current_tick
                          + np.flatnonzero(delay_counts)) % self.n_slots)
        for slot in touched_slots:
            row = self._buffer[slot]
            n_over = int(np.count_nonzero(
                np.abs(row) > WEIGHT_SATURATION_NA))
            if n_over:
                self.saturations += n_over
                np.clip(row, -WEIGHT_SATURATION_NA, WEIGHT_SATURATION_NA,
                        out=row)

    def drain(self) -> np.ndarray:
        """Return and clear every core's inputs for the current tick.

        One ``(total_width,)`` copy; the caller slices it into per-core
        (or per-group) views.  Advances the ring exactly as the
        per-core :meth:`DeferredEventBuffer.drain` does.
        """
        slot = self._current_tick % self.n_slots
        inputs = self._buffer[slot].copy()
        self._buffer[slot] = 0.0
        self._current_tick += 1
        return inputs

    def pending_charge(self) -> float:
        """Total charge currently waiting in the ring (for tests)."""
        return float(np.sum(self._buffer))

    def reset(self) -> None:
        """Clear the ring and rewind the tick and counters."""
        self._buffer[:] = 0.0
        self._current_tick = 0
        self.events_deferred = 0
        self.saturations = 0
