"""Connection-pattern generators.

"Mapping the biological neural system onto the SpiNNaker machine is
non-trivial ... connectivity data constructed" (Section 5.3).  A connector
turns a (pre-population, post-population) pair into the list of synapses of
each pre-synaptic neuron, i.e. the synaptic rows that the mapping layer
packs into SDRAM.

The connectors provided match the ones every SpiNNaker/PyNN workload uses:
one-to-one, all-to-all, fixed-probability (the sparse random connectivity
of cortical models) and distance-dependent (the local receptive-field
connectivity of Section 5.4, where delay grows with Euclidean distance as
in three-dimensional biological tissue).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.neuron.synapse import MAX_DELAY_TICKS, Synapse


class Connector:
    """Base class: builds per-source synapse lists for a projection."""

    def build(self, n_pre: int, n_post: int,
              rng: np.random.Generator) -> Dict[int, List[Synapse]]:
        """Return a mapping from pre-synaptic index to its synapse list."""
        raise NotImplementedError

    def build_csr(self, n_pre: int, n_post: int, rng: np.random.Generator):
        """Expand directly into the engine's CSR form.

        Returns a :class:`repro.neuron.engine.CSRMatrix` compiled from the
        same expansion (and the same ``rng`` draws) :meth:`build` would
        produce, for callers that only need the flat-array view.
        """
        from repro.neuron.engine import CSRMatrix

        return CSRMatrix.from_rows(self.build(n_pre, n_post, rng),
                                   n_pre, n_post)

    @staticmethod
    def _clip_delay(delay_ticks: int) -> int:
        return int(min(max(1, delay_ticks), MAX_DELAY_TICKS))


@dataclass
class OneToOneConnector(Connector):
    """Connect neuron i of the source to neuron i of the target."""

    weight: float = 1.0
    delay_ticks: int = 1

    def build(self, n_pre: int, n_post: int,
              rng: np.random.Generator) -> Dict[int, List[Synapse]]:
        n = min(n_pre, n_post)
        return {i: [Synapse(i, self.weight, self._clip_delay(self.delay_ticks))]
                for i in range(n)}


@dataclass
class AllToAllConnector(Connector):
    """Connect every source neuron to every target neuron."""

    weight: float = 1.0
    delay_ticks: int = 1
    allow_self_connections: bool = True

    def build(self, n_pre: int, n_post: int,
              rng: np.random.Generator) -> Dict[int, List[Synapse]]:
        rows: Dict[int, List[Synapse]] = {}
        delay = self._clip_delay(self.delay_ticks)
        for pre in range(n_pre):
            row = [Synapse(post, self.weight, delay)
                   for post in range(n_post)
                   if self.allow_self_connections or post != pre]
            rows[pre] = row
        return rows


@dataclass
class FixedProbabilityConnector(Connector):
    """Connect each (pre, post) pair independently with probability ``p``.

    Weights and delays may be fixed values or ranges; ranges are sampled
    uniformly per synapse, which is how delays spread over several
    milliseconds are usually specified in SpiNNaker workloads.
    """

    p_connect: float = 0.1
    weight: float = 1.0
    weight_range: Optional[Tuple[float, float]] = None
    delay_ticks: int = 1
    delay_range: Optional[Tuple[int, int]] = None
    allow_self_connections: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_connect <= 1.0:
            raise ValueError("p_connect must lie in [0, 1]")

    def build(self, n_pre: int, n_post: int,
              rng: np.random.Generator) -> Dict[int, List[Synapse]]:
        rows: Dict[int, List[Synapse]] = {}
        for pre in range(n_pre):
            mask = rng.random(n_post) < self.p_connect
            if not self.allow_self_connections and pre < n_post:
                mask[pre] = False
            targets = np.flatnonzero(mask)
            row = []
            for post in targets:
                weight = (self.weight if self.weight_range is None
                          else float(rng.uniform(*self.weight_range)))
                delay = (self.delay_ticks if self.delay_range is None
                         else int(rng.integers(self.delay_range[0],
                                               self.delay_range[1] + 1)))
                row.append(Synapse(int(post), weight, self._clip_delay(delay)))
            rows[pre] = row
        return rows


@dataclass
class DistanceDependentConnector(Connector):
    """Connect neurons laid out on 2-D grids with distance-dependent rules.

    Connection probability falls off as a Gaussian of the Euclidean
    distance between the source and target grid positions, and the delay
    grows linearly with distance — the property of three-dimensional
    biological tissue that Section 3.2 says the soft-delay mechanism must
    reproduce.

    Both populations are interpreted as ``rows x cols`` grids; the target
    grid is scaled onto the source grid when their shapes differ.
    """

    pre_shape: Tuple[int, int] = (1, 1)
    post_shape: Tuple[int, int] = (1, 1)
    sigma: float = 2.0
    max_distance: float = 6.0
    weight: float = 1.0
    p_peak: float = 1.0
    delay_per_unit_distance_ticks: float = 1.0
    min_delay_ticks: int = 1

    def _position(self, index: int, shape: Tuple[int, int]) -> Tuple[float, float]:
        rows, cols = shape
        return float(index // cols), float(index % cols)

    def build(self, n_pre: int, n_post: int,
              rng: np.random.Generator) -> Dict[int, List[Synapse]]:
        pre_rows, pre_cols = self.pre_shape
        post_rows, post_cols = self.post_shape
        if pre_rows * pre_cols < n_pre or post_rows * post_cols < n_post:
            raise ValueError("grid shapes are too small for the populations")
        row_scale = pre_rows / post_rows
        col_scale = pre_cols / post_cols

        rows: Dict[int, List[Synapse]] = {}
        for pre in range(n_pre):
            pre_r, pre_c = self._position(pre, self.pre_shape)
            synapses: List[Synapse] = []
            for post in range(n_post):
                post_r, post_c = self._position(post, self.post_shape)
                # Map the target position into source-grid coordinates.
                distance = math.hypot(pre_r - post_r * row_scale,
                                      pre_c - post_c * col_scale)
                if distance > self.max_distance:
                    continue
                probability = self.p_peak * math.exp(
                    -(distance ** 2) / (2.0 * self.sigma ** 2))
                if rng.random() >= probability:
                    continue
                delay = self.min_delay_ticks + int(
                    round(distance * self.delay_per_unit_distance_ticks))
                synapses.append(Synapse(post, self.weight,
                                        self._clip_delay(delay)))
            rows[pre] = synapses
        return rows


@dataclass
class FromListConnector(Connector):
    """Connect from an explicit list of ``(pre, post, weight, delay)`` tuples."""

    connections: List[Tuple[int, int, float, int]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.connections is None:
            self.connections = []

    def build(self, n_pre: int, n_post: int,
              rng: np.random.Generator) -> Dict[int, List[Synapse]]:
        rows: Dict[int, List[Synapse]] = {}
        for pre, post, weight, delay in self.connections:
            if not 0 <= pre < n_pre:
                raise IndexError("pre index %d outside population of %d"
                                 % (pre, n_pre))
            if not 0 <= post < n_post:
                raise IndexError("post index %d outside population of %d"
                                 % (post, n_post))
            rows.setdefault(pre, []).append(
                Synapse(post, weight, self._clip_delay(delay)))
        return rows
