"""repro — a Python reproduction of the SpiNNaker architecture.

This package reproduces, in simulation, the system described in
"Biologically-Inspired Massively-Parallel Architectures — computing beyond a
million processors" (Furber & Brown, DATE 2011).  It provides:

* ``repro.core`` — the discrete-event simulation kernel and the machine model
  (toroidal triangular mesh of chip multiprocessors, processor subsystems,
  DMA, SDRAM, NoC fabrics and packet formats).
* ``repro.router`` — the multicast AER packet router with key/mask tables,
  default routing, emergency routing and algorithmic point-to-point routing.
* ``repro.link`` — the self-timed inter-chip link layer: 2-of-7 NRZ and
  3-of-6 RTZ delay-insensitive codes, the glitch-tolerant phase converter and
  the single-token channel with its two-token reset protocol.
* ``repro.neuron`` — the spiking-neuron substrate (LIF and Izhikevich models,
  synaptic rows with programmable "soft" delays, the deferred-event model and
  a population/projection network-description API).
* ``repro.coding`` — neural information coding: rate codes, N-of-M codes,
  rank-order codes and a retinal ganglion-cell (difference-of-Gaussians)
  encoder with lateral inhibition.
* ``repro.mapping`` — placement of neurons onto cores, routing-key
  allocation, multicast routing-table generation and synaptic-matrix
  construction.
* ``repro.runtime`` — the event-driven real-time application model (Fig. 7),
  the monitor processor, the boot protocol and flood-fill application
  loading.
* ``repro.fault`` — fault injection (links, cores, neurons) and mitigation.
* ``repro.energy`` — MIPS/W and MIPS/mm² models, wire-transition energy and
  the ownership-cost model of Section 3.3.
* ``repro.host`` — the Ethernet-attached host system.
* ``repro.analysis`` — latency, traffic, spike-raster and information
  metrics used by the benchmarks.
* ``repro.alloc`` — multi-tenant machine allocation and job scheduling:
  rectangular torus-aware leases, priority queues with per-tenant quotas,
  keepalive/expiry reclamation and the host-facing allocation server.
"""

from repro.alloc import (
    AllocationScheduler,
    AllocationServer,
    Job,
    JobRequest,
    JobState,
    Lease,
    LeasedMachineView,
    MachinePartitioner,
    TenantQuota,
)
from repro.core.event_kernel import Event, EventKernel
from repro.core.geometry import ChipCoordinate, Direction, TorusGeometry
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.core.packets import (
    MulticastPacket,
    NearestNeighbourPacket,
    PointToPointPacket,
)

__version__ = "1.0.0"

__all__ = [
    "Event",
    "EventKernel",
    "ChipCoordinate",
    "Direction",
    "TorusGeometry",
    "MachineConfig",
    "SpiNNakerMachine",
    "MulticastPacket",
    "PointToPointPacket",
    "NearestNeighbourPacket",
    "AllocationScheduler",
    "AllocationServer",
    "Job",
    "JobRequest",
    "JobState",
    "Lease",
    "LeasedMachineView",
    "MachinePartitioner",
    "TenantQuota",
    "__version__",
]
