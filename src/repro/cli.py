"""Command-line interface to the SpiNNaker reproduction.

The CLI is a thin layer over the library: each subcommand builds the same
objects a script would and prints a concise textual report.  It is the
quickest way to sanity-check an installation::

    spinnaker-repro info                      # machine-scale arithmetic
    spinnaker-repro boot --width 8 --height 8 # run the boot protocol
    spinnaker-repro codes                     # NRZ vs RTZ link codes
    spinnaker-repro run --duration 200        # a small SNN on the machine
    spinnaker-repro saturation --width 48     # lightly-loaded-regime check

All output goes to stdout; the exit status is zero unless a subcommand
fails (for example a boot in which chips stay dead).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.congestion import congestion_report, saturation_injection_rate
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.energy.cost import OwnershipCostModel
from repro.energy.model import EnergyModel, MachineScaleModel
from repro.link.codes import LinkPerformanceModel
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController

__all__ = ["main", "build_parser"]


def _print_table(rows: Sequence[Sequence[str]], header: Sequence[str]) -> None:
    """Print a small fixed-width table (no external dependencies)."""
    widths = [max(len(str(row[column])) for row in [header, *rows])
              for column in range(len(header))]
    def render(row: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(width)
                         for cell, width in zip(row, widths))
    print(render(header))
    print(render(["-" * width for width in widths]))
    for row in rows:
        print(render(row))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_info(_args: argparse.Namespace) -> int:
    """Print the machine-scale and cost-effectiveness headline numbers."""
    scale = MachineScaleModel()
    comparison = EnergyModel().comparison()
    ownership = OwnershipCostModel.ownership_comparison()
    print("SpiNNaker full-machine scale (Section 6):")
    for key, value in scale.summary().items():
        print("  %-22s %g" % (key, value))
    print("\nEmbedded vs desktop processors (Section 2):")
    for key, value in comparison.items():
        print("  %-28s %.2f" % (key, value))
    print("\nOwnership cost over three years (Section 3.3):")
    for key, value in ownership.items():
        print("  %-28s %.2f" % (key, value))
    return 0


def cmd_boot(args: argparse.Namespace) -> int:
    """Boot a machine and report the result of the boot protocol."""
    machine = SpiNNakerMachine(MachineConfig(width=args.width,
                                             height=args.height,
                                             cores_per_chip=args.cores))
    result = BootController(machine, seed=args.seed).boot()
    print("Booted %dx%d machine (%d chips, %d cores/chip)"
          % (args.width, args.height, result.n_chips, args.cores))
    print("  booted unaided:      %d" % result.chips_booted_unaided)
    print("  repaired by nn:      %d" % result.chips_repaired)
    print("  dead:                %d" % result.chips_dead)
    print("  monitors elected:    %d" % result.monitors_elected)
    print("  p2p tables built:    %d" % result.p2p_tables_configured)
    print("  boot complete at:    %.1f us" % result.boot_complete_time_us)
    return 0 if result.all_chips_operational else 1


def cmd_codes(_args: argparse.Namespace) -> int:
    """Compare the 2-of-7 NRZ and 3-of-6 RTZ link codes (Section 5.1)."""
    model = LinkPerformanceModel()
    comparison = model.comparison()
    rows = [
        ["transitions / 4-bit symbol",
         "%.0f" % comparison["nrz_transitions_per_symbol"],
         "%.0f" % comparison["rtz_transitions_per_symbol"]],
        ["throughput ratio (NRZ/RTZ)",
         "%.2f" % comparison["throughput_ratio_nrz_over_rtz"], ""],
        ["energy ratio (NRZ/RTZ)",
         "%.2f" % comparison["energy_ratio_nrz_over_rtz"], ""],
    ]
    _print_table(rows, header=["metric", "2-of-7 NRZ", "3-of-6 RTZ"])
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Map a small random SNN onto a machine and run it in simulated real time."""
    machine = SpiNNakerMachine(MachineConfig(width=args.width,
                                             height=args.height,
                                             cores_per_chip=args.cores))
    BootController(machine, seed=args.seed).boot()

    network = Network(seed=args.seed)
    stimulus = SpikeSourcePoisson(args.neurons, rate_hz=args.rate,
                                  label="stimulus")
    excitatory = Population(args.neurons, "lif", label="excitatory")
    excitatory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(p_connect=0.15, weight=0.8,
                                              delay_range=(1, 4)))
    application = NeuralApplication(machine, network,
                                    max_neurons_per_core=args.neurons_per_core,
                                    seed=args.seed)
    result = application.run(args.duration)

    print("Ran %d+%d neurons for %.0f ms on a %dx%d machine"
          % (args.neurons, args.neurons, args.duration,
             args.width, args.height))
    print("  spikes (excitatory): %d" % result.total_spikes("excitatory"))
    print("  mean rate:           %.1f Hz" % result.mean_rate_hz("excitatory"))
    print("  packets sent:        %d" % result.packets_sent)
    print("  packets dropped:     %d" % result.packets_dropped)
    print("  mean delivery:       %.1f us" % result.mean_delivery_latency_us())
    print("  worst delivery:      %.1f us" % result.max_delivery_latency_us())
    report = congestion_report(machine)
    print("  peak link load:      %.1f %%" % (100.0 * report.peak_utilisation))
    print("  lightly loaded:      %s" % ("yes" if report.lightly_loaded else "no"))
    return 0 if result.packets_dropped == 0 else 1


def cmd_saturation(args: argparse.Namespace) -> int:
    """Report the per-core injection rate at which the torus saturates."""
    rate = saturation_injection_rate(args.width, args.height,
                                     cores_per_chip=args.cores)
    biological = args.neurons_per_core * args.mean_rate / 1000.0
    print("Torus %dx%d, %d cores/chip:" % (args.width, args.height, args.cores))
    print("  saturation injection rate: %.1f packets/ms per core" % rate)
    print("  biological requirement:    %.1f packets/ms per core"
          % biological)
    headroom = rate / biological if biological > 0 else float("inf")
    print("  headroom factor:           %.1fx" % headroom)
    return 0 if headroom >= 1.0 else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="spinnaker-repro",
        description="SpiNNaker architecture reproduction (Furber & Brown, "
                    "DATE 2011)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="machine-scale headline numbers")

    boot = subparsers.add_parser("boot", help="boot a simulated machine")
    boot.add_argument("--width", type=int, default=8)
    boot.add_argument("--height", type=int, default=8)
    boot.add_argument("--cores", type=int, default=18)
    boot.add_argument("--seed", type=int, default=1)

    subparsers.add_parser("codes", help="compare the inter-chip link codes")

    run = subparsers.add_parser("run", help="run a small SNN on the machine")
    run.add_argument("--width", type=int, default=4)
    run.add_argument("--height", type=int, default=4)
    run.add_argument("--cores", type=int, default=8)
    run.add_argument("--neurons", type=int, default=100)
    run.add_argument("--neurons-per-core", type=int, default=32)
    run.add_argument("--rate", type=float, default=60.0)
    run.add_argument("--duration", type=float, default=100.0)
    run.add_argument("--seed", type=int, default=7)

    saturation = subparsers.add_parser(
        "saturation", help="lightly-loaded-regime headroom check")
    saturation.add_argument("--width", type=int, default=48)
    saturation.add_argument("--height", type=int, default=48)
    saturation.add_argument("--cores", type=int, default=20)
    saturation.add_argument("--neurons-per-core", type=int, default=1000)
    saturation.add_argument("--mean-rate", type=float, default=10.0)
    return parser


_COMMANDS = {
    "info": cmd_info,
    "boot": cmd_boot,
    "codes": cmd_codes,
    "run": cmd_run,
    "saturation": cmd_saturation,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by the ``spinnaker-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
