"""Command-line interface to the SpiNNaker reproduction.

The CLI is a thin layer over the library: each subcommand builds the same
objects a script would and prints a concise textual report.  It is the
quickest way to sanity-check an installation::

    spinnaker-repro info                      # machine-scale arithmetic
    spinnaker-repro boot --width 8 --height 8 # run the boot protocol
    spinnaker-repro codes                     # NRZ vs RTZ link codes
    spinnaker-repro run --duration 200        # a small SNN on the machine
    spinnaker-repro saturation --width 48     # lightly-loaded-regime check
    spinnaker-repro alloc demo --jobs 40      # multi-tenant job stream
    spinnaker-repro alloc policies            # compare placement policies
    spinnaker-repro transport demo --chips 16 # fabric vs event transport
    spinnaker-repro compile report --chips 16 # mapping-compiler pass report
    spinnaker-repro cluster demo --boards 2x2 # multi-board sharded run

All output goes to stdout; the exit status is zero unless a subcommand
fails (for example a boot in which chips stay dead).
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.alloc.partition import PLACEMENT_POLICIES
from repro.alloc.scheduler import AllocationScheduler
from repro.alloc.workload import JobStreamConfig, run_job_stream
from repro.analysis.congestion import congestion_report, saturation_injection_rate
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.fault.injection import FaultInjector
from repro.energy.cost import OwnershipCostModel
from repro.mapping.placement import PlacementError
from repro.energy.model import EnergyModel, MachineScaleModel
from repro.link.codes import LinkPerformanceModel
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.profile import perf_now
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController

__all__ = ["main", "build_parser"]


def _print_table(rows: Sequence[Sequence[str]], header: Sequence[str]) -> None:
    """Print a small fixed-width table (no external dependencies)."""
    widths = [max(len(str(row[column])) for row in [header, *rows])
              for column in range(len(header))]
    def render(row: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(width)
                         for cell, width in zip(row, widths))
    print(render(header))
    print(render(["-" * width for width in widths]))
    for row in rows:
        print(render(row))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_info(_args: argparse.Namespace) -> int:
    """Print the machine-scale and cost-effectiveness headline numbers."""
    scale = MachineScaleModel()
    comparison = EnergyModel().comparison()
    ownership = OwnershipCostModel.ownership_comparison()
    print("SpiNNaker full-machine scale (Section 6):")
    for key, value in scale.summary().items():
        print("  %-22s %g" % (key, value))
    print("\nEmbedded vs desktop processors (Section 2):")
    for key, value in comparison.items():
        print("  %-28s %.2f" % (key, value))
    print("\nOwnership cost over three years (Section 3.3):")
    for key, value in ownership.items():
        print("  %-28s %.2f" % (key, value))
    return 0


def cmd_boot(args: argparse.Namespace) -> int:
    """Boot a machine and report the result of the boot protocol."""
    machine = SpiNNakerMachine(MachineConfig(width=args.width,
                                             height=args.height,
                                             cores_per_chip=args.cores))
    result = BootController(machine, seed=args.seed).boot()
    print("Booted %dx%d machine (%d chips, %d cores/chip)"
          % (args.width, args.height, result.n_chips, args.cores))
    print("  booted unaided:      %d" % result.chips_booted_unaided)
    print("  repaired by nn:      %d" % result.chips_repaired)
    print("  dead:                %d" % result.chips_dead)
    print("  monitors elected:    %d" % result.monitors_elected)
    print("  p2p tables built:    %d" % result.p2p_tables_configured)
    print("  boot complete at:    %.1f us" % result.boot_complete_time_us)
    return 0 if result.all_chips_operational else 1


def cmd_codes(_args: argparse.Namespace) -> int:
    """Compare the 2-of-7 NRZ and 3-of-6 RTZ link codes (Section 5.1)."""
    model = LinkPerformanceModel()
    comparison = model.comparison()
    rows = [
        ["transitions / 4-bit symbol",
         "%.0f" % comparison["nrz_transitions_per_symbol"],
         "%.0f" % comparison["rtz_transitions_per_symbol"]],
        ["throughput ratio (NRZ/RTZ)",
         "%.2f" % comparison["throughput_ratio_nrz_over_rtz"], ""],
        ["energy ratio (NRZ/RTZ)",
         "%.2f" % comparison["energy_ratio_nrz_over_rtz"], ""],
    ]
    _print_table(rows, header=["metric", "2-of-7 NRZ", "3-of-6 RTZ"])
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Map a small random SNN onto a machine and run it in simulated real time."""
    machine = SpiNNakerMachine(MachineConfig(width=args.width,
                                             height=args.height,
                                             cores_per_chip=args.cores))
    BootController(machine, seed=args.seed).boot()

    network = Network(seed=args.seed)
    stimulus = SpikeSourcePoisson(args.neurons, rate_hz=args.rate,
                                  label="stimulus")
    excitatory = Population(args.neurons, "lif", label="excitatory")
    excitatory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(p_connect=0.15, weight=0.8,
                                              delay_range=(1, 4)))
    application = NeuralApplication(machine, network,
                                    max_neurons_per_core=args.neurons_per_core,
                                    seed=args.seed)
    result = application.run(args.duration)

    print("Ran %d+%d neurons for %.0f ms on a %dx%d machine"
          % (args.neurons, args.neurons, args.duration,
             args.width, args.height))
    print("  spikes (excitatory): %d" % result.total_spikes("excitatory"))
    print("  mean rate:           %.1f Hz" % result.mean_rate_hz("excitatory"))
    print("  packets sent:        %d" % result.packets_sent)
    print("  packets dropped:     %d" % result.packets_dropped)
    print("  mean delivery:       %.1f us" % result.mean_delivery_latency_us())
    print("  worst delivery:      %.1f us" % result.max_delivery_latency_us())
    report = congestion_report(machine)
    print("  peak link load:      %.1f %%" % (100.0 * report.peak_utilisation))
    print("  lightly loaded:      %s" % ("yes" if report.lightly_loaded else "no"))
    return 0 if result.packets_dropped == 0 else 1


def cmd_saturation(args: argparse.Namespace) -> int:
    """Report the per-core injection rate at which the torus saturates."""
    rate = saturation_injection_rate(args.width, args.height,
                                     cores_per_chip=args.cores)
    biological = args.neurons_per_core * args.mean_rate / 1000.0
    print("Torus %dx%d, %d cores/chip:" % (args.width, args.height, args.cores))
    print("  saturation injection rate: %.1f packets/ms per core" % rate)
    print("  biological requirement:    %.1f packets/ms per core"
          % biological)
    headroom = rate / biological if biological > 0 else float("inf")
    print("  headroom factor:           %.1fx" % headroom)
    return 0 if headroom >= 1.0 else 1


def _alloc_machine(args: argparse.Namespace) -> SpiNNakerMachine:
    """Build the demo machine, optionally with whole-chip faults."""
    machine = SpiNNakerMachine(MachineConfig(width=args.width,
                                             height=args.height,
                                             cores_per_chip=args.cores))
    if args.fault_chips > 0:
        injector = FaultInjector(machine, seed=args.seed)
        chips = sorted(machine.chips, key=lambda c: (c.y, c.x))
        for coordinate in injector.rng.sample(chips, args.fault_chips):
            for core in machine.chips[coordinate].cores:
                injector.fail_core(coordinate, core.core_id)
    return machine


def _alloc_stream_config(args: argparse.Namespace) -> JobStreamConfig:
    return JobStreamConfig(n_jobs=args.jobs,
                           mean_interarrival_ms=args.interarrival,
                           mean_hold_ms=args.hold,
                           min_side=args.min_side, max_side=args.max_side,
                           tenants=tuple("tenant-%d" % i
                                         for i in range(args.tenants)),
                           seed=args.seed)


def cmd_alloc(args: argparse.Namespace) -> int:
    """Dispatch the ``alloc`` subcommand group."""
    if args.alloc_command == "serve":
        return cmd_alloc_serve(args)
    if args.alloc_command == "client":
        return cmd_alloc_client(args)
    if not 0 <= args.fault_chips <= args.width * args.height:
        print("error: --fault-chips must lie in [0, %d] for a %dx%d machine"
              % (args.width * args.height, args.width, args.height))
        return 2
    if args.min_side < 1 or args.max_side < args.min_side:
        print("error: job sizes need 1 <= --min-side <= --max-side")
        return 2
    if args.jobs < 1 or args.tenants < 1:
        print("error: --jobs and --tenants must be at least 1")
        return 2
    if args.interarrival <= 0 or args.hold <= 0:
        print("error: --interarrival and --hold must be positive")
        return 2
    if args.alloc_command == "demo":
        return cmd_alloc_demo(args)
    return cmd_alloc_policies(args)


def cmd_alloc_serve(args: argparse.Namespace) -> int:
    """Run the HTTP/JSON allocation service until stopped."""
    from repro.service import (AllocationService, BackpressureConfig,
                               ENDPOINTS)

    if args.width < 1 or args.height < 1:
        print("error: machine dimensions must be positive")
        return 2
    service = AllocationService.build(
        width=args.width, height=args.height, cores_per_chip=args.cores,
        host=args.host, port=args.port, time_scale=args.time_scale,
        backpressure=BackpressureConfig(max_queue_depth=args.max_queue_depth))
    service.start()
    print("Allocation service: %dx%d machine at %s (queue limit %d, "
          "time scale %gx)" % (args.width, args.height, service.url,
                               args.max_queue_depth, args.time_scale))
    _print_table([[method, path, response] for method, path, _request,
                  response, _label in ENDPOINTS],
                 header=["method", "path", "response"])
    try:
        if args.duration > 0:
            time.sleep(args.duration)
        else:
            print("serving until interrupted (Ctrl-C) ...")
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        print("\ninterrupt: draining ...")
    drained = service.stop()
    summary = service.scheduler.stats.summary()
    print("Served %.1f s:" % service.runtime.uptime_s)
    for key in ("submitted", "scheduled", "rejected", "freed", "expired"):
        print("  %-22s %g" % (key, summary[key]))
    print("  %-22s %s" % ("drained cleanly", drained))
    return 0 if drained else 1


def cmd_alloc_client(args: argparse.Namespace) -> int:
    """Drive sessionful jobs against a service (embedded by default)."""
    from repro.service import (AllocationService, ServiceBusy, ServiceClient,
                               ServiceClientError)

    if args.jobs < 1 or args.tenants < 1:
        print("error: --jobs and --tenants must be at least 1")
        return 2
    service = None
    url = args.url
    if url is None:
        service = AllocationService.build(width=args.width,
                                          height=args.height).start()
        url = service.url
        print("started an embedded service at %s" % url)

    rows = []
    failures = 0
    clients = [ServiceClient(url, tenant="tenant-%d" % index)
               for index in range(args.tenants)]
    try:
        for number in range(args.jobs):
            client = clients[number % args.tenants]
            started = perf_now()
            try:
                with client.session(args.side, args.side,
                                    keepalive_ms=args.keepalive_ms) as run:
                    ready = run.wait_ready(timeout_s=10.0)
                    elapsed_ms = (perf_now() - started) * 1000.0
                    rows.append([str(ready["job_id"]), client.tenant,
                                 ready["lease"], "%.1f" % elapsed_ms,
                                 "%.2f" % ready["wait_ms"]])
            except (ServiceBusy, ServiceClientError, TimeoutError) as error:
                failures += 1
                rows.append(["-", client.tenant, "failed: %s" % error,
                             "-", "-"])
        metrics = clients[0].metrics()
    finally:
        for client in clients:
            client.close()
        if service is not None:
            service.stop()
    print("Ran %d sessionful %dx%d jobs over %d tenants:"
          % (args.jobs, args.side, args.side, args.tenants))
    _print_table(rows, header=["job", "tenant", "lease", "ready ms",
                               "queue wait ms"])
    create = metrics["requests"].get("create", {})
    print("  create p50/p99:      %.2f / %.2f ms"
          % (create.get("p50_ms", 0.0), create.get("p99_ms", 0.0)))
    print("  failures:            %d" % failures)
    return 0 if failures == 0 else 1


def cmd_alloc_demo(args: argparse.Namespace) -> int:
    """Run one synthetic multi-tenant job stream and report the outcome."""
    machine = _alloc_machine(args)
    scheduler = AllocationScheduler(machine, policy=args.policy)
    summary = run_job_stream(scheduler, _alloc_stream_config(args))
    print("Allocation demo: %dx%d machine, %d jobs, policy %s, %d faulty "
          "chips" % (args.width, args.height, args.jobs, args.policy,
                     args.fault_chips))
    for key in ("submitted", "scheduled", "rejected", "skips_quota",
                "skips_capacity", "mean_wait_ms", "peak_fragmentation",
                "peak_chips_in_use", "jobs_per_simulated_s"):
        print("  %-22s %g" % (key, summary[key]))
    leaked = scheduler.partitioner.leased_area
    print("  %-22s %g" % ("chips_still_leased", leaked))
    return 0 if leaked == 0 else 1


def cmd_alloc_policies(args: argparse.Namespace) -> int:
    """Run the same job stream under every placement policy."""
    rows = []
    for policy in PLACEMENT_POLICIES:
        machine = _alloc_machine(args)
        scheduler = AllocationScheduler(machine, policy=policy)
        summary = run_job_stream(scheduler, _alloc_stream_config(args))
        rows.append([policy, "%d" % summary["scheduled"],
                     "%d" % summary["skips_capacity"],
                     "%.2f" % summary["mean_wait_ms"],
                     "%.3f" % summary["peak_fragmentation"],
                     "%.1f" % summary["jobs_per_simulated_s"]])
    print("Placement-policy comparison (%dx%d machine, %d jobs, %d faulty "
          "chips):" % (args.width, args.height, args.jobs, args.fault_chips))
    _print_table(rows, header=["policy", "scheduled", "capacity skips",
                               "mean wait ms", "peak frag", "jobs/s"])
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Dispatch the ``compile`` subcommand group (currently: report)."""
    if args.chips < 4 or args.neurons < 8:
        print("error: need --chips >= 4 and --neurons >= 8")
        return 2
    width, height = _transport_mesh(args.chips)
    machine = SpiNNakerMachine(MachineConfig(width=width, height=height,
                                             cores_per_chip=args.cores))
    BootController(machine, seed=args.seed).boot()
    application = NeuralApplication(machine, _transport_network(args),
                                    max_neurons_per_core=args.neurons_per_core,
                                    seed=args.seed)
    try:
        application.prepare()
    except PlacementError as error:
        print("error: %s — grow --chips/--cores or --neurons-per-core, or "
              "shrink --neurons" % (error,))
        return 2
    pipeline = application.pipeline

    remapped = 0
    if args.condemn > 0:
        from repro.runtime.monitor import MonitorService
        monitor = MonitorService(machine)
        monitor.attach_application(application)
        for _ in range(args.condemn):
            used = application.placement.chips_used()
            if len(used) <= 1:
                break
            try:
                monitor.condemn_chip(used[-1])
            except PlacementError as error:
                print("note: stopped condemning after %d chip(s): %s"
                      % (remapped, error))
                break
            remapped += 1

    rows = [[row["pass"], "%d" % row["runs"], "%d" % row["cache_hits"],
             "%.0f%%" % (100.0 * row["hit_rate"]), row["last_scope"],
             "%.2f" % row["last_ms"], "%.2f" % row["total_ms"]]
            for row in pipeline.report()]
    print("Mapping-compiler report: %dx%d machine (%d chips), %d+%d "
          "neurons, %d condemnation(s)"
          % (width, height, width * height, args.neurons, args.neurons,
             remapped))
    _print_table(rows, header=["pass", "runs", "hits", "hit rate",
                               "last scope", "last ms", "total ms"])
    print()
    for key, value in pipeline.summary().items():
        print("  %-26s %g" % (key, value))
    return 0


def _transport_mesh(chips: int) -> tuple:
    """Pick a near-square (width, height) covering at least ``chips``."""
    width = max(2, int(math.isqrt(max(chips, 4))))
    height = max(2, -(-chips // width))
    return width, height


def _transport_network(args: argparse.Namespace) -> "Network":
    network = Network(seed=args.seed)
    stimulus = SpikeSourcePoisson(args.neurons, rate_hz=args.rate,
                                  label="stimulus")
    excitatory = Population(args.neurons, "lif", label="excitatory")
    excitatory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(p_connect=0.1, weight=1.0,
                                              delay_range=(1, 8)))
    network.connect(excitatory, excitatory,
                    FixedProbabilityConnector(p_connect=0.02, weight=0.2,
                                              delay_range=(1, 16)))
    return network


def cmd_transport(args: argparse.Namespace) -> int:
    """Run one seeded network under both transports; report the verdict."""
    if args.chips < 4 or args.neurons < 8:
        print("error: need --chips >= 4 and --neurons >= 8")
        return 2
    width, height = _transport_mesh(args.chips)
    results = {}
    for transport in ("event", "fabric"):
        machine = SpiNNakerMachine(MachineConfig(width=width, height=height,
                                                 cores_per_chip=4))
        BootController(machine, seed=args.seed).boot()
        application = NeuralApplication(
            machine, _transport_network(args),
            max_neurons_per_core=args.neurons_per_core, seed=args.seed,
            transport=transport, stagger_us=0.0)
        application.prepare()
        start = perf_now()
        result = application.run(args.duration)
        results[transport] = (result, perf_now() - start)

    event, event_wall = results["event"]
    fabric, fabric_wall = results["fabric"]
    rows = []
    for name, (result, wall) in results.items():
        throughput = result.synaptic_events / wall if wall > 0 else 0.0
        rows.append([name, "%d" % result.packets_sent,
                     "%d" % result.synaptic_events, "%.3f" % wall,
                     "%.3e" % throughput,
                     "%.1f" % result.mean_delivery_latency_us()])
    print("Transport comparison: %dx%d machine (%d chips), %d+%d neurons, "
          "%.0f ms" % (width, height, width * height, args.neurons,
                       args.neurons, args.duration))
    _print_table(rows, header=["transport", "packets", "synaptic events",
                               "wall s", "events/s", "mean latency us"])
    if event_wall > 0 and fabric_wall > 0 and event.synaptic_events:
        speedup = ((fabric.synaptic_events / fabric_wall)
                   / (event.synaptic_events / event_wall))
        print("  fabric speedup:      %.1fx" % speedup)

    equivalent = (event.spikes == fabric.spikes
                  and event.delivered_charge_na == fabric.delivered_charge_na
                  and all(np.array_equal(event.spike_counts[label],
                                         fabric.spike_counts[label])
                          for label in event.spike_counts))
    print("  spikes (event):      %d" % event.total_spikes())
    print("  spikes (fabric):     %d" % fabric.total_spikes())
    print("  delivered charge:    %.3f / %.3f nA"
          % (event.delivered_charge_na, fabric.delivered_charge_na))
    print("  equivalence verdict: %s"
          % ("IDENTICAL" if equivalent else "DIVERGED"))
    if not equivalent and event.packets_dropped:
        print("  note: the event transport dropped %d packets (congestion);"
              " the fabric assumes the lightly-loaded regime"
              % event.packets_dropped)
    return 0 if equivalent else 1


def _cluster_network(args: argparse.Namespace) -> "Network":
    """A ring of stimulus->excitatory pairs with cross-pair projections.

    The chain guarantees cross-board connectivity however the placer
    tiles the pairs over the boards, so the demo always exercises the
    inter-board exchange.
    """
    network = Network(seed=args.seed)
    excitatory = []
    for pair in range(args.pairs):
        stimulus = SpikeSourcePoisson(args.neurons, rate_hz=args.rate,
                                      label="stim-%d" % pair)
        population = Population(args.neurons, "lif", label="exc-%d" % pair)
        population.record(spikes=True)
        network.connect(stimulus, population,
                        FixedProbabilityConnector(p_connect=0.25, weight=0.9,
                                                  delay_range=(1, 6)))
        excitatory.append(population)
    for index, population in enumerate(excitatory):
        network.connect(population,
                        excitatory[(index + 1) % len(excitatory)],
                        FixedProbabilityConnector(p_connect=0.1, weight=0.4,
                                                  delay_range=(1, 12)))
    return network


def cmd_cluster(args: argparse.Namespace) -> int:
    """Dispatch the ``cluster`` subcommand group (currently: demo)."""
    from repro.cluster import BoardTopology, ClusterApplication

    try:
        boards_x, boards_y = (int(part) for part in args.boards.split("x"))
    except ValueError:
        boards_x = boards_y = 0
    if boards_x < 1 or boards_y < 1:
        print("error: --boards must look like 2x2")
        return 2
    if args.workers < 1:
        print("error: --workers must be at least 1")
        return 2
    config = MachineConfig.multi_board(boards_x, boards_y,
                                       board_width=args.board_width,
                                       board_height=args.board_height,
                                       cores_per_chip=args.cores)
    topology = BoardTopology(config)
    print("Board topology: %d boards of %dx%d chips (%d chips, %d cores)"
          % (topology.n_boards, topology.board_width, topology.board_height,
             config.n_chips, config.n_cores))
    print(topology.ascii_diagram())

    def build_machine() -> SpiNNakerMachine:
        machine = SpiNNakerMachine(MachineConfig.multi_board(
            boards_x, boards_y, board_width=args.board_width,
            board_height=args.board_height, cores_per_chip=args.cores))
        BootController(machine, seed=args.seed).boot()
        return machine

    results = {}
    reports = {}
    for workers in sorted({1, args.workers}):
        application = ClusterApplication(
            build_machine(), _cluster_network(args), seed=args.seed,
            max_neurons_per_core=args.neurons_per_core,
            workers=workers, account_transport=True)
        results[workers] = application.run(args.duration)
        reports[workers] = application.report

    rows = []
    for workers, result in results.items():
        report = reports[workers]
        rows.append([str(workers), "%d" % result.total_spikes(),
                     "%d" % report.cross_board_spikes,
                     "%d" % report.inter_board_traversals,
                     "%d" % report.lookahead,
                     "%d" % report.supersteps,
                     "%.3f" % report.wall_s,
                     "%.3f" % report.total_compute_s,
                     "%.2f" % report.speedup_bound])
    _print_table(rows, header=["workers", "spikes", "cross-board spikes",
                               "inter-board hops", "lookahead",
                               "supersteps", "wall s", "compute s",
                               "speedup bound"])

    reference = results[1]
    identical = all(
        other.spikes == reference.spikes
        and other.delivered_charge_na == reference.delivered_charge_na
        and all(np.array_equal(other.spike_counts[label],
                               reference.spike_counts[label])
                for label in reference.spike_counts)
        for other in results.values())
    print("  worker-count independence: %s"
          % ("IDENTICAL" if identical else "DIVERGED"))

    verdict = "not checked (--no-verify)"
    equivalent = True
    if args.verify:
        machine = build_machine()
        application = NeuralApplication(
            machine, _cluster_network(args),
            max_neurons_per_core=args.neurons_per_core, seed=args.seed,
            transport="fabric", stagger_us=0.0)
        unsharded = application.run(args.duration)
        equivalent = (
            unsharded.total_spikes() == reference.total_spikes()
            and unsharded.delivered_charge_na == reference.delivered_charge_na
            and all(np.array_equal(unsharded.spike_counts[label],
                                   reference.spike_counts[label])
                    for label in unsharded.spike_counts)
            and all(sorted(unsharded.spikes[label])
                    == sorted(reference.spikes[label])
                    for label in unsharded.spikes))
        verdict = "IDENTICAL" if equivalent else "DIVERGED"
    print("  unsharded-engine equivalence: %s" % verdict)
    return 0 if (identical and equivalent) else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="spinnaker-repro",
        description="SpiNNaker architecture reproduction (Furber & Brown, "
                    "DATE 2011)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="machine-scale headline numbers")

    boot = subparsers.add_parser("boot", help="boot a simulated machine")
    boot.add_argument("--width", type=int, default=8)
    boot.add_argument("--height", type=int, default=8)
    boot.add_argument("--cores", type=int, default=18)
    boot.add_argument("--seed", type=int, default=1)

    subparsers.add_parser("codes", help="compare the inter-chip link codes")

    run = subparsers.add_parser("run", help="run a small SNN on the machine")
    run.add_argument("--width", type=int, default=4)
    run.add_argument("--height", type=int, default=4)
    run.add_argument("--cores", type=int, default=8)
    run.add_argument("--neurons", type=int, default=100)
    run.add_argument("--neurons-per-core", type=int, default=32)
    run.add_argument("--rate", type=float, default=60.0)
    run.add_argument("--duration", type=float, default=100.0)
    run.add_argument("--seed", type=int, default=7)

    saturation = subparsers.add_parser(
        "saturation", help="lightly-loaded-regime headroom check")
    saturation.add_argument("--width", type=int, default=48)
    saturation.add_argument("--height", type=int, default=48)
    saturation.add_argument("--cores", type=int, default=20)
    saturation.add_argument("--neurons-per-core", type=int, default=1000)
    saturation.add_argument("--mean-rate", type=float, default=10.0)

    alloc = subparsers.add_parser(
        "alloc", help="multi-tenant machine allocation")
    alloc_sub = alloc.add_subparsers(dest="alloc_command", required=True)
    for name, help_text in (("demo", "run one synthetic job stream"),
                            ("policies", "compare placement policies on "
                                         "the same stream")):
        sub = alloc_sub.add_parser(name, help=help_text)
        sub.add_argument("--width", type=int, default=16)
        sub.add_argument("--height", type=int, default=16)
        sub.add_argument("--cores", type=int, default=4)
        sub.add_argument("--jobs", type=int, default=40)
        sub.add_argument("--tenants", type=int, default=3)
        sub.add_argument("--interarrival", type=float, default=20.0,
                         help="mean interarrival time in ms")
        sub.add_argument("--hold", type=float, default=120.0,
                         help="mean lease hold time in ms")
        sub.add_argument("--min-side", type=int, default=1)
        sub.add_argument("--max-side", type=int, default=4)
        sub.add_argument("--fault-chips", type=int, default=0,
                         help="number of chips to fail before allocating")
        sub.add_argument("--seed", type=int, default=1)
        if name == "demo":
            sub.add_argument("--policy", choices=PLACEMENT_POLICIES,
                             default="first-fit")

    serve = alloc_sub.add_parser(
        "serve", help="run the HTTP/JSON allocation service")
    serve.add_argument("--width", type=int, default=16)
    serve.add_argument("--height", type=int, default=16)
    serve.add_argument("--cores", type=int, default=1)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--duration", type=float, default=0.0,
                       help="serve for this many seconds, then drain "
                            "(0 = until interrupted)")
    serve.add_argument("--time-scale", type=float, default=1.0,
                       help="simulated us advanced per wall us")
    serve.add_argument("--max-queue-depth", type=int, default=64,
                       help="admission-queue depth beyond which creates "
                            "are shed with 429")

    client = alloc_sub.add_parser(
        "client", help="drive sessionful jobs against a service")
    client.add_argument("--url", default=None,
                        help="service base URL (default: start an "
                             "embedded service)")
    client.add_argument("--width", type=int, default=16,
                        help="embedded-service machine width")
    client.add_argument("--height", type=int, default=16,
                        help="embedded-service machine height")
    client.add_argument("--jobs", type=int, default=8)
    client.add_argument("--tenants", type=int, default=2)
    client.add_argument("--side", type=int, default=2,
                        help="requested job side (side x side chips)")
    client.add_argument("--keepalive-ms", type=float, default=1000.0)

    compile_parser = subparsers.add_parser(
        "compile", help="the pass-based mapping compiler")
    compile_sub = compile_parser.add_subparsers(dest="compile_command",
                                                required=True)
    report = compile_sub.add_parser(
        "report", help="compile a network and print per-pass timings, "
                       "cache hit rates and artifact counts")
    report.add_argument("--chips", type=int, default=16,
                        help="approximate machine size in chips")
    report.add_argument("--cores", type=int, default=4)
    report.add_argument("--neurons", type=int, default=384,
                        help="neurons per population")
    report.add_argument("--neurons-per-core", type=int, default=48)
    report.add_argument("--rate", type=float, default=30.0)
    report.add_argument("--seed", type=int, default=11)
    report.add_argument("--condemn", type=int, default=1,
                        help="chips to condemn afterwards, each triggering "
                             "an incremental re-map (0 = cold compile only)")

    transport = subparsers.add_parser(
        "transport", help="compiled fabric vs per-packet event transport")
    transport_sub = transport.add_subparsers(dest="transport_command",
                                             required=True)
    demo = transport_sub.add_parser(
        "demo", help="run one seeded network under both transports")
    demo.add_argument("--chips", type=int, default=16,
                      help="approximate machine size in chips")
    demo.add_argument("--neurons", type=int, default=384,
                      help="neurons per population (stimulus + excitatory)")
    demo.add_argument("--neurons-per-core", type=int, default=48)
    demo.add_argument("--rate", type=float, default=30.0,
                      help="stimulus rate in Hz; keep modest so the event "
                           "transport stays in the lightly-loaded regime")
    demo.add_argument("--duration", type=float, default=60.0)
    demo.add_argument("--seed", type=int, default=11)

    cluster = subparsers.add_parser(
        "cluster", help="multi-board sharded simulation")
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)
    cluster_demo = cluster_sub.add_parser(
        "demo", help="run one seeded network sharded by board, checking "
                     "worker-count independence and unsharded equivalence")
    cluster_demo.add_argument("--boards", default="2x2",
                              help="board grid, e.g. 2x2")
    cluster_demo.add_argument("--board-width", type=int, default=4,
                              help="chips per board along x (8 for the "
                                   "production 48-chip board)")
    cluster_demo.add_argument("--board-height", type=int, default=3,
                              help="chips per board along y (6 for the "
                                   "production 48-chip board)")
    cluster_demo.add_argument("--cores", type=int, default=4)
    cluster_demo.add_argument("--pairs", type=int, default=4,
                              help="stimulus->excitatory population pairs")
    cluster_demo.add_argument("--neurons", type=int, default=96,
                              help="neurons per population")
    cluster_demo.add_argument("--neurons-per-core", type=int, default=32)
    cluster_demo.add_argument("--rate", type=float, default=40.0)
    cluster_demo.add_argument("--duration", type=float, default=60.0)
    cluster_demo.add_argument("--workers", type=int, default=2)
    cluster_demo.add_argument("--seed", type=int, default=7)
    cluster_demo.add_argument("--no-verify", dest="verify",
                              action="store_false",
                              help="skip the unsharded-engine equivalence "
                                   "run")
    return parser


_COMMANDS = {
    "info": cmd_info,
    "boot": cmd_boot,
    "codes": cmd_codes,
    "run": cmd_run,
    "saturation": cmd_saturation,
    "alloc": cmd_alloc,
    "compile": cmd_compile,
    "transport": cmd_transport,
    "cluster": cmd_cluster,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by the ``spinnaker-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
