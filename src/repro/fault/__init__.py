"""Fault injection and fault-tolerance experiments (Section 2.2).

"Designers are increasingly tasked with building reliable systems out of
fundamentally unreliable components."  This package injects the three kinds
of failure the paper discusses — inter-chip link failures, processor-core
failures and neuron-level failures — and provides campaign helpers used by
the fault-tolerance benchmarks (E6, E9, E13).
"""

from repro.fault.injection import FaultCampaign, FaultInjector, FaultPlan

__all__ = [
    "FaultCampaign",
    "FaultInjector",
    "FaultPlan",
]
