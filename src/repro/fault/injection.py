"""Fault injection into the machine model.

The injector operates on a :class:`~repro.core.machine.SpiNNakerMachine`
and supports the failure modes the paper designs against:

* **link failures** — an inter-chip link stops carrying packets (the event
  that triggers emergency routing and, eventually, permanent re-routing by
  the Monitor Processor);
* **core failures** — a processor fails its self-test or is mapped out at
  run time (the event the monitor-election and neighbour-repair mechanisms
  must survive);
* **neuron failures** — individual neurons fall silent (the biological
  failure mode whose graceful degradation Section 5.4 describes).

:class:`FaultCampaign` runs a caller-supplied experiment under a sweep of
failure rates and collects the results, which is the shape of every
fault-tolerance benchmark in the reproduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import SpiNNakerMachine


@dataclass
class FaultPlan:
    """A concrete set of faults to apply to a machine."""

    failed_links: List[Tuple[ChipCoordinate, Direction]] = field(default_factory=list)
    failed_cores: List[Tuple[ChipCoordinate, int]] = field(default_factory=list)

    @property
    def n_faults(self) -> int:
        """Total number of injected faults."""
        return len(self.failed_links) + len(self.failed_cores)


class FaultInjector:
    """Samples and applies fault plans to a machine."""

    def __init__(self, machine: SpiNNakerMachine,
                 seed: Optional[int] = None) -> None:
        self.machine = machine
        self.rng = random.Random(seed)
        self.applied = FaultPlan()

    # ------------------------------------------------------------------
    # Link faults
    # ------------------------------------------------------------------
    def fail_link(self, coordinate: ChipCoordinate,
                  direction: Direction) -> None:
        """Fail one specific (bidirectional) inter-chip link."""
        self.machine.fail_link(coordinate, direction)
        self.applied.failed_links.append((coordinate, direction))

    def fail_random_links(self, fraction: float) -> List[Tuple[ChipCoordinate, Direction]]:
        """Fail a random ``fraction`` of all inter-chip links."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        all_links = list(self.machine.links.keys())
        n_failures = int(round(fraction * len(all_links)))
        chosen = self.rng.sample(all_links, n_failures)
        for coordinate, direction in chosen:
            self.fail_link(coordinate, direction)
        return chosen

    def repair_all_links(self) -> None:
        """Undo every injected link failure."""
        for coordinate, direction in self.applied.failed_links:
            self.machine.repair_link(coordinate, direction)
        self.applied.failed_links.clear()

    # ------------------------------------------------------------------
    # Core faults
    # ------------------------------------------------------------------
    def fail_core(self, coordinate: ChipCoordinate, core_id: int) -> None:
        """Fail one specific processor core."""
        self.machine.chips[coordinate].cores[core_id].run_self_test(False)
        self.applied.failed_cores.append((coordinate, core_id))

    def fail_random_cores(self, fraction: float) -> List[Tuple[ChipCoordinate, int]]:
        """Fail a random ``fraction`` of all processor cores."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        all_cores = [(coordinate, core.core_id)
                     for coordinate, chip in self.machine.chips.items()
                     for core in chip.cores]
        n_failures = int(round(fraction * len(all_cores)))
        chosen = self.rng.sample(all_cores, n_failures)
        for coordinate, core_id in chosen:
            self.fail_core(coordinate, core_id)
        return chosen

    # ------------------------------------------------------------------
    # Neuron faults (no machine needed; exposed here for symmetry)
    # ------------------------------------------------------------------
    def neuron_failure_mask(self, n_neurons: int, fraction: float) -> List[bool]:
        """A boolean mask marking which of ``n_neurons`` have failed."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        n_failures = int(round(fraction * n_neurons))
        failed = set(self.rng.sample(range(n_neurons), n_failures))
        return [i in failed for i in range(n_neurons)]


@dataclass
class FaultCampaign:
    """Run an experiment function across a sweep of failure rates.

    The experiment callable receives ``(failure_rate, trial_index, seed)``
    and returns a dictionary of metrics; the campaign collects one row per
    (rate, trial) pair, which the fault-tolerance benchmarks tabulate.
    """

    failure_rates: Sequence[float]
    trials_per_rate: int = 3
    base_seed: int = 1234

    def run(self, experiment: Callable[[float, int, int], Dict[str, float]]
            ) -> List[Dict[str, float]]:
        """Execute the sweep and return all result rows."""
        rows: List[Dict[str, float]] = []
        for rate in self.failure_rates:
            for trial in range(self.trials_per_rate):
                seed = self.base_seed + trial * 7919 + int(rate * 1e6)
                metrics = experiment(rate, trial, seed)
                row = {"failure_rate": rate, "trial": float(trial)}
                row.update(metrics)
                rows.append(row)
        return rows

    @staticmethod
    def summarise(rows: List[Dict[str, float]],
                  metric: str) -> List[Tuple[float, float]]:
        """Mean of ``metric`` per failure rate, sorted by rate."""
        by_rate: Dict[float, List[float]] = {}
        for row in rows:
            by_rate.setdefault(row["failure_rate"], []).append(row[metric])
        return [(rate, sum(values) / len(values))
                for rate, values in sorted(by_rate.items())]
