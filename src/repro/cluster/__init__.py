"""Multi-board sharded simulation (``repro.cluster``).

The paper's machine is assembled from 48-chip boards scaled towards a
million cores; everything below one board is a PCB trace, everything
between boards goes through slower serialising cables.  This package
models that assembly and exploits it for execution:

* :class:`~repro.cluster.board.BoardTopology` — the board grid of a
  multi-board :class:`~repro.core.machine.MachineConfig` (board ids,
  tile rectangles, the inter-board link census, an ASCII diagram);
* :class:`~repro.cluster.shard.BoardEngine` — a deterministic,
  tick-synchronous execution shard over one board's compiled sub-context
  (see the ShardByBoard pass of :mod:`repro.compile`);
* :class:`~repro.cluster.fused.FusedBoardEngine` — the vectorised
  drop-in replacement (and the runner's default): per-model stacked
  state blocks, one shared deferred-event ring, one fused scatter per
  batch list — bit-identical to the per-core engine, several times
  faster per tick;
* :class:`~repro.cluster.exchange.ExchangePlan` and the two exchange
  implementations — the cluster's spike data path: worker-side routing
  tables, preallocated shared-memory regions of packed ``uint32``
  batches, and the conservative-lookahead super-step schedule
  (``L = 1 + d_min`` ticks between barriers);
* :class:`~repro.cluster.application.ClusterApplication` — the sharded
  runner: one engine per board, spread over a pool of persistent worker
  processes exchanging cross-board spike batches through shared memory
  at super-step barriers.  Results are bit-identical whatever the
  worker count or lookahead depth, and spike-train-equivalent to the
  unsharded on-machine engine
  (``NeuralApplication(transport="fabric", stagger_us=0)``).
"""

from repro.cluster.application import (
    ENGINES,
    ClusterApplication,
    ClusterReport,
    ClusterWorkerError,
)
from repro.cluster.board import BoardTopology
from repro.cluster.exchange import (
    ExchangePlan,
    InProcessExchange,
    SharedMemoryExchange,
    superstep_schedule,
)
from repro.cluster.fused import FusedBoardEngine
from repro.cluster.shard import BoardEngine, ShardResult

__all__ = [
    "BoardEngine",
    "BoardTopology",
    "ClusterApplication",
    "ClusterReport",
    "ClusterWorkerError",
    "ENGINES",
    "ExchangePlan",
    "FusedBoardEngine",
    "InProcessExchange",
    "SharedMemoryExchange",
    "ShardResult",
    "superstep_schedule",
]
