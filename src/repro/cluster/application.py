"""The sharded cluster runner (:class:`ClusterApplication`).

Runs a compiled network as one :class:`~repro.cluster.shard.BoardEngine`
per board, spread over a pool of persistent worker processes.  The
execution is a conservative-lookahead PDES over the board graph (see
:mod:`repro.cluster.exchange` for the data path):

* boards run ``L = 1 + d_min`` ticks between barriers (``d_min`` = the
  minimum cross-board synaptic delay, decoded per board pair by the
  ShardByBoard pass) — cross-board spikes cannot arrive sooner, so the
  barrier amortises over the whole super-step;
* same-board traffic is delivered inside the owning worker and never
  serialised at all;
* cross-board batches travel as packed ``uint32`` records through
  preallocated shared-memory regions, routed worker-side via the
  ``key -> destination boards`` table — the parent joins a shared
  *split barrier* per super-step and (with ``account_transport=True``)
  replays the same shared regions through the transport fabric, but is
  never on the per-spike data path;
* the super-step schedule is shipped to the workers up front, so the
  only synchronisation left is one ``multiprocessing.Barrier`` per
  super-step: workers publish their batches, prefetch the next
  super-step's stimulus while the slowest party catches up, and resume
  compute the moment the barrier opens — the parent's accounting of the
  previous bank overlaps the workers' compute instead of gating it;
* boards are stepped by the **fused engine** by default
  (:class:`~repro.cluster.fused.FusedBoardEngine`: per-model stacked
  state blocks, one shared event ring, one scatter per batch list);
  ``engine="percore"`` selects the reference per-core
  :class:`~repro.cluster.shard.BoardEngine`, which computes the
  bit-identical run one core at a time.

Three properties the tests and benchmark E19 rely on:

* **Worker-count and lookahead independence** — boards are stepped in
  canonical board order, inbound regions are drained in canonical
  source order, and ring-buffer accumulation is exact (fixed-point
  weights), so ``workers=4`` at full lookahead produces results
  bit-identical to ``workers=1`` exchanging every tick.
* **Engine equivalence** — the shard semantics replicate the unsharded
  on-machine engine at zero timer stagger
  (``NeuralApplication(transport="fabric", stagger_us=0)``): identical
  spike trains, spike counts, synaptic-event totals and delivered
  charge.
* **Inter-board accounting** — with ``account_transport=True`` every
  outbound batch is replayed through the compiled route programs
  (cross-board batches from their exchange regions, local-only batches
  from count-only stub records), so routers, links and NoCs show the
  same loads the unsharded fabric transport would record.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.exchange import (
    ExchangePlan,
    InProcessExchange,
    SharedMemoryExchange,
    superstep_schedule,
)
from repro.cluster.fused import FusedBoardEngine
from repro.cluster.shard import BoardEngine, ShardResult
from repro.compile import MappingPipeline
from repro.compile.context import BoardContext
from repro.core.machine import SpiNNakerMachine
from repro.neuron.network import Network
from repro.profile import ProfileRegistry, perf_now
from repro.profile import enabled as profile_enabled
from repro.router.fabric import TransportFabric
from repro.runtime.application import ApplicationResult

__all__ = ["ClusterApplication", "ClusterReport", "ClusterWorkerError"]

#: Set (to anything but ``0``/empty) to enable the per-stage worker
#: timers without touching code.  Kept as the cluster-specific alias of
#: the process-wide ``REPRO_PROFILE`` flag (either enables them); the
#: counters themselves now live on a :class:`repro.profile.ProfileRegistry`
#: per worker, merged into :attr:`ClusterApplication.registry` over the
#: existing result pipes.
PROFILE_ENV = "REPRO_CLUSTER_PROFILE"

#: The per-worker wall-clock decomposition the profiler reports:
#: stepping neurons + local delivery / packing outbound batches into
#: shared memory / draining + applying inbound regions / blocked waiting
#: for the next barrier command.
STAGES = ("compute", "serialize", "exchange", "barrier_wait")

#: The selectable board-engine implementations; both produce
#: bit-identical results (pinned by ``tests/test_cluster_fused.py``).
ENGINES = {"fused": FusedBoardEngine, "percore": BoardEngine}


class ClusterWorkerError(RuntimeError):
    """A pool worker died mid-run (crash, kill, ``os._exit``...).

    Carries which worker it was, the boards it owned and the process
    exit code, so a crashed shard is a diagnosis instead of a bare
    ``EOFError`` from a pipe (or a silent hang).
    """

    def __init__(self, worker: int, boards: Sequence[int],
                 exitcode: Optional[int]) -> None:
        self.worker = worker
        self.boards = tuple(boards)
        self.exitcode = exitcode
        super().__init__(
            "cluster worker %d (boards %s) died with exit code %s before "
            "completing the run" % (worker, list(self.boards), exitcode))


@dataclass
class ClusterReport:
    """Execution statistics of one sharded run."""

    n_boards: int
    workers: int
    n_ticks: int
    wall_s: float = 0.0
    #: Ticks per super-step this run used (``1 + d_min`` unless capped).
    lookahead: int = 1
    #: Board-engine implementation the run used (:data:`ENGINES` key).
    engine: str = "fused"
    #: Minimum cross-board synaptic delay (``0``: no synapse crosses a
    #: board boundary, so lookahead was unconstrained).
    d_min: int = 0
    #: Barriers taken (``ceil(n_ticks / lookahead)``).
    supersteps: int = 0
    #: Seconds each board's engine spent computing (stepping + local
    #: same-board delivery; exchange work is profiled separately).
    board_compute_s: Dict[int, float] = field(default_factory=dict)
    #: Board -> worker assignment used by the run.
    assignment: Dict[int, int] = field(default_factory=dict)
    #: Cross-board batch copies / spikes that went through the exchange
    #: (same-board traffic is delivered worker-locally and not counted).
    exchanged_batches: int = 0
    exchanged_spikes: int = 0
    #: Synonyms of the exchanged figures, kept because the exchange now
    #: carries exactly the traffic that crosses board cables.
    cross_board_batches: int = 0
    cross_board_spikes: int = 0
    #: Board-to-board link traversals replayed through the transport
    #: fabric (``account_transport=True`` only).
    inter_board_traversals: int = 0
    #: Per-worker stage seconds (:data:`STAGES`), filled when profiling
    #: is enabled (``profile=True`` or :data:`PROFILE_ENV`).  The serial
    #: path reports itself as worker ``0``.
    worker_stages: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: Parent-side seconds spent scanning regions for the report's
    #: traffic counters and the fabric replay.
    parent_exchange_s: float = 0.0
    #: Size of the shared-memory segment backing the exchange (pool
    #: runs only; the serial path exchanges in-process).
    exchange_segment_bytes: int = 0

    @property
    def total_compute_s(self) -> float:
        """Engine compute summed over every board."""
        return sum(self.board_compute_s.values())

    def worker_compute_s(self) -> List[float]:
        """Engine compute binned by the worker that ran each board."""
        bins = [0.0] * max(self.workers, 1)
        for board, seconds in self.board_compute_s.items():
            bins[self.assignment.get(board, 0)] += seconds
        return bins

    @property
    def critical_path_s(self) -> float:
        """The busiest worker's compute — the parallel lower bound."""
        return max(self.worker_compute_s(), default=0.0)

    @property
    def speedup_bound(self) -> float:
        """Load-balance bound on pool speedup: total / busiest worker.

        What a perfectly-overlapped pool of this run's worker count
        could gain over one worker, given how evenly the boards'
        compute divided; barrier and exchange overheads push the
        measured wall-clock speedup below this.
        """
        critical = self.critical_path_s
        if critical <= 0.0:
            return 1.0
        return self.total_compute_s / critical

    def stage_total(self, stage: str) -> float:
        """One stage's seconds summed over every profiled worker."""
        return sum(stages.get(stage, 0.0)
                   for stages in self.worker_stages.values())


def _assign_boards(boards: List[int], workers: int,
                   weights: Optional[Dict[int, int]] = None,
                   strategy: str = "lpt") -> Dict[int, int]:
    """Assign boards to workers.

    ``lpt`` (the default) is greedy longest-processing-time: boards are
    taken heaviest-first (weight = placed-vertex count) and each lands
    on the least-loaded worker, which raises the load-balance
    ``speedup_bound`` on skewed placements.  ``round-robin`` keeps the
    PR 5 behaviour and stays reachable for the determinism tests.  Both
    are fully deterministic (ties break on lowest board id / lowest
    worker index).
    """
    if strategy == "round-robin":
        return {board: index % workers
                for index, board in enumerate(boards)}
    if strategy != "lpt":
        raise ValueError("unknown assignment strategy %r" % (strategy,))
    weights = weights or {}
    loads = [0.0] * workers
    assignment: Dict[int, int] = {}
    for board in sorted(boards, key=lambda b: (-weights.get(b, 1), b)):
        worker = min(range(workers), key=lambda w: (loads[w], w))
        assignment[board] = worker
        loads[worker] += weights.get(board, 1)
    return {board: assignment[board] for board in boards}


def _stage_dict(snapshot) -> Dict[str, float]:
    """A registry snapshot as the stable ``worker_stages`` shape.

    Every :data:`STAGES` key is present (0.0 when the stage never ran);
    stage names outside the canonical set — e.g. the parent's own
    accounting span on the serial path — are left to the registry.
    """
    stages = dict.fromkeys(STAGES, 0.0)
    for path, _calls, cum_s, _self_s in snapshot:
        name = path[-1]
        if name in stages:
            stages[name] += cum_s
    return stages


def _apply_inbound(engines: Dict[int, BoardEngine], my_boards: List[int],
                   exchange, bank: int) -> None:
    """Drain a bank's inbound regions into the owned engines.

    Destination boards and their source regions are visited in
    canonical order — the same order whatever the worker count.
    """
    plan = exchange.plan
    for dst in my_boards:
        engine = engines[dst]
        for src, _ in plan.inbound_pairs(dst):
            engine.apply_remote(exchange.read(src, dst, bank))


def _watch_workers(processes, stop_conn, barrier) -> None:
    """Parent-side watchdog: break the split barrier if a worker dies.

    Blocks on the worker process sentinels plus a stop pipe; a sentinel
    firing while the run is live means a worker died mid-barrier-cycle,
    so every other party would wait forever — ``barrier.abort()`` turns
    the hang into a ``BrokenBarrierError`` in the parent and the
    surviving workers.  (After the run the parent signals the stop pipe
    first, so normal worker exits never abort anything that matters —
    nobody waits on the barrier again.)
    """
    sentinels = [process.sentinel for process in processes]
    ready = connection_wait(sentinels + [stop_conn])
    if stop_conn in ready:
        return
    barrier.abort()


def _shard_worker(conn, contexts: Dict[int, BoardContext], populations,
                  seed: Optional[int], timestep_ms: float,
                  plan: ExchangePlan, exchange: SharedMemoryExchange,
                  barrier, engine_name: str, profile: bool) -> None:
    """Worker-process loop: run the whole super-step schedule against a
    shared split barrier; the pipe carries only the run request and the
    final results.

    Per super-step: wait at the barrier (every writer of the previous
    bank has finished), apply the previous bank's inbound batches, then
    compute and publish this super-step — while the parent accounts the
    previous bank concurrently.  Before blocking on the next barrier the
    worker prefetches the coming super-step's stimulus masks, so barrier
    wait time does useful work.  A broken barrier means some process
    died; the worker just exits (the parent diagnoses who).
    """
    engine_cls = ENGINES[engine_name]
    engines = {board: engine_cls(context, populations, seed, timestep_ms,
                                 export_keys=plan.export_keys[board])
               for board, context in sorted(contexts.items())}
    my_boards = sorted(contexts)
    # A worker-local registry; its snapshot rides the existing result
    # pipe and the parent merges it.  A disabled stage entry is one flag
    # check, so the un-profiled tick loop stays clean of clock reads.
    registry = ProfileRegistry(enabled=profile)
    barrier_stage = registry.stage("barrier_wait")
    exchange_stage = registry.stage("exchange")
    serialize_stage = registry.stage("serialize")
    try:
        message = conn.recv()
        if message[0] != "run":  # pragma: no cover - protocol misuse
            raise ValueError("unknown worker message %r" % (message[0],))
        _, n_ticks, duration_ms = message
        prev_bank = None
        try:
            for index, (start, length) in enumerate(
                    superstep_schedule(n_ticks, plan.lookahead)):
                bank = index % 2
                with barrier_stage:
                    barrier.wait()
                if prev_bank is not None:
                    with exchange_stage:
                        _apply_inbound(engines, my_boards, exchange,
                                       prev_bank)
                exchange.begin(bank, my_boards)
                for tick in range(start, start + length):
                    for board in my_boards:
                        exported = engines[board].step(tick)
                        if exported:
                            with serialize_stage:
                                exchange.write_board_batches(board, bank,
                                                             tick, exported)
                upto = min(start + 2 * length, n_ticks) - 1
                for board in my_boards:
                    engines[board].prefetch_sources(upto)
                prev_bank = bank
            # Final barrier: every writer of the last bank is done, so
            # the in-flight deliveries can be drained (the on-machine
            # run drains after halting, too).
            with barrier_stage:
                barrier.wait()
        except threading.BrokenBarrierError:
            return
        if prev_bank is not None:
            with exchange_stage:
                _apply_inbound(engines, my_boards, exchange, prev_bank)
        results = {board: engine.finish(duration_ms)
                   for board, engine in engines.items()}
        if profile:
            # The engines keep their own always-on counters; adopt them
            # so "compute" sits beside the stage spans.
            registry.add("compute", sum(engine.compute_s
                                        for engine in engines.values()))
        conn.send((results, registry.snapshot() if profile else None))
    finally:
        conn.close()


class ClusterApplication:
    """Compile a network once, run it sharded by board."""

    def __init__(self, machine: SpiNNakerMachine, network: Network,
                 seed: Optional[int] = None,
                 max_neurons_per_core: int = 256,
                 placement_strategy: str = "locality",
                 workers: int = 1,
                 account_transport: bool = False,
                 lookahead: Optional[int] = None,
                 assignment: str = "lpt",
                 profile: Optional[bool] = None,
                 engine: str = "fused") -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if lookahead is not None and lookahead < 1:
            raise ValueError("lookahead must be at least 1")
        if assignment not in ("lpt", "round-robin"):
            raise ValueError("unknown assignment strategy %r" % (assignment,))
        if engine not in ENGINES:
            raise ValueError("unknown engine %r (one of %s)"
                             % (engine, sorted(ENGINES)))
        self.machine = machine
        self.network = network
        self.timestep_ms = network.timestep_ms
        self.seed = seed if seed is not None else (network.seed or 0)
        self.expansion_seed = seed if seed is not None else network.seed
        self.max_neurons_per_core = max_neurons_per_core
        self.placement_strategy = placement_strategy
        self.workers = workers
        self.account_transport = account_transport
        #: ``None``: run at the deepest safe lookahead (``1 + d_min``);
        #: an explicit depth is clamped to that bound.
        self.lookahead = lookahead
        self.assignment = assignment
        #: Board-engine implementation (:data:`ENGINES` key) — the
        #: fused engine unless the per-core reference is requested.
        self.engine = engine
        self.profile = (
            os.environ.get(PROFILE_ENV, "") not in ("", "0")
            or profile_enabled()
            if profile is None else bool(profile))
        #: Merged stage registry of the most recent :meth:`run` — worker
        #: snapshots plus the parent's accounting span; feeds
        #: ``flatten()`` -> ``profile_*`` bench keys.
        self.registry = ProfileRegistry(enabled=self.profile)

        self.pipeline: Optional[MappingPipeline] = None
        self.board_contexts: Dict[int, BoardContext] = {}
        #: (source board, destination board) -> minimum cross-board
        #: synaptic delay, from the ShardByBoard pass.
        self.board_pair_min_delay: Dict[Tuple[int, int], int] = {}
        self.fabric: Optional[TransportFabric] = None
        self.result: Optional[ApplicationResult] = None
        self.report: Optional[ClusterReport] = None
        self.unmatched_packets = 0
        #: Shared-memory segment names of the most recent pool run —
        #: all unlinked by the time :meth:`run` returns (leak check).
        self.last_exchange_segments: List[str] = []
        self._prepared = False

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Run the mapping pipeline with the ShardByBoard pass enabled."""
        if self._prepared:
            return
        self.pipeline = MappingPipeline(
            self.machine, self.network, seed=self.seed,
            expansion_seed=self.expansion_seed,
            max_neurons_per_core=self.max_neurons_per_core,
            placement_strategy=self.placement_strategy,
            compile_transport=self.account_transport,
            shard_by_board=True)
        ctx = self.pipeline.run()
        self.board_contexts = dict(sorted(ctx.board_contexts.items()))
        self.board_pair_min_delay = dict(ctx.board_pair_min_delay)
        if self.account_transport:
            self.fabric = TransportFabric(self.machine)
            self.fabric.adopt(ctx.route_programs)
        self._prepared = True

    @property
    def n_boards(self) -> int:
        """Boards holding at least one placed vertex."""
        return len(self.board_contexts)

    def _populations(self) -> Dict[str, object]:
        return {population.label: population
                for population in self.network.populations}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_ms: float, workers: Optional[int] = None,
            lookahead: Optional[int] = None,
            engine: Optional[str] = None) -> ApplicationResult:
        """Run for ``duration_ms`` of biological time; return the merged
        result (also kept on :attr:`result`, statistics on
        :attr:`report`).  ``workers``, ``lookahead`` and ``engine``
        override the constructor's values for this run only."""
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        if lookahead is not None and lookahead < 1:
            raise ValueError("lookahead must be at least 1")
        engine = engine if engine is not None else self.engine
        if engine not in ENGINES:
            raise ValueError("unknown engine %r (one of %s)"
                             % (engine, sorted(ENGINES)))
        self.prepare()
        n_ticks = int(round(duration_ms / self.timestep_ms))
        effective = workers if workers is not None else self.workers
        if effective < 1:
            raise ValueError("workers must be at least 1")
        boards = sorted(self.board_contexts)
        effective = max(1, min(effective, len(boards))) if boards else 1
        plan = ExchangePlan.build(
            self.board_contexts, self.board_pair_min_delay,
            lookahead=lookahead if lookahead is not None else self.lookahead,
            account_transport=self.account_transport)
        weights = {board: self.board_contexts[board].n_cores
                   for board in boards}
        report = ClusterReport(
            n_boards=len(boards), workers=effective, n_ticks=n_ticks,
            lookahead=plan.lookahead, engine=engine, d_min=plan.d_min or 0,
            supersteps=len(superstep_schedule(n_ticks, plan.lookahead)),
            assignment=_assign_boards(boards, effective, weights,
                                      self.assignment))
        # The fabric's counters are cumulative over the application's
        # lifetime; the report carries this run's delta.
        traversals_before = (self.fabric.inter_board_traversals
                             if self.fabric is not None else 0)
        # Fresh per run, so a bench flattening it sees this run only.
        self.registry = ProfileRegistry(enabled=self.profile)
        began = perf_now()
        if effective == 1:
            shard_results = self._run_serial(n_ticks, duration_ms, report,
                                             plan, engine)
        else:
            shard_results = self._run_pool(n_ticks, duration_ms, report,
                                           plan, engine)
        report.wall_s = perf_now() - began
        if self.fabric is not None:
            report.inter_board_traversals = (
                self.fabric.inter_board_traversals - traversals_before)
        for shard in shard_results:
            report.board_compute_s[shard.board] = shard.compute_s
        self.unmatched_packets = sum(shard.unmatched_packets
                                     for shard in shard_results)
        self.result = ApplicationResult.merge(
            [shard.result for shard in shard_results])
        self.result.duration_ms = duration_ms
        self.report = report
        return self.result

    # ------------------------------------------------------------------
    # Accounting (the only per-batch work left on the parent)
    # ------------------------------------------------------------------
    def _account_bank(self, exchange, bank: int, plan: ExchangePlan,
                      report: ClusterReport) -> None:
        """Scan one bank for the traffic counters and fabric replay.

        Reads only batch headers (key + count; payloads are skipped), so
        the parent's cost per super-step is proportional to the batch
        count, not the spike count.  Each outbound batch is replayed
        exactly once: cross-board batches from their first destination's
        region, local-only batches from their count-only stub record.
        """
        began = perf_now()
        fabric = self.fabric
        first_cross = plan.first_cross_destination
        for src in plan.boards:
            for dst in plan.boards:
                if (src, dst) not in plan.region_capacity:
                    continue
                for key, count in exchange.read_counts(src, dst, bank):
                    if dst != src:
                        report.exchanged_batches += 1
                        report.exchanged_spikes += count
                        report.cross_board_batches += 1
                        report.cross_board_spikes += count
                    if fabric is not None and (
                            dst == src or dst == first_cross.get(key)):
                        program = fabric.program_for(key)
                        if program is not None:
                            fabric.account_batch(program, count)
        elapsed = perf_now() - began
        report.parent_exchange_s += elapsed
        if self.registry.enabled:
            self.registry.add("parent_account", elapsed)

    # ------------------------------------------------------------------
    # Serial path (workers=1: same super-step schedule, no processes)
    # ------------------------------------------------------------------
    def _run_serial(self, n_ticks: int, duration_ms: float,
                    report: ClusterReport, plan: ExchangePlan,
                    engine: str) -> List[ShardResult]:
        populations = self._populations()
        engine_cls = ENGINES[engine]
        engines = {board: engine_cls(context, populations, self.seed,
                                     self.timestep_ms,
                                     export_keys=plan.export_keys[board])
                   for board, context in self.board_contexts.items()}
        my_boards = sorted(engines)
        exchange = InProcessExchange(plan)
        profile = self.profile
        registry = self.registry
        exchange_stage = registry.stage("exchange")
        serialize_stage = registry.stage("serialize")
        prev_bank = None
        for index, (start, length) in enumerate(
                superstep_schedule(n_ticks, plan.lookahead)):
            bank = index % 2
            if prev_bank is not None:
                with exchange_stage:
                    _apply_inbound(engines, my_boards, exchange, prev_bank)
            exchange.begin(bank, my_boards)
            for tick in range(start, start + length):
                for board in my_boards:
                    exported = engines[board].step(tick)
                    if exported:
                        with serialize_stage:
                            exchange.write_board_batches(board, bank, tick,
                                                         exported)
            self._account_bank(exchange, bank, plan, report)
            prev_bank = bank
        # The final super-step's batches still land in the ring buffers
        # (the on-machine run drains in-flight deliveries after halting).
        if prev_bank is not None:
            _apply_inbound(engines, my_boards, exchange, prev_bank)
        if profile:
            registry.add("compute", sum(engine.compute_s
                                        for engine in engines.values()))
            report.worker_stages[0] = _stage_dict(registry.snapshot())
        return [engines[board].finish(duration_ms) for board in my_boards]

    # ------------------------------------------------------------------
    # Pool path
    # ------------------------------------------------------------------
    def _run_pool(self, n_ticks: int, duration_ms: float,
                  report: ClusterReport, plan: ExchangePlan,
                  engine: str) -> List[ShardResult]:
        populations = self._populations()
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            mp_context = multiprocessing.get_context()
        by_worker: Dict[int, Dict[int, BoardContext]] = {}
        for board, worker in report.assignment.items():
            by_worker.setdefault(worker, {})[board] = (
                self.board_contexts[board])
        worker_boards = {worker: sorted(owned)
                         for worker, owned in by_worker.items()}
        exchange = SharedMemoryExchange(plan)
        self.last_exchange_segments = [exchange.name]
        report.exchange_segment_bytes = 4 * plan.total_words
        # One split barrier shared by every worker plus the parent: the
        # wait at super-step ``s`` is the only synchronisation point —
        # it certifies every bank-``(s-1) % 2`` write is published and
        # every bank-``s % 2`` read (two super-steps ago) retired.
        barrier = mp_context.Barrier(len(by_worker) + 1)
        connections: List = []
        processes: List = []
        watcher: Optional[threading.Thread] = None
        stop_reader, stop_writer = mp_context.Pipe(duplex=False)
        try:
            for worker in sorted(by_worker):
                parent_end, child_end = mp_context.Pipe()
                process = mp_context.Process(
                    target=_shard_worker,
                    args=(child_end, by_worker[worker], populations,
                          self.seed, self.timestep_ms, plan, exchange,
                          barrier, engine, self.profile),
                    daemon=True)
                process.start()
                child_end.close()
                connections.append(parent_end)
                processes.append(process)
            # A worker dying mid-run would leave every other party stuck
            # at the barrier forever; the watcher turns the death into a
            # BrokenBarrierError for everyone instead.
            watcher = threading.Thread(
                target=_watch_workers,
                args=(processes, stop_reader, barrier), daemon=True)
            watcher.start()
            self._broadcast(connections, processes, worker_boards,
                            ("run", n_ticks, duration_ms))
            prev_bank = None
            try:
                for index, _ in enumerate(
                        superstep_schedule(n_ticks, plan.lookahead)):
                    bank = index % 2
                    barrier.wait()
                    # Account the previous bank while the workers
                    # compute the new super-step — both only read it,
                    # and it is not recycled before the next barrier.
                    if prev_bank is not None:
                        self._account_bank(exchange, prev_bank, plan,
                                           report)
                    prev_bank = bank
                barrier.wait()
            except threading.BrokenBarrierError:
                self._fail_dead_worker(processes, worker_boards)
            if prev_bank is not None:
                self._account_bank(exchange, prev_bank, plan, report)
            shard_results: Dict[int, ShardResult] = {}
            for worker in range(len(connections)):
                results, snapshot = self._recv_checked(
                    worker, connections, processes, worker_boards)
                shard_results.update(results)
                if snapshot is not None:
                    report.worker_stages[worker] = _stage_dict(snapshot)
                    self.registry.merge(snapshot)
            return [shard_results[board] for board in sorted(shard_results)]
        finally:
            stop_writer.send(True)
            stop_writer.close()
            if watcher is not None:
                watcher.join(timeout=5.0)
            stop_reader.close()
            # A parent-side error must not leave workers blocked at the
            # barrier until the join timeout; the run is over either
            # way, so breaking the barrier is always safe here.
            barrier.abort()
            for connection in connections:
                connection.close()
            for process in processes:
                process.join(timeout=10.0)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
                    process.join(timeout=5.0)
            # Unlink on every exit path — a crashed worker must not
            # leave the segment behind in /dev/shm.
            exchange.close()
            exchange.unlink()

    def _broadcast(self, connections, processes, worker_boards,
                   message) -> None:
        for worker, connection in enumerate(connections):
            try:
                connection.send(message)
            except (BrokenPipeError, OSError):
                self._fail_pool(worker, processes, worker_boards)

    def _fail_dead_worker(self, processes, worker_boards) -> None:
        """The barrier broke: find which worker died and raise for it.

        Goes by the fired sentinel, not ``is_alive()`` — an exiting
        process closes its sentinel before it becomes reapable, so a
        liveness poll in that window would miss it (``_fail_pool``'s
        join then waits out the window and gets the real exit code).
        """
        sentinels = {process.sentinel: worker
                     for worker, process in enumerate(processes)}
        ready = connection_wait(list(sentinels), timeout=10.0)
        for fired in ready:
            self._fail_pool(sentinels[fired], processes, worker_boards)
        # No sentinel fired: the abort had another cause (e.g. a
        # parent-side interrupt); blame worker 0 with no exit code.
        raise ClusterWorkerError(0, worker_boards.get(0, ()), None)

    def _recv_checked(self, worker: int, connections, processes,
                      worker_boards):
        """Receive one message, detecting a dead worker instead of
        surfacing a bare ``EOFError`` or hanging forever."""
        connection = connections[worker]
        process = processes[worker]
        # A dying peer surfaces as EOF or, when it still held unread
        # data, as a connection reset — both mean "worker died".
        dead = (EOFError, ConnectionResetError)
        while True:
            ready = connection_wait([connection, process.sentinel])
            if connection in ready:
                try:
                    return connection.recv()
                except dead:
                    break
            if not process.is_alive():
                # The process died; a final message may still have
                # raced into the pipe ahead of the EOF.
                if connection.poll(0):
                    try:
                        return connection.recv()
                    except dead:
                        break
                break
        self._fail_pool(worker, processes, worker_boards)

    def _fail_pool(self, worker: int, processes, worker_boards) -> None:
        process = processes[worker]
        process.join(timeout=5.0)
        exitcode = process.exitcode
        for other in processes:
            if other.is_alive():
                other.terminate()
        raise ClusterWorkerError(worker, worker_boards.get(worker, ()),
                                 exitcode)
