"""The sharded cluster runner (:class:`ClusterApplication`).

Runs a compiled network as one :class:`~repro.cluster.shard.BoardEngine`
per board, spread over a pool of worker processes.  Execution is
bulk-synchronous: every worker steps its boards through tick ``t``, the
parent routes the tick's spike batches to their destination boards (a
batch travels under its source vertex's sticky AER key), and tick
``t + 1`` begins once every board has its inbound batches — the tick
barrier standing in for the millisecond timer that keeps the real
machine loosely synchronised.

Three properties the tests and benchmark E19 rely on:

* **Worker-count independence** — boards are stepped in canonical board
  order, batches are routed in board order, and ring-buffer accumulation
  is exact (fixed-point weights), so ``workers=4`` produces results
  bit-identical to ``workers=1``.
* **Engine equivalence** — the shard semantics replicate the unsharded
  on-machine engine at zero timer stagger
  (``NeuralApplication(transport="fabric", stagger_us=0)``): identical
  spike trains, spike counts, synaptic-event totals and delivered
  charge.
* **Inter-board accounting** — with ``account_transport=True`` every
  exchanged batch is replayed through the compiled route programs, so
  routers, links and NoCs (including the new inter-board counters) show
  the same loads the unsharded fabric transport would record.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.shard import BoardEngine, ShardResult, SpikeBatch
from repro.compile import MappingPipeline
from repro.compile.context import BoardContext
from repro.core.machine import SpiNNakerMachine
from repro.neuron.network import Network
from repro.router.fabric import TransportFabric
from repro.runtime.application import ApplicationResult

__all__ = ["ClusterApplication", "ClusterReport"]


@dataclass
class ClusterReport:
    """Execution statistics of one sharded run."""

    n_boards: int
    workers: int
    n_ticks: int
    wall_s: float = 0.0
    #: Seconds each board's engine spent computing.
    board_compute_s: Dict[int, float] = field(default_factory=dict)
    #: Board -> worker assignment used by the run.
    assignment: Dict[int, int] = field(default_factory=dict)
    #: (key batch, destination board) deliveries exchanged at barriers.
    exchanged_batches: int = 0
    exchanged_spikes: int = 0
    #: Of those, deliveries whose destination board differs from the
    #: source board (the traffic that crosses board cables).
    cross_board_batches: int = 0
    cross_board_spikes: int = 0
    #: Board-to-board link traversals replayed through the transport
    #: fabric (``account_transport=True`` only).
    inter_board_traversals: int = 0

    @property
    def total_compute_s(self) -> float:
        """Engine compute summed over every board."""
        return sum(self.board_compute_s.values())

    def worker_compute_s(self) -> List[float]:
        """Engine compute binned by the worker that ran each board."""
        bins = [0.0] * max(self.workers, 1)
        for board, seconds in self.board_compute_s.items():
            bins[self.assignment.get(board, 0)] += seconds
        return bins

    @property
    def critical_path_s(self) -> float:
        """The busiest worker's compute — the parallel lower bound."""
        return max(self.worker_compute_s(), default=0.0)

    @property
    def speedup_bound(self) -> float:
        """Load-balance bound on pool speedup: total / busiest worker.

        What a perfectly-overlapped pool of this run's worker count
        could gain over one worker, given how evenly the boards'
        compute divided; barrier and IPC overheads push the measured
        wall-clock speedup below this.
        """
        critical = self.critical_path_s
        if critical <= 0.0:
            return 1.0
        return self.total_compute_s / critical


def _assign_boards(boards: List[int], workers: int) -> Dict[int, int]:
    """Round-robin boards over workers (canonical board order)."""
    return {board: index % workers for index, board in enumerate(boards)}


def _shard_worker(conn, contexts: Dict[int, BoardContext], populations,
                  seed: Optional[int], timestep_ms: float) -> None:
    """Worker-process loop: step owned boards, swap batches at barriers."""
    engines = {board: BoardEngine(context, populations, seed, timestep_ms)
               for board, context in sorted(contexts.items())}
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "tick":
                _, tick, inbound_by_board = message
                outbound: Dict[int, List[SpikeBatch]] = {}
                for board, engine in engines.items():
                    batches = engine.step(tick, inbound_by_board.get(board))
                    if batches:
                        outbound[board] = batches
                conn.send(outbound)
            elif kind == "apply":
                _, inbound_by_board = message
                for board, batches in inbound_by_board.items():
                    engines[board].apply(batches)
                conn.send(None)
            elif kind == "finish":
                _, duration_ms = message
                conn.send({board: engine.finish(duration_ms)
                           for board, engine in engines.items()})
                return
            else:  # pragma: no cover - protocol misuse
                raise ValueError("unknown worker message %r" % (kind,))
    finally:
        conn.close()


class ClusterApplication:
    """Compile a network once, run it sharded by board."""

    def __init__(self, machine: SpiNNakerMachine, network: Network,
                 seed: Optional[int] = None,
                 max_neurons_per_core: int = 256,
                 placement_strategy: str = "locality",
                 workers: int = 1,
                 account_transport: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.machine = machine
        self.network = network
        self.timestep_ms = network.timestep_ms
        self.seed = seed if seed is not None else (network.seed or 0)
        self.expansion_seed = seed if seed is not None else network.seed
        self.max_neurons_per_core = max_neurons_per_core
        self.placement_strategy = placement_strategy
        self.workers = workers
        self.account_transport = account_transport

        self.pipeline: Optional[MappingPipeline] = None
        self.board_contexts: Dict[int, BoardContext] = {}
        #: key -> destination boards, in board order.
        self._key_destinations: Dict[int, tuple] = {}
        self.fabric: Optional[TransportFabric] = None
        self.result: Optional[ApplicationResult] = None
        self.report: Optional[ClusterReport] = None
        self.unmatched_packets = 0
        self._prepared = False

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Run the mapping pipeline with the ShardByBoard pass enabled."""
        if self._prepared:
            return
        self.pipeline = MappingPipeline(
            self.machine, self.network, seed=self.seed,
            expansion_seed=self.expansion_seed,
            max_neurons_per_core=self.max_neurons_per_core,
            placement_strategy=self.placement_strategy,
            compile_transport=self.account_transport,
            shard_by_board=True)
        ctx = self.pipeline.run()
        self.board_contexts = dict(sorted(ctx.board_contexts.items()))
        self._key_destinations = {}
        for board, context in self.board_contexts.items():
            for key in context.deliveries:
                existing = self._key_destinations.get(key, ())
                self._key_destinations[key] = existing + (board,)
        if self.account_transport:
            self.fabric = TransportFabric(self.machine)
            self.fabric.adopt(ctx.route_programs)
        self._prepared = True

    @property
    def n_boards(self) -> int:
        """Boards holding at least one placed vertex."""
        return len(self.board_contexts)

    def _populations(self) -> Dict[str, object]:
        return {population.label: population
                for population in self.network.populations}

    # ------------------------------------------------------------------
    # Batch routing (the tick barrier's exchange step)
    # ------------------------------------------------------------------
    def _route(self, outbound_by_board: Dict[int, List[SpikeBatch]],
               report: ClusterReport) -> Dict[int, List[SpikeBatch]]:
        """Route one tick's outbound batches to their destination boards.

        Iterates source boards in canonical order, so every destination
        board's inbound list is deterministic whatever worker produced
        the batches.
        """
        inbound: Dict[int, List[SpikeBatch]] = {}
        for board in sorted(outbound_by_board):
            for key, spiking in outbound_by_board[board]:
                n = int(spiking.size)
                if self.fabric is not None:
                    program = self.fabric.program_for(key)
                    if program is not None:
                        self.fabric.account_batch(program, n)
                for destination in self._key_destinations.get(key, ()):
                    inbound.setdefault(destination, []).append((key, spiking))
                    report.exchanged_batches += 1
                    report.exchanged_spikes += n
                    if destination != board:
                        report.cross_board_batches += 1
                        report.cross_board_spikes += n
        return inbound

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_ms: float,
            workers: Optional[int] = None) -> ApplicationResult:
        """Run for ``duration_ms`` of biological time; return the merged
        result (also kept on :attr:`result`, statistics on :attr:`report`)."""
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        self.prepare()
        n_ticks = int(round(duration_ms / self.timestep_ms))
        effective = workers if workers is not None else self.workers
        if effective < 1:
            raise ValueError("workers must be at least 1")
        boards = sorted(self.board_contexts)
        effective = max(1, min(effective, len(boards))) if boards else 1
        report = ClusterReport(n_boards=len(boards), workers=effective,
                               n_ticks=n_ticks,
                               assignment=_assign_boards(boards, effective))
        # The fabric's counters are cumulative over the application's
        # lifetime; the report carries this run's delta.
        traversals_before = (self.fabric.inter_board_traversals
                             if self.fabric is not None else 0)
        began = time.perf_counter()
        if effective == 1:
            shard_results = self._run_serial(n_ticks, duration_ms, report)
        else:
            shard_results = self._run_pool(n_ticks, duration_ms, report)
        report.wall_s = time.perf_counter() - began
        if self.fabric is not None:
            report.inter_board_traversals = (
                self.fabric.inter_board_traversals - traversals_before)
        for shard in shard_results:
            report.board_compute_s[shard.board] = shard.compute_s
        self.unmatched_packets = sum(shard.unmatched_packets
                                     for shard in shard_results)
        self.result = ApplicationResult.merge(
            [shard.result for shard in shard_results])
        self.result.duration_ms = duration_ms
        self.report = report
        return self.result

    def _run_serial(self, n_ticks: int, duration_ms: float,
                    report: ClusterReport) -> List[ShardResult]:
        populations = self._populations()
        engines = {board: BoardEngine(context, populations, self.seed,
                                      self.timestep_ms)
                   for board, context in self.board_contexts.items()}
        inbound: Dict[int, List[SpikeBatch]] = {}
        for tick in range(n_ticks):
            outbound: Dict[int, List[SpikeBatch]] = {}
            for board, engine in engines.items():
                batches = engine.step(tick, inbound.get(board))
                if batches:
                    outbound[board] = batches
            inbound = self._route(outbound, report)
        # The final tick's batches still land in the ring buffers (the
        # on-machine run drains in-flight deliveries after halting).
        for board, batches in inbound.items():
            engines[board].apply(batches)
        return [engine.finish(duration_ms) for engine in engines.values()]

    def _run_pool(self, n_ticks: int, duration_ms: float,
                  report: ClusterReport) -> List[ShardResult]:
        populations = self._populations()
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        by_worker: Dict[int, Dict[int, BoardContext]] = {}
        for board, worker in report.assignment.items():
            by_worker.setdefault(worker, {})[board] = (
                self.board_contexts[board])
        connections = []
        processes = []
        try:
            for worker in sorted(by_worker):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_shard_worker,
                    args=(child_end, by_worker[worker], populations,
                          self.seed, self.timestep_ms),
                    daemon=True)
                process.start()
                child_end.close()
                connections.append(parent_end)
                processes.append(process)
            inbound: Dict[int, List[SpikeBatch]] = {}
            for tick in range(n_ticks):
                for worker, connection in enumerate(connections):
                    connection.send(("tick", tick, {
                        board: inbound[board]
                        for board in by_worker[worker] if board in inbound}))
                outbound: Dict[int, List[SpikeBatch]] = {}
                for connection in connections:
                    outbound.update(connection.recv())
                inbound = self._route(outbound, report)
            for worker, connection in enumerate(connections):
                final = {board: inbound[board]
                         for board in by_worker[worker] if board in inbound}
                connection.send(("apply", final))
            for connection in connections:
                connection.recv()
            for connection in connections:
                connection.send(("finish", duration_ms))
            shard_results: Dict[int, ShardResult] = {}
            for connection in connections:
                shard_results.update(connection.recv())
            return [shard_results[board] for board in sorted(shard_results)]
        finally:
            for connection in connections:
                connection.close()
            for process in processes:
                process.join(timeout=10.0)
                if process.is_alive():  # pragma: no cover - hung worker
                    process.terminate()
