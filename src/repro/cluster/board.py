"""The board grid of a multi-board machine.

A thin, read-only view over :class:`~repro.core.machine.MachineConfig`'s
board tiling: board ids are row-major over the grid (board 0 holds chip
(0, 0)), each board is a ``board_width x board_height`` rectangle of
chips, and links whose endpoints lie on different boards are the
machine's *inter-board* links.  The topology object is what the CLI
demo, the allocation layer and the benchmarks use to reason about
boards without walking chips themselves.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.geometry import ChipCoordinate
from repro.core.machine import MachineConfig

__all__ = ["BoardTopology"]


class BoardTopology:
    """Board-level view of a (possibly single-board) machine config."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_boards(self) -> int:
        """Number of boards in the machine."""
        return self.config.n_boards

    @property
    def boards_x(self) -> int:
        """Board columns."""
        return self.config.boards_x

    @property
    def boards_y(self) -> int:
        """Board rows."""
        return self.config.boards_y

    @property
    def board_width(self) -> int:
        """Chips per board along x."""
        return self.config.board_width or self.config.width

    @property
    def board_height(self) -> int:
        """Chips per board along y."""
        return self.config.board_height or self.config.height

    @property
    def chips_per_board(self) -> int:
        """Chips per board (48 for the production 8 x 6 tile)."""
        return self.board_width * self.board_height

    def boards(self) -> List[int]:
        """All board ids, in row-major grid order."""
        return list(range(self.n_boards))

    def board_of(self, coordinate: ChipCoordinate) -> int:
        """The board holding a chip."""
        return self.config.board_of(coordinate)

    def rect(self, board: int) -> Tuple[int, int, int, int]:
        """One board's chip rectangle as ``(x, y, width, height)``."""
        origin = self.config.board_origin(board)
        return (origin.x, origin.y, self.board_width, self.board_height)

    def chips(self, board: int) -> List[ChipCoordinate]:
        """One board's chips in raster order."""
        return list(self.config.board_chips(board))

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def inter_board_link_census(self, machine) -> Dict[Tuple[int, int], int]:
        """Count the directed links between each ordered board pair.

        ``machine`` is an instantiated
        :class:`~repro.core.machine.SpiNNakerMachine` built from this
        config (or a compatible view exposing ``links``).
        """
        census: Dict[Tuple[int, int], int] = {}
        for link in machine.links.values():
            if not link.inter_board:
                continue
            pair = (self.board_of(link.source), self.board_of(link.target))
            census[pair] = census.get(pair, 0) + 1
        return census

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def ascii_diagram(self) -> str:
        """The board grid as a small ASCII map (y grows upwards).

        ::

            +--------+--------+
            | b2     | b3     |
            | 8x6    | 8x6    |
            +--------+--------+
            | b0     | b1     |
            | 8x6    | 8x6    |
            +--------+--------+
        """
        cell_width = max(8, len("%dx%d" % (self.board_width,
                                           self.board_height)) + 3)
        rule = "+" + ("-" * cell_width + "+") * self.boards_x
        lines = [rule]
        for row in reversed(range(self.boards_y)):
            ids = []
            sizes = []
            for column in range(self.boards_x):
                board = row * self.boards_x + column
                ids.append((" b%d" % board).ljust(cell_width))
                sizes.append((" %dx%d" % (self.board_width,
                                          self.board_height)).ljust(cell_width))
            lines.append("|" + "|".join(ids) + "|")
            lines.append("|" + "|".join(sizes) + "|")
            lines.append(rule)
        return "\n".join(lines)
