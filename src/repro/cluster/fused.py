"""The fused board engine (:class:`FusedBoardEngine`).

:class:`~repro.cluster.shard.BoardEngine` replays Figure 7 with one
Python-level loop iteration per core per tick — faithful, but the loop
itself is the cluster's remaining hot path now that the exchange is
cheap.  This engine computes the *same run* with the per-core loops
hoisted out of the tick path:

* cores are grouped by neuron model and their state stacked into
  ``(n_lanes, n_neurons)`` blocks (:class:`~repro.neuron.lif.LIFBlock`,
  :class:`~repro.neuron.izhikevich.IzhikevichBlock`) — one set of array
  operations steps every core of a model at once;
* all cores share one :class:`~repro.neuron.synapse.FusedDeferredEventBuffer`
  whose columns are the stacked blocks' cells, so one ``drain()`` hands
  every core its tick inputs;
* spike delivery goes through the board-level
  :class:`~repro.compile.context.BoardDeliveryIndex` built by the
  ShardByBoard pass — one slot gather and one ring scatter per batch
  list, replacing the per-key/per-leg loops of ``apply``/``apply_remote``;
* spike sources stay per-core (each owns its ``core_rng`` stream) but
  their masks can be *prefetched* ahead of a barrier wait
  (:meth:`FusedBoardEngine.prefetch_sources`) — draws stay in tick
  order per generator, so the spikes are unchanged.

Bit-identity with the per-core engine is the design constraint, not a
best effort: stacked steps are elementwise (broadcast parameter columns
perform the identical IEEE-754 scalar operations), ring accumulation of
the fixed-point weights is exact and therefore independent of how
events are batched, per-core generators are independent streams, and
per-label recording order is preserved because one population maps to
exactly one model group whose lanes sit in canonical core order.  The
suite in ``tests/test_cluster_fused.py`` pins all of it.
"""

from __future__ import annotations

from collections import deque
from itertools import repeat
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.compile.context import BoardContext
from repro.neuron.izhikevich import IzhikevichBlock
from repro.neuron.lif import LIFBlock
from repro.neuron.population import (
    Population,
    SpikeSourceArray,
    SpikeSourcePoisson,
    core_rng,
)
from repro.neuron.synapse import MAX_DELAY_TICKS, FusedDeferredEventBuffer
from repro.profile import perf_now
from repro.runtime.application import ApplicationResult
from repro.cluster.shard import ShardResult, SpikeBatch

__all__ = ["FusedBoardEngine"]

#: model name -> stacked block implementation.
_BLOCKS = {"lif": LIFBlock, "izhikevich": IzhikevichBlock}


class _FusedGroup:
    """All of a board's cores of one neuron model, stepped as a block."""

    __slots__ = ("model", "specs", "block", "bias", "base", "n_lanes",
                 "width")

    def __init__(self, model: str, specs: List, states: List,
                 biases: List[Optional[float]]) -> None:
        self.model = model
        self.specs = specs
        self.block = _BLOCKS[model](states)
        self.n_lanes = self.block.n_lanes
        self.width = self.block.width
        #: Ring column of lane 0, cell 0 (set by the engine's layout).
        self.base = 0
        # A zero bias column is bit-safe: the only consumer adds it to
        # the synaptic current, and ``x + 0.0`` only differs from ``x``
        # at ``-0.0``, which no downstream comparison can distinguish.
        self.bias = np.zeros((self.n_lanes, self.width), dtype=float)
        for lane, (spec, bias) in enumerate(zip(specs, biases)):
            if bias:
                self.bias[lane, :spec.vertex.n_neurons] = bias


class _ScalarCore:
    """A core kept on the per-core path: spike sources (which own their
    generator stream) and any model without a stacked block."""

    __slots__ = ("spec", "population", "rng", "state", "bias", "ring_start",
                 "queued", "next_tick", "is_source")

    def __init__(self, spec, population: Population, timestep_ms: float,
                 seed: Optional[int]) -> None:
        self.spec = spec
        self.population = population
        self.rng = core_rng(seed, spec.chip.x, spec.chip.y, spec.core_id)
        self.is_source = population.is_spike_source
        self.state = None
        if not self.is_source:
            sliced = Population(
                spec.vertex.n_neurons, population.parameters,
                label="%s-shard-%d" % (population.label, spec.vertex.index))
            self.state = sliced.build_state(timestep_ms, self.rng)
        self.bias = None
        if population.bias_current_na:
            self.bias = np.full(spec.vertex.n_neurons,
                                population.bias_current_na)
        self.ring_start = 0
        #: Prefetched source masks, oldest first (sources only).
        self.queued: deque = deque()
        #: Next tick a mask would be generated for.
        self.next_tick = 0


class FusedBoardEngine:
    """Vectorised executor of one board's compiled sub-context.

    Drop-in replacement for :class:`~repro.cluster.shard.BoardEngine`
    (same constructor, ``apply``/``apply_remote``/``step``/``finish``
    surface, stage counters and result) producing bit-identical runs.
    """

    def __init__(self, context: BoardContext,
                 populations: Dict[str, Population],
                 seed: Optional[int], timestep_ms: float,
                 export_keys: Optional[Set[int]] = None) -> None:
        self.context = context
        self.board = context.board
        self.timestep_ms = timestep_ms
        self.export_keys = export_keys
        self.local_delivery = export_keys is not None

        # ---- group the board's cores ---------------------------------
        grouped: Dict[str, Tuple[List, List, List]] = {}
        group_order: List[str] = []
        self._scalars: List[_ScalarCore] = []
        #: Local core index -> ("group", group, lane) | ("scalar", core).
        self._locations: List[Tuple] = []
        for spec in context.cores:
            population = populations[spec.vertex.population_label]
            model = population.model_name
            if population.is_spike_source or model not in _BLOCKS:
                core = _ScalarCore(spec, population, timestep_ms, seed)
                self._scalars.append(core)
                self._locations.append(("scalar", core))
                continue
            if model not in grouped:
                grouped[model] = ([], [], [])
                group_order.append(model)
            specs, states, biases = grouped[model]
            # The exact per-core construction of the reference engine:
            # same sliced population, same per-core generator.
            rng = core_rng(seed, spec.chip.x, spec.chip.y, spec.core_id)
            sliced = Population(
                spec.vertex.n_neurons, population.parameters,
                label="%s-shard-%d" % (population.label, spec.vertex.index))
            specs.append(spec)
            states.append(sliced.build_state(timestep_ms, rng))
            biases.append(population.bias_current_na or None)
            self._locations.append(("group", model, len(specs) - 1))
        self._groups = [_FusedGroup(model, *grouped[model])
                        for model in group_order]
        groups_by_model = {group.model: group for group in self._groups}
        self._locations = [
            entry if entry[0] == "scalar"
            else ("group", groups_by_model[entry[1]], entry[2])
            for entry in self._locations]

        # ---- fused ring layout ---------------------------------------
        # Group blocks first (lane-major, padded), then one contiguous
        # tail cell range per scalar core.  ``translate`` maps a
        # board-flat neuron index (the delivery arena's numbering) to
        # its ring column.
        ring_width = 0
        for group in self._groups:
            group.base = ring_width
            ring_width += group.n_lanes * group.width
        for core in self._scalars:
            core.ring_start = ring_width
            ring_width += core.spec.vertex.n_neurons
        index = context.delivery_index
        if index is None:
            index = context.build_delivery_index()
        self._index = index
        translate = np.zeros(max(index.total_neurons, 1), dtype=np.intp)
        for local, entry in enumerate(self._locations):
            flat = index.core_offsets[local]
            n = context.cores[local].vertex.n_neurons
            if entry[0] == "scalar":
                base = entry[1].ring_start
            else:
                _, group, lane = entry
                base = group.base + lane * group.width
            translate[flat:flat + n] = base + np.arange(n)
        self._ring = FusedDeferredEventBuffer(max(ring_width, 1),
                                              MAX_DELAY_TICKS)
        # Pre-translate the arena's targets to ring columns once.
        self._arena_cells = translate[index.targets]
        self._arena_weights = index.weights
        self._arena_delays = index.delay_ticks

        # ---- recording -----------------------------------------------
        self.result = ApplicationResult(duration_ms=0.0)
        self._spike_chunks: Dict[str, List[Tuple[float, np.ndarray]]] = {}
        for label, population in populations.items():
            self.result.spike_counts[label] = np.zeros(population.size,
                                                       dtype=int)
            if population.record_spikes:
                self.result.spikes[label] = []
                self._spike_chunks[label] = []
        self.unmatched_packets = 0
        self.step_s = 0.0
        self.local_apply_s = 0.0
        self.remote_apply_s = 0.0
        self.ticks_run = 0

    @property
    def compute_s(self) -> float:
        """Seconds spent stepping neurons and scattering events."""
        return self.step_s + self.local_apply_s + self.remote_apply_s

    @property
    def stage_s(self) -> Dict[str, float]:
        """The engine-stage split reported in :class:`ShardResult`."""
        return {"step": self.step_s, "local_apply": self.local_apply_s,
                "remote_apply": self.remote_apply_s}

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _scatter_batches(
            self, batches: Iterable[Tuple[int, int, np.ndarray]]) -> None:
        """Deliver ``(key, age, spiking)`` batches in one fused scatter.

        Gathers every batch's arena slots, concatenates, and lands the
        lot with a single ring update — result-exact versus the per-leg
        path because ring accumulation of the fixed-point weights is an
        exact sum (see the fused buffer's docstring for the mid-batch
        saturation caveat).
        """
        index = self._index
        none_legs = index.none_legs
        row_ptr_map = index.row_ptr
        result = self.result
        start_parts: List[np.ndarray] = []
        count_parts: List[np.ndarray] = []
        ages: List[int] = []
        sizes: List[int] = []
        for key, age, spiking in batches:
            matchless = none_legs.get(key)
            if matchless:
                self.unmatched_packets += matchless * int(spiking.size)
            row_ptr = row_ptr_map.get(key)
            if row_ptr is None:
                continue
            starts = row_ptr[spiking]
            counts = row_ptr[spiking + 1] - starts
            total = int(counts.sum())
            if total == 0:
                continue
            start_parts.append(starts)
            count_parts.append(counts)
            ages.append(age)
            sizes.append(total)
        if not start_parts:
            return
        # One merged row expansion for the whole batch list — the same
        # (batch, spiking source)-major slot order ``slots_for`` yields
        # per batch, without the per-key expansion overhead.
        starts = (start_parts[0] if len(start_parts) == 1
                  else np.concatenate(start_parts))
        counts = (count_parts[0] if len(count_parts) == 1
                  else np.concatenate(count_parts))
        total = sum(sizes)
        offsets = np.cumsum(counts) - counts
        slots = np.arange(total, dtype=np.intp)
        slots += np.repeat(starts - offsets, counts)
        weights = self._arena_weights[slots]
        delays = self._arena_delays[slots]
        if any(ages):
            delays = delays - np.repeat(np.asarray(ages, dtype=np.intp),
                                        sizes)
        result.synaptic_events += total
        # One charge sum over the merged batches: every weight is an
        # exact multiple of 2^-4 in float64, so the total is exact and
        # grouping-independent — bit-equal to the per-leg accumulation.
        result.delivered_charge_na += float(weights.sum())
        self._ring.add_events(self._arena_cells[slots], weights, delays)

    def apply(self, batches: List[SpikeBatch]) -> None:
        """Scatter inbound same-tick spike batches into the fused ring."""
        began = perf_now()
        self._scatter_batches(
            (key, 0, spiking) for key, spiking in batches)
        self.local_apply_s += perf_now() - began

    def apply_remote(self,
                     batches: Iterable[Tuple[int, int, np.ndarray]]) -> None:
        """Scatter exchanged cross-board batches, re-based by their age
        (see :meth:`BoardEngine.apply_remote`)."""
        began = perf_now()
        current = self.ticks_run
        self._scatter_batches(
            (key, current - 1 - send_tick, spiking)
            for key, send_tick, spiking in batches)
        self.remote_apply_s += perf_now() - began

    # ------------------------------------------------------------------
    # One tick
    # ------------------------------------------------------------------
    def step(self, tick: int,
             inbound: Optional[List[SpikeBatch]] = None) -> List[SpikeBatch]:
        """Apply ``inbound``, then run one tick over every core —
        one block step per model instead of one call per core."""
        if inbound:
            self.apply(inbound)
        began = perf_now()
        time_ms = tick * self.timestep_ms
        outbound: List[SpikeBatch] = []
        local: List[SpikeBatch] = []
        row = self._ring.drain()
        for group in self._groups:
            grid = row[group.base:group.base + group.n_lanes * group.width]
            group.block.inject_synaptic_input(
                grid.reshape(group.n_lanes, group.width))
            spikes = group.block.step(group.bias)
            lanes, cols = np.nonzero(spikes)
            if lanes.size == 0:
                continue
            # Row-major nonzero: lanes ascend, so slicing per lane keeps
            # the canonical core order within the group (and therefore
            # within every population, which maps to exactly one group).
            bounds = np.searchsorted(lanes, np.arange(group.n_lanes + 1))
            for lane, spec in enumerate(group.specs):
                lo, hi = int(bounds[lane]), int(bounds[lane + 1])
                if lo == hi:
                    continue
                self._emit(spec, cols[lo:hi], time_ms, outbound, local)
        for core in self._scalars:
            if core.is_source:
                if core.queued:
                    mask = core.queued.popleft()
                else:
                    mask = self._source_mask(core, tick)
                    core.next_tick = tick + 1
            else:
                n = core.spec.vertex.n_neurons
                core.state.inject_synaptic_input(
                    row[core.ring_start:core.ring_start + n])
                mask = core.state.step(core.bias)
            spiking = np.flatnonzero(mask)
            if spiking.size:
                self._emit(core.spec, spiking, time_ms, outbound, local)
        self.step_s += perf_now() - began
        self.ticks_run = tick + 1
        if local:
            self.apply(local)
        return outbound

    def _emit(self, spec, spiking: np.ndarray, time_ms: float,
              outbound: List[SpikeBatch], local: List[SpikeBatch]) -> None:
        """Record one core's tick spikes and route its batch."""
        result = self.result
        label = spec.vertex.population_label
        global_indices = spiking + spec.vertex.slice_start
        result.spike_counts[label][global_indices] += 1
        if label in self._spike_chunks:
            self._spike_chunks[label].append((time_ms, global_indices))
        if spec.has_outgoing:
            result.packets_sent += int(spiking.size)
            if self.local_delivery:
                if spec.base_key in self.context.deliveries:
                    local.append((spec.base_key, spiking))
                if spec.base_key in self.export_keys:
                    outbound.append((spec.base_key, spiking))
            else:
                outbound.append((spec.base_key, spiking))

    def _source_mask(self, core: _ScalarCore, tick: int) -> np.ndarray:
        population = core.population
        vertex = core.spec.vertex
        if isinstance(population, SpikeSourcePoisson):
            probability = SpikeSourcePoisson.spike_probability(
                population.rate_hz, self.timestep_ms)
            return core.rng.random(vertex.n_neurons) < probability
        if isinstance(population, SpikeSourceArray):
            mask = population.spikes_for_tick(tick, self.timestep_ms)
            return mask[vertex.slice_start:vertex.slice_stop]
        return np.zeros(vertex.n_neurons, dtype=bool)

    def prefetch_sources(self, upto_tick: int) -> None:
        """Precompute source masks up to and including ``upto_tick``.

        Worth calling right before a barrier wait: the generator draws
        happen while the engine would otherwise block, and stay in tick
        order per stream, so the spikes are unchanged.
        """
        for core in self._scalars:
            if not core.is_source:
                continue
            while core.next_tick <= upto_tick:
                core.queued.append(self._source_mask(core, core.next_tick))
                core.next_tick += 1

    # ------------------------------------------------------------------
    # Introspection / completion
    # ------------------------------------------------------------------
    def core_voltages(self, core_index: int) -> Optional[np.ndarray]:
        """The membrane potentials of one local core (``None`` for a
        spike source) — the per-core view into the stacked state."""
        entry = self._locations[core_index]
        if entry[0] == "scalar":
            state = entry[1].state
            return None if state is None else state.v
        _, group, lane = entry
        return group.block.lane_voltages(lane)

    def finish(self, duration_ms: float) -> ShardResult:
        """Close out the shard's recording and return its result."""
        self.result.duration_ms = duration_ms
        for label, chunks in self._spike_chunks.items():
            out = self.result.spikes[label]
            for time_ms, indices in chunks:
                out.extend(zip(repeat(time_ms), indices.tolist()))
            chunks.clear()
        return ShardResult(board=self.board, result=self.result,
                           unmatched_packets=self.unmatched_packets,
                           compute_s=self.compute_s,
                           stage_s=self.stage_s)
