"""The cluster's spike-exchange data path (shared memory + lookahead).

PR 5's runner pickled per-tick batch dicts through ``multiprocessing``
pipes and took a parent-mediated barrier every tick — measured *slower*
than the serial engine (BENCH_e19: 0.94x against a 3.9x load-balance
bound).  This module replaces that data path with the three classic
PDES ingredients:

* **Preallocated shared-memory regions.**  One
  :class:`multiprocessing.shared_memory.SharedMemory` segment holds a
  packed ``uint32`` region per *(source board, destination board)* pair
  that can exchange spikes.  A batch is ``[key, send_tick, count,
  index...]`` — a couple of array copies per tick instead of a pickle
  round-trip.
* **Worker-side routing.**  The ``key -> destination boards`` table is
  part of the :class:`ExchangePlan` shipped to every worker at startup,
  so workers write batches straight into their destinations' inbound
  regions.  The parent never touches per-tick spike data; it only
  sequences barriers and (optionally) replays the same regions through
  the transport fabric for accounting.
* **Conservative lookahead.**  A cross-board spike emitted at tick ``t``
  cannot influence another board before ``t + 1 + d_min`` (``d_min`` =
  the minimum cross-board synaptic delay, decoded per board pair by the
  ShardByBoard pass), so every board may run ``L = 1 + d_min`` ticks
  between barriers.  Batches carry their send tick; the receiver
  re-bases each event's programmable delay by the batch's age
  (:meth:`~repro.neuron.synapse.DeferredEventBuffer.add_events_aged`).

Synchronisation is lock-free by construction: every region has exactly
one writer (the worker owning the source board), regions are double
-banked (super-step ``s`` writes bank ``s % 2`` while readers drain bank
``(s - 1) % 2``), and the parent's pipe barrier provides the
happens-before edge between a bank's writes and its reads.  No shared
mutable state is guarded by a lock because none is concurrently
written.

Determinism: readers always drain regions in canonical (source board,
destination board) order and ring-buffer accumulation is exact
(fixed-point weights in float64), so results are bit-identical across
worker counts *and* lookahead depths.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from repro.compile.context import BoardContext
from repro.neuron.synapse import MAX_DELAY_TICKS

__all__ = [
    "BATCH_HEADER_WORDS",
    "ExchangePlan",
    "InProcessExchange",
    "SharedMemoryExchange",
    "superstep_schedule",
]

#: Words prefixed to every batch record: ``key, send_tick, count``.
BATCH_HEADER_WORDS = 3

#: Lookahead cap when *no* synapse crosses a board boundary (any depth
#: is then safe; the cap just bounds region capacity).
UNCONSTRAINED_LOOKAHEAD = 1 + MAX_DELAY_TICKS


def superstep_schedule(n_ticks: int, lookahead: int) -> List[Tuple[int, int]]:
    """``(start_tick, length)`` of every super-step covering ``n_ticks``."""
    if lookahead < 1:
        raise ValueError("lookahead must be at least 1")
    return [(start, min(lookahead, n_ticks - start))
            for start in range(0, n_ticks, lookahead)]


@dataclass
class ExchangePlan:
    """Everything both sides of the exchange agree on before the run.

    Built once per run from the compiled board contexts; shipped to the
    workers at startup (worker-side routing) and kept by the parent
    (accounting replay reads the same regions).
    """

    #: Boards in canonical order.
    boards: List[int]
    #: Effective super-step depth (``1`` = exchange every tick).
    lookahead: int
    #: Minimum cross-board synaptic delay; ``None`` when no synapse
    #: crosses a board boundary.
    d_min: Optional[int]
    #: The largest safe lookahead (``1 + d_min``).
    max_lookahead: int
    #: key -> destination boards *other than* the key's home board, in
    #: board order.  The worker-side routing table.
    cross_destinations: Dict[int, Tuple[int, ...]]
    #: key -> lowest cross destination: the single region the parent
    #: replays the batch from, so accounting charges each batch once.
    first_cross_destination: Dict[int, int]
    #: board -> keys the board's engine must hand to the exchange
    #: (cross-board batches plus, under accounting, local-only stubs).
    export_keys: Dict[int, FrozenSet[int]]
    #: board -> keys exported as full cross-board batches.
    remote_keys: Dict[int, FrozenSet[int]]
    #: board -> local-only keys exported as count-only accounting stubs
    #: through the ``(board, board)`` region (empty unless accounting).
    stub_keys: Dict[int, FrozenSet[int]]
    #: (source board, destination board) -> payload capacity in words of
    #: one bank.  ``(b, b)`` entries are the accounting-stub regions.
    region_capacity: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def words_per_bank(self) -> Dict[Tuple[int, int], int]:
        """Bank size per region: one used-words header + the payload."""
        return {pair: 1 + capacity
                for pair, capacity in self.region_capacity.items()}

    @property
    def total_words(self) -> int:
        """Segment size in words (two banks per region)."""
        return 2 * sum(self.words_per_bank.values())

    def inbound_pairs(self, board: int) -> List[Tuple[int, int]]:
        """Regions a board drains, in canonical source order."""
        return [(src, board) for src in self.boards
                if src != board and (src, board) in self.region_capacity]

    @classmethod
    def build(cls, board_contexts: Dict[int, BoardContext],
              pair_min_delay: Dict[Tuple[int, int], int],
              lookahead: Optional[int] = None,
              account_transport: bool = False) -> "ExchangePlan":
        """Derive the plan from the compiled per-board sub-contexts.

        ``lookahead=None`` selects the deepest safe depth; an explicit
        request is clamped into ``1..max_lookahead`` (running deeper
        than ``1 + d_min`` would deliver spikes late, so the clamp is a
        correctness guard, not a heuristic).
        """
        boards = sorted(board_contexts)
        key_home: Dict[int, int] = {}
        key_neurons: Dict[int, int] = {}
        outgoing: Dict[int, List[int]] = {board: [] for board in boards}
        for board in boards:
            for core in board_contexts[board].cores:
                if core.has_outgoing:
                    key_home[core.base_key] = board
                    key_neurons[core.base_key] = core.vertex.n_neurons
                    outgoing[board].append(core.base_key)

        destinations: Dict[int, List[int]] = {}
        for board in boards:
            for key in board_contexts[board].deliveries:
                destinations.setdefault(key, []).append(board)

        cross: Dict[int, Tuple[int, ...]] = {}
        first_cross: Dict[int, int] = {}
        for key, dests in destinations.items():
            home = key_home.get(key)
            remote = tuple(dst for dst in dests if dst != home)
            if remote:
                cross[key] = remote
                first_cross[key] = remote[0]

        d_min = min(pair_min_delay.values()) if pair_min_delay else None
        max_lookahead = (1 + d_min) if d_min is not None \
            else UNCONSTRAINED_LOOKAHEAD
        if lookahead is None:
            effective = max_lookahead
        else:
            if lookahead < 1:
                raise ValueError("lookahead must be at least 1")
            effective = min(lookahead, max_lookahead)

        remote_keys = {board: frozenset(
            key for key in outgoing[board] if key in cross)
            for board in boards}
        stub_keys = {board: frozenset(
            key for key in outgoing[board]
            if key not in cross and key in destinations) if account_transport
            else frozenset() for board in boards}
        export_keys = {board: remote_keys[board] | stub_keys[board]
                       for board in boards}

        capacity: Dict[Tuple[int, int], int] = {}
        for board in boards:
            for key in remote_keys[board]:
                words = BATCH_HEADER_WORDS + key_neurons[key]
                for dst in cross[key]:
                    capacity[(board, dst)] = (
                        capacity.get((board, dst), 0) + words)
            if stub_keys[board]:
                capacity[(board, board)] = (
                    BATCH_HEADER_WORDS * len(stub_keys[board]))
        capacity = {pair: words * effective
                    for pair, words in capacity.items()}

        return cls(boards=boards, lookahead=effective, d_min=d_min,
                   max_lookahead=max_lookahead, cross_destinations=cross,
                   first_cross_destination=first_cross,
                   export_keys=export_keys, remote_keys=remote_keys,
                   stub_keys=stub_keys, region_capacity=capacity)


class _ExchangeBase:
    """Shared bank arithmetic of the two exchange implementations."""

    def __init__(self, plan: ExchangePlan) -> None:
        self.plan = plan

    def write_board_batches(self, src: int, bank: int, tick: int,
                            exported) -> int:
        """Route one board's exported batches into its write regions.

        Returns the number of cross-board batch copies written (the
        figure the profiler calls "serialize" work).  Stub keys become
        count-only records in the board's own ``(src, src)`` region.
        """
        plan = self.plan
        remote = plan.remote_keys[src]
        copies = 0
        for key, spiking in exported:
            if key in remote:
                for dst in plan.cross_destinations[key]:
                    self.write_batch(src, dst, bank, key, tick, spiking)
                    copies += 1
            else:
                self.write_stub(src, bank, key, tick, int(spiking.size))
        return copies

    # Implemented by the concrete exchanges:
    def begin(self, bank, sources):  # pragma: no cover - interface
        raise NotImplementedError

    def write_batch(self, src, dst, bank, key, tick,
                    indices):  # pragma: no cover - interface
        raise NotImplementedError

    def write_stub(self, src, bank, key, tick,
                   count):  # pragma: no cover - interface
        raise NotImplementedError

    def read(self, src, dst, bank):  # pragma: no cover - interface
        raise NotImplementedError

    def read_counts(self, src, dst, bank):  # pragma: no cover - interface
        raise NotImplementedError


class InProcessExchange(_ExchangeBase):
    """The same exchange protocol over plain lists — the serial runner.

    ``workers=1`` needs no shared memory, but runs the identical
    super-step schedule, bank rotation and read order, so serial and
    pooled results are produced by one code path and stay bit-identical.
    """

    def __init__(self, plan: ExchangePlan) -> None:
        super().__init__(plan)
        self._banks: Dict[Tuple[int, int, int], List[Tuple]] = {
            (src, dst, bank): []
            for (src, dst) in plan.region_capacity for bank in (0, 1)}

    def begin(self, bank: int, sources) -> None:
        for (src, dst) in self.plan.region_capacity:
            if src in sources:
                self._banks[(src, dst, bank)].clear()

    def write_batch(self, src: int, dst: int, bank: int, key: int,
                    tick: int, indices: np.ndarray) -> None:
        self._banks[(src, dst, bank)].append((key, tick, indices))

    def write_stub(self, src: int, bank: int, key: int, tick: int,
                   count: int) -> None:
        self._banks[(src, src, bank)].append((key, tick, count))

    def read(self, src: int, dst: int,
             bank: int) -> Iterator[Tuple[int, int, np.ndarray]]:
        return iter(self._banks[(src, dst, bank)])

    def read_counts(self, src: int, dst: int,
                    bank: int) -> Iterator[Tuple[int, int]]:
        for record in self._banks[(src, dst, bank)]:
            payload = record[2]
            yield record[0], (payload if isinstance(payload, int)
                              else int(payload.size))


class SharedMemoryExchange(_ExchangeBase):
    """The packed ``uint32`` exchange over one shared-memory segment.

    Layout: per region (in plan order) two banks, each ``1 + capacity``
    words — word 0 of a bank is the used-payload-words count, written by
    the region's single writer after every append (no reader looks
    before the pipe barrier, so no memory-ordering machinery is
    needed).  The segment is created by the parent before the workers
    fork and unlinked by the parent in a ``finally`` — including when a
    worker crashed mid-run — so a run can never leak ``/dev/shm``
    segments.
    """

    _sequence = itertools.count()

    def __init__(self, plan: ExchangePlan) -> None:
        super().__init__(plan)
        self._offsets: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
        word = 0
        for pair in sorted(plan.region_capacity):
            capacity = plan.region_capacity[pair]
            for bank in (0, 1):
                self._offsets[pair + (bank,)] = (word, capacity)
                word += 1 + capacity
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(4 * word, 1),
            name="repro-cluster-%d-%d" % (os.getpid(),
                                          next(self._sequence)))
        self.name = self._shm.name
        self._words = np.ndarray((word,), dtype=np.uint32,
                                 buffer=self._shm.buf) if word else None
        self._used: Dict[Tuple[int, int, int], int] = {}
        self._unlinked = False

    def _view(self, src: int, dst: int, bank: int) -> np.ndarray:
        offset, capacity = self._offsets[(src, dst, bank)]
        return self._words[offset:offset + 1 + capacity]

    def begin(self, bank: int, sources) -> None:
        for (src, dst) in self.plan.region_capacity:
            if src in sources:
                self._view(src, dst, bank)[0] = 0
                self._used[(src, dst, bank)] = 0

    def write_batch(self, src: int, dst: int, bank: int, key: int,
                    tick: int, indices: np.ndarray) -> None:
        view = self._view(src, dst, bank)
        used = self._used[(src, dst, bank)]
        count = int(indices.size)
        needed = BATCH_HEADER_WORDS + count
        if 1 + used + needed > view.size:  # pragma: no cover - capacity
            raise RuntimeError(               # bound is worst-case exact
                "exchange region %d->%d overflow" % (src, dst))
        pos = 1 + used
        view[pos] = key
        view[pos + 1] = tick
        view[pos + 2] = count
        if count:
            view[pos + 3:pos + 3 + count] = indices
        self._used[(src, dst, bank)] = used + needed
        view[0] = used + needed

    def write_stub(self, src: int, bank: int, key: int, tick: int,
                   count: int) -> None:
        view = self._view(src, src, bank)
        used = self._used[(src, src, bank)]
        pos = 1 + used
        view[pos] = key
        view[pos + 1] = tick
        view[pos + 2] = count
        self._used[(src, src, bank)] = used + BATCH_HEADER_WORDS
        view[0] = used + BATCH_HEADER_WORDS

    def read(self, src: int, dst: int,
             bank: int) -> Iterator[Tuple[int, int, np.ndarray]]:
        view = self._view(src, dst, bank)
        end = 1 + int(view[0])
        pos = 1
        while pos < end:
            count = int(view[pos + 2])
            # astype copies out of the segment: the bank is recycled two
            # super-steps later, while ring scatters may hold the array.
            yield (int(view[pos]), int(view[pos + 1]),
                   view[pos + 3:pos + 3 + count].astype(np.int64))
            pos += BATCH_HEADER_WORDS + count

    def read_counts(self, src: int, dst: int,
                    bank: int) -> Iterator[Tuple[int, int]]:
        view = self._view(src, dst, bank)
        end = 1 + int(view[0])
        pos = 1
        payload = 0 if src == dst else None
        while pos < end:
            count = int(view[pos + 2])
            yield int(view[pos]), count
            pos += BATCH_HEADER_WORDS + (payload if payload is not None
                                         else count)

    def close(self) -> None:
        """Detach this process's mapping (workers, and the parent before
        unlink)."""
        self._words = None
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment from the system — parent only, exactly
        once, on the run's ``finally`` path."""
        if not self._unlinked:
            self._unlinked = True
            self._shm.unlink()
