"""One board's execution shard (:class:`BoardEngine`).

The engine replays the on-machine application model of Figure 7 for one
board's compiled sub-context, tick-synchronously and without the event
kernel in the loop:

* each placed vertex ("core") keeps the same neuron state, deferred
  -event ring buffer and per-core generator
  (:func:`~repro.neuron.population.core_rng` keyed by the core's
  physical location) the on-machine runtime would give it;
* every tick, each core drains its ring slot, integrates and spikes —
  exactly the millisecond-timer handler;
* spike batches are delivered through the decoded synaptic blocks of the
  board sub-context (the same fixed-point SDRAM words the transport
  fabric replays), landing in the destination ring at
  ``tick + 1 + delay`` — the arrival tick of the fabric transport at
  zero timer stagger.

Determinism: ring-buffer accumulation sums fixed-point weights (exact
multiples of 2^-4 in float64), so the sum is exact and independent of
delivery order; each core owns its generator; and the engine touches no
shared machine state.  A shard therefore computes the same spike trains
wherever and next to whatever it runs — the property the cluster runner
relies on for worker-count-independent results, and the reason the
sharded run is spike-train-equivalent to the unsharded engine
(``NeuralApplication(transport="fabric", stagger_us=0)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import repeat
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.compile.context import BoardContext
from repro.neuron.population import (
    Population,
    SpikeSourceArray,
    SpikeSourcePoisson,
    core_rng,
)
from repro.neuron.synapse import MAX_DELAY_TICKS, DeferredEventBuffer
from repro.profile import perf_now
from repro.runtime.application import ApplicationResult

__all__ = ["BoardEngine", "ShardResult", "SpikeBatch"]

#: One cross-core spike batch: the source vertex's sticky AER base key
#: plus the spiking neurons' vertex-local indices.
SpikeBatch = Tuple[int, np.ndarray]


@dataclass
class ShardResult:
    """What one board shard hands back after a run."""

    board: int
    result: ApplicationResult
    #: Packets that matched no synaptic block at their destination.
    unmatched_packets: int = 0
    #: Seconds this shard spent stepping neurons and scattering events.
    compute_s: float = 0.0
    #: Engine-side split of :attr:`compute_s` — ``step`` (tick loop),
    #: ``local_apply`` (same-board scatters) and ``remote_apply``
    #: (cross-board scatters).  Both apply stages run through one
    #: scatter path, so the split is symmetric; the old accounting
    #: timed local applies but not remote ones.
    stage_s: Dict[str, float] = field(default_factory=dict)


class _ShardCoreState:
    """Runtime state of one placed vertex inside a shard."""

    __slots__ = ("spec", "population", "state", "buffer", "rng", "bias",
                 "is_source")

    def __init__(self, spec, population: Population, timestep_ms: float,
                 seed: Optional[int]) -> None:
        self.spec = spec
        self.population = population
        self.rng = core_rng(seed, spec.chip.x, spec.chip.y, spec.core_id)
        self.is_source = population.is_spike_source
        self.state = None
        if not self.is_source:
            # The same sliced-population construction as the on-machine
            # runtime's _VertexState, fed the same per-core generator.
            sliced = Population(
                spec.vertex.n_neurons, population.parameters,
                label="%s-shard-%d" % (population.label, spec.vertex.index))
            self.state = sliced.build_state(timestep_ms, self.rng)
        self.buffer = DeferredEventBuffer(spec.vertex.n_neurons,
                                          MAX_DELAY_TICKS)
        self.bias = None
        if population.bias_current_na:
            self.bias = np.full(spec.vertex.n_neurons,
                                population.bias_current_na)


class BoardEngine:
    """Tick-synchronous executor of one board's compiled sub-context."""

    def __init__(self, context: BoardContext,
                 populations: Dict[str, Population],
                 seed: Optional[int], timestep_ms: float,
                 export_keys: Optional[Set[int]] = None) -> None:
        self.context = context
        self.board = context.board
        self.timestep_ms = timestep_ms
        #: Keys whose spiking indices :meth:`step` must hand back for
        #: the exchange.  When given, the engine also delivers its own
        #: board's legs *locally* at the end of each tick (worker-side
        #: routing: same-board traffic never leaves the process); when
        #: ``None`` the engine keeps the legacy route-everything
        #: behaviour and exports every outgoing key.
        self.export_keys = export_keys
        self.local_delivery = export_keys is not None
        self.cores = [
            _ShardCoreState(spec, populations[spec.vertex.population_label],
                            timestep_ms, seed)
            for spec in context.cores]
        self.result = ApplicationResult(duration_ms=0.0)
        self._spike_chunks: Dict[str, List[Tuple[float, np.ndarray]]] = {}
        for label, population in populations.items():
            self.result.spike_counts[label] = np.zeros(population.size,
                                                       dtype=int)
            if population.record_spikes:
                self.result.spikes[label] = []
                self._spike_chunks[label] = []
        self.unmatched_packets = 0
        self.step_s = 0.0
        self.local_apply_s = 0.0
        self.remote_apply_s = 0.0
        self.ticks_run = 0

    @property
    def compute_s(self) -> float:
        """Seconds spent stepping neurons and scattering events.

        Sums every engine stage — unlike the pre-fused accounting,
        cross-board scatters (``remote_apply``) count as board compute
        too, keeping serial and pooled compute totals comparable.
        """
        return self.step_s + self.local_apply_s + self.remote_apply_s

    @property
    def stage_s(self) -> Dict[str, float]:
        """The engine-stage split reported in :class:`ShardResult`."""
        return {"step": self.step_s, "local_apply": self.local_apply_s,
                "remote_apply": self.remote_apply_s}

    # ------------------------------------------------------------------
    # Delivery (the packet-received + DMA-complete half of Figure 7)
    # ------------------------------------------------------------------
    def _scatter_batches(
            self, batches: Iterable[Tuple[int, int, np.ndarray]]) -> None:
        """Deliver ``(key, age, spiking)`` batches through the per-leg
        blocks — the single scatter path behind both :meth:`apply`
        (age 0) and :meth:`apply_remote` (age from the send tick)."""
        deliveries = self.context.deliveries
        result = self.result
        for key, age, spiking in batches:
            for core_index, csr in deliveries.get(key, ()):
                if csr is None:
                    self.unmatched_packets += int(spiking.size)
                    continue
                core = self.cores[core_index]
                slots = csr.synapse_slots(spiking)
                if slots.size:
                    core.buffer.add_events_aged(csr.targets[slots],
                                                csr.weights[slots],
                                                csr.delay_ticks[slots],
                                                age)
                    result.synaptic_events += int(slots.size)
                    result.delivered_charge_na += float(
                        csr.weights[slots].sum())

    def apply(self, batches: List[SpikeBatch]) -> None:
        """Scatter inbound spike batches into the ring buffers.

        Called at the tick barrier with the previous tick's batches, so
        the buffers' current tick is already one past the send tick and
        a delay-``d`` synapse lands ``d`` ticks ahead — the arrival slot
        of the fabric transport.
        """
        began = perf_now()
        self._scatter_batches(
            (key, 0, spiking) for key, spiking in batches)
        self.local_apply_s += perf_now() - began

    def apply_remote(self,
                     batches: Iterable[Tuple[int, int, np.ndarray]]) -> None:
        """Scatter exchanged cross-board batches at a super-step barrier.

        Each batch carries its *send tick*: under conservative lookahead
        the barrier may be up to ``L - 1`` ticks later than the per-tick
        exchange would have been, so every event's programmable delay is
        re-based by the batch's age (``delay - age``; the lookahead
        bound ``L <= 1 + d_min`` guarantees this never goes negative).
        """
        began = perf_now()
        current = self.ticks_run
        self._scatter_batches(
            (key, current - 1 - send_tick, spiking)
            for key, send_tick, spiking in batches)
        self.remote_apply_s += perf_now() - began

    # ------------------------------------------------------------------
    # One tick (the millisecond-timer half of Figure 7)
    # ------------------------------------------------------------------
    def step(self, tick: int,
             inbound: Optional[List[SpikeBatch]] = None) -> List[SpikeBatch]:
        """Apply ``inbound`` (the previous tick's batches), then run one
        tick over every core.  Returns the board's outbound batches."""
        if inbound:
            self.apply(inbound)
        began = perf_now()
        time_ms = tick * self.timestep_ms
        outbound: List[SpikeBatch] = []
        local: List[SpikeBatch] = []
        deliveries = self.context.deliveries
        result = self.result
        for core in self.cores:
            spec = core.spec
            if core.is_source:
                spikes = self._source_spikes(core, tick)
            else:
                inputs = core.buffer.drain()
                core.state.inject_synaptic_input(inputs)
                spikes = core.state.step(core.bias)
            spiking = np.flatnonzero(spikes)
            if spiking.size == 0:
                continue
            label = spec.vertex.population_label
            global_indices = spiking + spec.vertex.slice_start
            result.spike_counts[label][global_indices] += 1
            if label in self._spike_chunks:
                # Recorded as (tick, index-array) chunks; finish()
                # expands them into the per-spike tuples of the
                # ApplicationResult surface off the hot path.
                self._spike_chunks[label].append((time_ms, global_indices))
            if spec.has_outgoing:
                result.packets_sent += int(spiking.size)
                if self.local_delivery:
                    if spec.base_key in deliveries:
                        local.append((spec.base_key, spiking))
                    if spec.base_key in self.export_keys:
                        outbound.append((spec.base_key, spiking))
                else:
                    outbound.append((spec.base_key, spiking))
        self.step_s += perf_now() - began
        self.ticks_run = tick + 1
        # Same-board legs are delivered after every core has drained
        # tick ``t`` (all ring buffers now sit at ``t + 1``), which is
        # exactly when the old parent-routed path applied them — but
        # without the batch ever leaving this process.
        if local:
            self.apply(local)
        return outbound

    def _source_spikes(self, core: _ShardCoreState, tick: int) -> np.ndarray:
        population = core.population
        vertex = core.spec.vertex
        if isinstance(population, SpikeSourcePoisson):
            probability = SpikeSourcePoisson.spike_probability(
                population.rate_hz, self.timestep_ms)
            return core.rng.random(vertex.n_neurons) < probability
        if isinstance(population, SpikeSourceArray):
            mask = population.spikes_for_tick(tick, self.timestep_ms)
            return mask[vertex.slice_start:vertex.slice_stop]
        return np.zeros(vertex.n_neurons, dtype=bool)

    def prefetch_sources(self, upto_tick: int) -> None:
        """Hook for engines that can precompute stimulus spikes ahead of
        a barrier wait (see the fused engine); a no-op here."""

    def core_voltages(self, core_index: int) -> Optional[np.ndarray]:
        """The membrane potentials of one local core (``None`` for a
        spike source) — the surface the fused engine's bit-identity
        tests compare against."""
        state = self.cores[core_index].state
        return None if state is None else state.v

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finish(self, duration_ms: float) -> ShardResult:
        """Close out the shard's recording and return its result.

        Materialises the per-tick spike chunks into the per-spike
        ``(time_ms, index)`` tuples of the ApplicationResult surface —
        chunks were appended in tick order with in-tick indices already
        sorted, so the expansion is the canonical recording order.
        """
        self.result.duration_ms = duration_ms
        for label, chunks in self._spike_chunks.items():
            out = self.result.spikes[label]
            for time_ms, indices in chunks:
                out.extend(zip(repeat(time_ms), indices.tolist()))
            chunks.clear()
        return ShardResult(board=self.board, result=self.result,
                           unmatched_packets=self.unmatched_packets,
                           compute_s=self.compute_s,
                           stage_s=self.stage_s)
