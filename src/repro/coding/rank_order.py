"""Rank-order codes [20].

"In an extension of this approach, the N active neurons convey additional
information in the order in which they fire — these are 'rank-order'
codes" (Section 5.4).  Following Thorpe and Van Rullen, the most strongly
driven neuron fires first, the next strongest second, and so on; a decoder
weights each neuron's contribution by a geometric attenuation of its firing
rank.  A single wave of spikes — one spike per active neuron — then carries
enough information to identify a stimulus, which is how the visual system
can respond faster than any rate estimate could be formed.

The module provides the encoder (values → firing order / latencies), the
rank-order decoder (order → reconstructed values), similarity scoring
against a codebook, and a salvo framing helper modelling the paper's
suggestion that background rhythms separate successive rank-order salvos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class RankOrderCode:
    """Encode an analog vector as the firing order of a population.

    Parameters
    ----------
    attenuation:
        Geometric attenuation per rank used by the decoder: the neuron
        firing at rank r contributes with sensitivity ``attenuation ** r``.
        Thorpe's modelling uses values around 0.9.
    latency_spread_ms:
        Latency assigned to the full range of ranks: the first neuron fires
        at 0 ms, the last active neuron ``latency_spread_ms`` later.  Only
        the order matters to the decoder; the latencies exist so the code
        can be played through the spiking substrate.
    n_active:
        Number of neurons allowed to fire per salvo (None = all).
    """

    attenuation: float = 0.9
    latency_spread_ms: float = 10.0
    n_active: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.attenuation <= 1.0:
            raise ValueError("attenuation must be in (0, 1]")
        if self.latency_spread_ms < 0:
            raise ValueError("latency spread must be non-negative")

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_order(self, values: Sequence[float]) -> List[int]:
        """Return neuron indices in firing order (strongest first)."""
        array = np.asarray(values, dtype=float)
        order = list(np.lexsort((np.arange(array.size), -array)))
        order = [int(i) for i in order]
        if self.n_active is not None:
            order = order[:self.n_active]
        return order

    def encode_latencies(self, values: Sequence[float]) -> List[Tuple[int, float]]:
        """Return ``(neuron, latency_ms)`` pairs for one salvo of spikes."""
        order = self.encode_order(values)
        if len(order) <= 1:
            return [(neuron, 0.0) for neuron in order]
        step = self.latency_spread_ms / (len(order) - 1)
        return [(neuron, rank * step) for rank, neuron in enumerate(order)]

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, order: Sequence[int], size: int) -> np.ndarray:
        """Reconstruct a value vector from a firing order.

        The neuron at rank r receives the value ``attenuation ** r``; silent
        neurons receive zero.  The reconstruction preserves the ordering of
        the original values, which is all the similarity metric needs.
        """
        values = np.zeros(size)
        for rank, neuron in enumerate(order):
            if not 0 <= neuron < size:
                raise IndexError("neuron %d outside population of %d"
                                 % (neuron, size))
            values[neuron] = self.attenuation ** rank
        return values

    def similarity(self, order: Sequence[int],
                   reference_values: Sequence[float]) -> float:
        """Similarity between an observed firing order and a stored stimulus.

        The score is the normalised dot product between the rank-order
        reconstruction and the reference value vector, the measure used in
        rank-order classification studies.
        """
        reference = np.asarray(reference_values, dtype=float)
        reconstruction = self.decode(order, reference.size)
        norm = np.linalg.norm(reconstruction) * np.linalg.norm(reference)
        if norm == 0:
            return 0.0
        return float(np.dot(reconstruction, reference) / norm)

    def classify(self, order: Sequence[int],
                 codebook: Sequence[Sequence[float]]) -> int:
        """Return the index of the codebook stimulus best matching ``order``."""
        if not len(codebook):
            raise ValueError("the codebook is empty")
        scores = [self.similarity(order, reference) for reference in codebook]
        return int(np.argmax(scores))


@dataclass
class RankOrderDecoder:
    """Online decoder that accumulates evidence spike by spike.

    This is the form a SpiNNaker application would use: every incoming
    spike packet advances the rank counter and adds the attenuated
    contribution of the spiking neuron, so a classification is available
    after every spike — long before a rate estimate would converge.
    """

    size: int
    attenuation: float = 0.9

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("population size must be positive")
        if not 0.0 < self.attenuation <= 1.0:
            raise ValueError("attenuation must be in (0, 1]")
        self.reset()

    def reset(self) -> None:
        """Start a new salvo (called on the falling phase of the rhythm)."""
        self.accumulated = np.zeros(self.size)
        self.rank = 0
        self.spikes_seen: List[int] = []

    def spike(self, neuron: int) -> None:
        """Process one incoming spike."""
        if not 0 <= neuron < self.size:
            raise IndexError("neuron %d outside population of %d"
                             % (neuron, self.size))
        if neuron in self.spikes_seen:
            # Rank-order codes use at most one spike per neuron per salvo;
            # duplicates add no information and are ignored.
            return
        self.accumulated[neuron] = self.attenuation ** self.rank
        self.rank += 1
        self.spikes_seen.append(neuron)

    def best_match(self, codebook: Sequence[Sequence[float]]) -> int:
        """Current best-matching codebook index given the spikes seen so far."""
        if not len(codebook):
            raise ValueError("the codebook is empty")
        scores = []
        for reference in codebook:
            ref = np.asarray(reference, dtype=float)
            norm = np.linalg.norm(self.accumulated) * np.linalg.norm(ref)
            scores.append(0.0 if norm == 0 else
                          float(np.dot(self.accumulated, ref) / norm))
        return int(np.argmax(scores))
