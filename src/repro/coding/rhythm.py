"""Background rhythms as rank-order salvo separators (Section 5.4).

The paper asks "how the start and end of a particular salvo of spikes is
determined" and offers one answer: "it is possible that each rank-order
salvo occurs on the rising surge of a rhythm, and the falling phase of the
rhythm acts as a symbol separator".  This module makes that speculation
executable:

* :class:`BackgroundRhythm` generates a periodic oscillation and classifies
  instants into rising and falling phases;
* :class:`SalvoSegmenter` splits a stream of timestamped spikes into
  salvos, one per rising phase, discarding spikes that fall in the
  separator (falling) phase;
* :class:`RhythmicRankOrderChannel` combines the segmenter with a
  :class:`~repro.coding.rank_order.RankOrderCode` to transmit a sequence of
  symbols, one per rhythm cycle, and decode them at the receiver.

The module is intentionally self-contained: it operates on plain
``(time_ms, neuron_id)`` spike tuples so it can be applied equally to the
host-side reference simulator and to spikes recorded from the simulated
machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coding.rank_order import RankOrderCode
from repro.neuron.population import simulation_rng

__all__ = [
    "BackgroundRhythm",
    "Salvo",
    "SalvoSegmenter",
    "RhythmicRankOrderChannel",
    "TransmissionReport",
]


@dataclass(frozen=True)
class BackgroundRhythm:
    """A periodic background oscillation used as a symbol clock.

    The rhythm is described by its period and the fraction of each cycle
    spent in the rising ("surge") phase during which spikes are accepted
    as part of the current salvo.  The remaining fraction is the falling
    phase, which acts as the symbol separator.
    """

    period_ms: float = 25.0
    rising_fraction: float = 0.6
    phase_offset_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError("rhythm period must be positive")
        if not 0.0 < self.rising_fraction < 1.0:
            raise ValueError("rising_fraction must lie strictly between 0 and 1")

    def cycle_of(self, time_ms: float) -> int:
        """Index of the rhythm cycle containing ``time_ms``."""
        return int(math.floor((time_ms - self.phase_offset_ms) / self.period_ms))

    def phase_of(self, time_ms: float) -> float:
        """Phase in [0, 1) within the current cycle."""
        relative = (time_ms - self.phase_offset_ms) % self.period_ms
        return relative / self.period_ms

    def is_rising(self, time_ms: float) -> bool:
        """True if ``time_ms`` falls in the rising (accepting) phase."""
        return self.phase_of(time_ms) < self.rising_fraction

    def cycle_start(self, cycle: int) -> float:
        """Start time of a cycle."""
        return self.phase_offset_ms + cycle * self.period_ms

    def rising_window(self, cycle: int) -> Tuple[float, float]:
        """The [start, end) time window of the rising phase of a cycle."""
        start = self.cycle_start(cycle)
        return start, start + self.rising_fraction * self.period_ms

    def amplitude(self, time_ms: float) -> float:
        """A smooth oscillation value in [-1, 1], peaking mid-rising-phase.

        Only used for visualisation and for rhythm-locked stimulus
        generation; the segmentation logic uses the piecewise phase test.
        """
        return math.sin(2.0 * math.pi * self.phase_of(time_ms))


@dataclass
class Salvo:
    """One rank-order salvo: the spikes accepted during one rising phase."""

    cycle: int
    window_start_ms: float
    window_end_ms: float
    #: (time_ms, neuron_id) pairs in arrival order.
    spikes: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def order(self) -> List[int]:
        """Neuron identifiers in firing order, first spike per neuron only."""
        seen: List[int] = []
        for _time, neuron in sorted(self.spikes):
            if neuron not in seen:
                seen.append(neuron)
        return seen

    @property
    def n_spikes(self) -> int:
        """Total spikes in the salvo, including repeats from one neuron."""
        return len(self.spikes)


class SalvoSegmenter:
    """Split a spike stream into rank-order salvos using a background rhythm."""

    def __init__(self, rhythm: BackgroundRhythm) -> None:
        self.rhythm = rhythm

    def segment(self, spikes: Sequence[Tuple[float, int]]) -> List[Salvo]:
        """Group spikes into one salvo per rhythm cycle.

        Spikes arriving in the falling (separator) phase are discarded, as
        are empty cycles: the returned list contains only cycles in which
        at least one spike was accepted, in cycle order.
        """
        salvos: Dict[int, Salvo] = {}
        for time_ms, neuron in sorted(spikes):
            if not self.rhythm.is_rising(time_ms):
                continue
            cycle = self.rhythm.cycle_of(time_ms)
            if cycle not in salvos:
                start, end = self.rhythm.rising_window(cycle)
                salvos[cycle] = Salvo(cycle=cycle, window_start_ms=start,
                                      window_end_ms=end)
            salvos[cycle].spikes.append((time_ms, neuron))
        return [salvos[cycle] for cycle in sorted(salvos)]

    def rejected_fraction(self, spikes: Sequence[Tuple[float, int]]) -> float:
        """Fraction of spikes that fell into the separator phase."""
        if not spikes:
            return 0.0
        rejected = sum(1 for time_ms, _ in spikes
                       if not self.rhythm.is_rising(time_ms))
        return rejected / len(spikes)


@dataclass
class TransmissionReport:
    """Outcome of sending a symbol sequence over a rhythmic rank-order channel."""

    symbols_sent: List[int]
    symbols_received: List[int]
    salvos: List[Salvo]

    @property
    def n_correct(self) -> int:
        """Number of symbols decoded to the value that was sent."""
        return sum(1 for sent, received
                   in zip(self.symbols_sent, self.symbols_received)
                   if sent == received)

    @property
    def accuracy(self) -> float:
        """Fraction of sent symbols decoded correctly."""
        if not self.symbols_sent:
            return 0.0
        return self.n_correct / len(self.symbols_sent)


class RhythmicRankOrderChannel:
    """Transmit symbols as rank-order salvos locked to a background rhythm.

    Each symbol selects one codeword from a codebook of drive vectors; the
    channel converts the drive vector into spike latencies relative to the
    start of the next rising phase (strong drive fires early), optionally
    jitters them, and the receiver segments the resulting spike stream and
    classifies each salvo against the codebook.
    """

    def __init__(self, code: RankOrderCode, rhythm: BackgroundRhythm,
                 codebook: Sequence[Sequence[float]],
                 jitter_ms: float = 0.0,
                 seed: Optional[int] = None) -> None:
        if len(codebook) == 0:
            raise ValueError("the codebook must contain at least one codeword")
        sizes = {len(word) for word in codebook}
        if len(sizes) != 1:
            raise ValueError("all codewords must have the same length")
        self.code = code
        self.rhythm = rhythm
        self.codebook = [np.asarray(word, dtype=float) for word in codebook]
        self.jitter_ms = jitter_ms
        self._rng = simulation_rng(seed)

    @property
    def population_size(self) -> int:
        """Number of neurons in the transmitting population."""
        return len(self.codebook[0])

    def spikes_for_symbol(self, symbol: int, cycle: int) -> List[Tuple[float, int]]:
        """Spike times encoding one symbol inside one rhythm cycle."""
        if not 0 <= symbol < len(self.codebook):
            raise ValueError("symbol %d outside codebook of %d entries"
                             % (symbol, len(self.codebook)))
        window_start, window_end = self.rhythm.rising_window(cycle)
        window = window_end - window_start
        latencies = self.code.encode_latencies(self.codebook[symbol])
        spikes: List[Tuple[float, int]] = []
        if not latencies:
            return spikes
        max_latency = max(latency for _neuron, latency in latencies) or 1.0
        for neuron, latency in latencies:
            # Scale the abstract latency into the rising window, leaving a
            # small guard band so jitter cannot push a spike over the edge.
            time_ms = window_start + 0.8 * window * (latency / max_latency)
            if self.jitter_ms > 0:
                time_ms += float(self._rng.uniform(0.0, self.jitter_ms))
            if window_start <= time_ms < window_end:
                spikes.append((time_ms, neuron))
        return spikes

    def transmit(self, symbols: Sequence[int],
                 start_cycle: int = 0) -> List[Tuple[float, int]]:
        """Spike stream encoding a symbol sequence, one symbol per cycle."""
        stream: List[Tuple[float, int]] = []
        for offset, symbol in enumerate(symbols):
            stream.extend(self.spikes_for_symbol(symbol, start_cycle + offset))
        return sorted(stream)

    def receive(self, spikes: Sequence[Tuple[float, int]]) -> List[int]:
        """Decode a spike stream back into one symbol per non-empty salvo."""
        segmenter = SalvoSegmenter(self.rhythm)
        symbols: List[int] = []
        for salvo in segmenter.segment(spikes):
            symbols.append(self.code.classify(salvo.order, self.codebook))
        return symbols

    def run(self, symbols: Sequence[int],
            start_cycle: int = 0) -> TransmissionReport:
        """Transmit and decode a symbol sequence, returning a report."""
        stream = self.transmit(symbols, start_cycle=start_cycle)
        received = self.receive(stream)
        segmenter = SalvoSegmenter(self.rhythm)
        return TransmissionReport(symbols_sent=list(symbols),
                                  symbols_received=received,
                                  salvos=segmenter.segment(stream))
