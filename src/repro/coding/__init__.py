"""Neural information coding (Section 5.4).

The paper surveys how information might be represented by spiking neurons —
firing rates, N-of-M population codes, rank-order codes — and describes the
retinal ganglion-cell circuitry (centre-surround "Mexican hat" receptive
fields with lateral inhibition) whose redundancy underlies the brain's
graceful degradation when neurons die.  This package implements each of
those codes plus the retinal encoder so that experiments E13 and E14 can
reproduce the paper's qualitative claims.

* :mod:`repro.coding.rate` — rate coding with Poisson spike generation and
  window-count decoding.
* :mod:`repro.coding.n_of_m` — N-of-M population codes and their capacity.
* :mod:`repro.coding.rank_order` — rank-order codes [20]: the order of a
  single wave of spikes carries the information.
* :mod:`repro.coding.retina` — a difference-of-Gaussians retinal ganglion
  layer with lateral inhibition, overlapping scales and neuron-failure
  tolerance [21].
* :mod:`repro.coding.rhythm` — background rhythms as rank-order salvo
  separators: the paper's "rising surge of a rhythm / falling phase as a
  symbol separator" speculation made executable.
"""

from repro.coding.n_of_m import NOfMCode
from repro.coding.rank_order import RankOrderCode, RankOrderDecoder
from repro.coding.rate import RateCode
from repro.coding.retina import GanglionCellType, RetinaModel, RetinaParameters
from repro.coding.rhythm import (
    BackgroundRhythm,
    RhythmicRankOrderChannel,
    Salvo,
    SalvoSegmenter,
    TransmissionReport,
)

__all__ = [
    "NOfMCode",
    "RankOrderCode",
    "RankOrderDecoder",
    "RateCode",
    "GanglionCellType",
    "RetinaModel",
    "RetinaParameters",
    "BackgroundRhythm",
    "RhythmicRankOrderChannel",
    "Salvo",
    "SalvoSegmenter",
    "TransmissionReport",
]
