"""N-of-M population codes.

Section 5.4: "the information may be encoded in the choice of a subset of a
population that is active at any time, which in its purest form is an
N-of-M code familiar to the asynchronous design community (though with N
and M values in the hundreds or thousands, rather than the low units as is
common in engineered systems)."

This module provides encoding (choose the N most strongly driven neurons of
a population of M), decoding, validity checking and the information-
capacity calculation ``log2 C(M, N)`` that quantifies why such codes are
attractive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence

import numpy as np

from repro.neuron.population import simulation_rng


@dataclass(frozen=True)
class NOfMCode:
    """An N-of-M population code.

    Attributes
    ----------
    m:
        Population size.
    n:
        Number of active neurons per symbol.
    """

    m: int
    n: int

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError("M must be positive")
        if not 0 < self.n <= self.m:
            raise ValueError("N must satisfy 0 < N <= M")

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def codewords(self) -> int:
        """Number of distinct codewords, C(M, N)."""
        return math.comb(self.m, self.n)

    @property
    def capacity_bits(self) -> float:
        """Information capacity of one symbol, log2 C(M, N)."""
        return math.log2(self.codewords)

    @property
    def capacity_bits_per_spike(self) -> float:
        """Capacity normalised by the number of spikes spent per symbol."""
        return self.capacity_bits / self.n

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, drive: Sequence[float]) -> FrozenSet[int]:
        """Choose the N most strongly driven neurons as the active subset.

        Ties are broken by neuron index so encoding is deterministic.
        """
        values = np.asarray(drive, dtype=float)
        if values.shape != (self.m,):
            raise ValueError("expected %d drive values, got %s"
                             % (self.m, values.shape))
        order = np.lexsort((np.arange(self.m), -values))
        return frozenset(int(i) for i in order[:self.n])

    def is_valid(self, active: Iterable[int]) -> bool:
        """True if ``active`` is a legal codeword (exactly N in-range neurons)."""
        active_set = set(active)
        if len(active_set) != self.n:
            return False
        return all(0 <= i < self.m for i in active_set)

    def overlap(self, first: Iterable[int], second: Iterable[int]) -> int:
        """Number of active neurons two codewords share."""
        return len(set(first) & set(second))

    def similarity(self, first: Iterable[int], second: Iterable[int]) -> float:
        """Normalised overlap in [0, 1] used for nearest-codeword decoding."""
        return self.overlap(first, second) / self.n

    def decode(self, active: Iterable[int],
               codebook: Sequence[FrozenSet[int]]) -> int:
        """Return the index of the nearest codebook entry to ``active``.

        Decoding is by maximum overlap, which tolerates a few missing or
        spurious spikes — the robustness property that motivates population
        codes in the first place.
        """
        if not codebook:
            raise ValueError("the codebook is empty")
        active_set = set(active)
        best_index = 0
        best_overlap = -1
        for index, codeword in enumerate(codebook):
            overlap = len(active_set & set(codeword))
            if overlap > best_overlap:
                best_overlap = overlap
                best_index = index
        return best_index

    def corrupt(self, active: FrozenSet[int], n_errors: int,
                rng: Optional[np.random.Generator] = None) -> FrozenSet[int]:
        """Flip ``n_errors`` active neurons to inactive ones (noise model)."""
        rng = rng or simulation_rng(None)
        active_list = sorted(active)
        inactive = sorted(set(range(self.m)) - active)
        n_errors = min(n_errors, len(active_list), len(inactive))
        drop = rng.choice(len(active_list), size=n_errors, replace=False)
        add = rng.choice(len(inactive), size=n_errors, replace=False)
        result = set(active_list)
        for index in drop:
            result.discard(active_list[int(index)])
        for index in add:
            result.add(inactive[int(index)])
        return frozenset(result)
