"""Rate coding.

"The oldest theory is that information is encoded as the rate of spiking of
a neuron" (Section 5.4).  The paper's point — reproduced by experiment
E14 — is that rate codes need a long observation window: "it is hard to
estimate a firing rate from a single spike!".  This module provides a
straightforward Poisson rate encoder and a window-count decoder whose
accuracy can be measured as a function of the observation window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.neuron.population import simulation_rng


@dataclass
class RateCode:
    """Encode analog values as firing rates and decode by counting spikes.

    Parameters
    ----------
    max_rate_hz:
        Firing rate corresponding to an input value of 1.0.
    min_rate_hz:
        Firing rate corresponding to an input value of 0.0 (spontaneous
        background activity).
    timestep_ms:
        Simulation timestep used when generating spike trains.
    """

    max_rate_hz: float = 100.0
    min_rate_hz: float = 0.0
    timestep_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.max_rate_hz <= self.min_rate_hz:
            raise ValueError("max_rate_hz must exceed min_rate_hz")
        if self.timestep_ms <= 0:
            raise ValueError("timestep must be positive")

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def rates_for(self, values: np.ndarray) -> np.ndarray:
        """Map input values in [0, 1] to firing rates in Hz."""
        clipped = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)
        return self.min_rate_hz + clipped * (self.max_rate_hz - self.min_rate_hz)

    def encode(self, values: np.ndarray, duration_ms: float,
               rng: Optional[np.random.Generator] = None) -> List[List[float]]:
        """Generate Poisson spike trains (per-neuron lists of spike times)."""
        rng = rng or simulation_rng(None)
        rates = self.rates_for(values)
        n_ticks = int(round(duration_ms / self.timestep_ms))
        trains: List[List[float]] = []
        for rate in rates:
            p = rate * self.timestep_ms / 1000.0
            ticks = np.flatnonzero(rng.random(n_ticks) < p)
            trains.append([float(t * self.timestep_ms) for t in ticks])
        return trains

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, spike_trains: Sequence[Sequence[float]],
               window_ms: float) -> np.ndarray:
        """Estimate the encoded values from spikes within ``[0, window_ms)``.

        The estimate inverts the rate mapping using the spike count in the
        window; with a one-millisecond window a neuron can contribute at
        most one spike, which is exactly why rate decoding fails at the
        single-wave timescale highlighted by the paper.
        """
        if window_ms <= 0:
            raise ValueError("window must be positive")
        estimates = []
        span = self.max_rate_hz - self.min_rate_hz
        for train in spike_trains:
            count = sum(1 for t in train if t < window_ms)
            rate = count * 1000.0 / window_ms
            estimates.append((rate - self.min_rate_hz) / span)
        return np.clip(np.array(estimates), 0.0, 1.0)

    def decoding_error(self, values: np.ndarray, window_ms: float,
                       duration_ms: Optional[float] = None,
                       rng: Optional[np.random.Generator] = None) -> float:
        """Root-mean-square decoding error for a given observation window."""
        duration = duration_ms if duration_ms is not None else window_ms
        trains = self.encode(values, duration, rng)
        estimates = self.decode(trains, window_ms)
        return float(np.sqrt(np.mean((estimates - np.clip(values, 0, 1)) ** 2)))
