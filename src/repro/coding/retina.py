"""Retinal ganglion-cell model (Section 5.4, reference [21]).

"In the retina ... the spiking ganglion cells have characteristic
centre-on surround-off ('Mexican hat') or centre-off surround-on receptive
fields, representing an array of two-dimensional filters that are applied
to the image on the retina.  The filters cover the retina at different
overlapping scales, and lateral inhibition reduces the information
redundancy ...  If a neuron fails it will cease to generate output and also
cease to generate lateral inhibition, so a near-neighbour with a similar
receptive field will take over and very little information will be lost."

The model implements exactly that chain:

* difference-of-Gaussians (DoG) receptive fields, ON-centre and OFF-centre,
  tiled over the image at several overlapping scales;
* intensity-to-latency conversion so the layer emits a rank-order salvo;
* divisive lateral inhibition between neighbouring cells of the same type
  and scale;
* a failure model in which dead neurons fall silent *and stop inhibiting*,
  so their neighbours' responses grow — the takeover mechanism behind the
  paper's graceful-degradation claim (experiment E13);
* linear reconstruction of the image from the surviving responses, so the
  information loss can be quantified as a function of the failure rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.neuron.population import simulation_rng


class GanglionCellType(Enum):
    """Polarity of a ganglion cell's receptive field."""

    ON_CENTRE = "on-centre"
    OFF_CENTRE = "off-centre"


@dataclass(frozen=True)
class RetinaParameters:
    """Parameters of the retinal ganglion layer.

    Attributes
    ----------
    scales:
        Centre Gaussian widths (in pixels) of the receptive-field scales.
        The surround width is ``surround_ratio`` times the centre width.
    surround_ratio:
        Ratio of surround to centre Gaussian width (classically ~1.6-2).
    stride_fraction:
        Cell spacing as a fraction of the centre width; values below 2
        give overlapping coverage.
    inhibition_strength:
        Strength of the divisive lateral inhibition between neighbouring
        cells of the same type and scale.
    inhibition_radius_cells:
        Neighbourhood radius (in cell spacings) over which inhibition acts.
    latency_max_ms:
        Latency assigned to the weakest responding cell; the strongest
        responds immediately (intensity-to-latency coding).
    """

    scales: Tuple[float, ...] = (1.0, 2.0)
    surround_ratio: float = 1.6
    stride_fraction: float = 1.0
    inhibition_strength: float = 0.5
    inhibition_radius_cells: float = 1.5
    latency_max_ms: float = 20.0

    def __post_init__(self) -> None:
        if not self.scales:
            raise ValueError("at least one receptive-field scale is required")
        if any(s <= 0 for s in self.scales):
            raise ValueError("receptive-field scales must be positive")
        if self.surround_ratio <= 1.0:
            raise ValueError("surround must be wider than the centre")
        if not 0.0 <= self.inhibition_strength < 1.0:
            raise ValueError("inhibition strength must be in [0, 1)")


@dataclass
class GanglionCell:
    """One ganglion cell: position, scale, polarity and its current state."""

    index: int
    row: float
    col: float
    scale: float
    cell_type: GanglionCellType
    response: float = 0.0
    failed: bool = False


class RetinaModel:
    """A retinal ganglion layer over a square grey-scale image."""

    def __init__(self, image_shape: Tuple[int, int],
                 parameters: Optional[RetinaParameters] = None) -> None:
        if len(image_shape) != 2 or min(image_shape) < 3:
            raise ValueError("image must be 2-D and at least 3x3 pixels")
        self.image_shape = image_shape
        self.parameters = parameters or RetinaParameters()
        self.cells: List[GanglionCell] = []
        self._kernels: Dict[int, np.ndarray] = {}
        self._build_mosaic()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_mosaic(self) -> None:
        """Tile ON- and OFF-centre cells of every scale over the image."""
        rows, cols = self.image_shape
        index = 0
        for scale in self.parameters.scales:
            stride = max(1.0, scale * self.parameters.stride_fraction)
            positions_r = np.arange(0.0, rows - 1e-9, stride)
            positions_c = np.arange(0.0, cols - 1e-9, stride)
            for r in positions_r:
                for c in positions_c:
                    for cell_type in GanglionCellType:
                        cell = GanglionCell(index=index, row=float(r),
                                            col=float(c), scale=scale,
                                            cell_type=cell_type)
                        self._kernels[index] = self._make_kernel(cell)
                        self.cells.append(cell)
                        index += 1

    def _make_kernel(self, cell: GanglionCell) -> np.ndarray:
        """Difference-of-Gaussians kernel of one cell over the whole image."""
        rows, cols = self.image_shape
        p = self.parameters
        rr, cc = np.mgrid[0:rows, 0:cols]
        distance_sq = (rr - cell.row) ** 2 + (cc - cell.col) ** 2
        centre_sigma = cell.scale
        surround_sigma = cell.scale * p.surround_ratio
        centre = np.exp(-distance_sq / (2 * centre_sigma ** 2))
        surround = np.exp(-distance_sq / (2 * surround_sigma ** 2))
        centre /= centre.sum()
        surround /= surround.sum()
        kernel = centre - surround
        if cell.cell_type is GanglionCellType.OFF_CENTRE:
            kernel = -kernel
        return kernel

    @property
    def n_cells(self) -> int:
        """Number of ganglion cells in the mosaic."""
        return len(self.cells)

    # ------------------------------------------------------------------
    # Failure injection (experiment E13)
    # ------------------------------------------------------------------
    def fail_cells(self, fraction: float,
                   rng: Optional[np.random.Generator] = None) -> List[int]:
        """Mark a random ``fraction`` of cells as failed; return their indices."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("failure fraction must be in [0, 1]")
        rng = rng or simulation_rng(None)
        n_failures = int(round(fraction * self.n_cells))
        failed = rng.choice(self.n_cells, size=n_failures, replace=False)
        for index in failed:
            self.cells[int(index)].failed = True
        return [int(i) for i in failed]

    def reset_failures(self) -> None:
        """Restore every cell to working order."""
        for cell in self.cells:
            cell.failed = False

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def respond(self, image: np.ndarray) -> np.ndarray:
        """Compute every cell's (rectified, laterally-inhibited) response.

        Failed cells respond zero and contribute no inhibition, which is
        what lets their neighbours take over.
        """
        image = np.asarray(image, dtype=float)
        if image.shape != self.image_shape:
            raise ValueError("expected image of shape %s, got %s"
                             % (self.image_shape, image.shape))
        raw = np.zeros(self.n_cells)
        for cell in self.cells:
            if cell.failed:
                continue
            raw[cell.index] = max(0.0, float(
                np.sum(self._kernels[cell.index] * image)))

        inhibited = self._lateral_inhibition(raw)
        for cell in self.cells:
            cell.response = inhibited[cell.index]
        return inhibited

    def _lateral_inhibition(self, responses: np.ndarray) -> np.ndarray:
        """Divisive inhibition from same-type, same-scale neighbours."""
        p = self.parameters
        if p.inhibition_strength == 0.0:
            return responses.copy()
        inhibited = responses.copy()
        # Group cells by (type, scale) so inhibition stays within a mosaic.
        groups: Dict[Tuple[GanglionCellType, float], List[GanglionCell]] = {}
        for cell in self.cells:
            groups.setdefault((cell.cell_type, cell.scale), []).append(cell)
        for (_, scale), group in groups.items():
            radius = p.inhibition_radius_cells * max(
                1.0, scale * p.stride_fraction)
            for cell in group:
                if cell.failed or responses[cell.index] == 0.0:
                    continue
                neighbour_sum = 0.0
                neighbours = 0
                for other in group:
                    if other.index == cell.index or other.failed:
                        continue
                    distance = math.hypot(cell.row - other.row,
                                          cell.col - other.col)
                    if distance <= radius:
                        neighbour_sum += responses[other.index]
                        neighbours += 1
                if neighbours:
                    mean_neighbour = neighbour_sum / neighbours
                    inhibited[cell.index] = responses[cell.index] / (
                        1.0 + p.inhibition_strength * mean_neighbour)
        return inhibited

    def encode_latencies(self, image: np.ndarray) -> List[Tuple[int, float]]:
        """Convert responses to a rank-order salvo of ``(cell, latency_ms)``.

        Stronger responses fire earlier (intensity-to-latency coding);
        silent and failed cells do not fire at all.
        """
        responses = self.respond(image)
        active = [(index, response) for index, response in enumerate(responses)
                  if response > 0.0]
        if not active:
            return []
        active.sort(key=lambda item: (-item[1], item[0]))
        strongest = active[0][1]
        salvo = []
        for index, response in active:
            latency = self.parameters.latency_max_ms * (1.0 - response / strongest)
            salvo.append((index, latency))
        return salvo

    # ------------------------------------------------------------------
    # Reconstruction and information metrics
    # ------------------------------------------------------------------
    def reconstruct(self, responses: Optional[np.ndarray] = None) -> np.ndarray:
        """Linear reconstruction of the image from cell responses.

        Each cell adds its kernel weighted by its response; ON and OFF
        kernels have opposite signs so the two mosaics cooperate.  The
        output is normalised to zero mean, matching the DoG responses which
        only carry contrast (not absolute luminance).
        """
        if responses is None:
            responses = np.array([cell.response for cell in self.cells])
        reconstruction = np.zeros(self.image_shape)
        for cell in self.cells:
            if cell.failed or responses[cell.index] == 0.0:
                continue
            reconstruction += responses[cell.index] * self._kernels[cell.index]
        if np.any(reconstruction):
            reconstruction -= reconstruction.mean()
        return reconstruction

    def reconstruction_similarity(self, image: np.ndarray) -> float:
        """Correlation between the contrast image and its reconstruction.

        Returns the Pearson correlation between the zero-mean input image
        and the reconstruction from the current (possibly failure-degraded)
        responses; 1.0 is a perfect contrast reconstruction.
        """
        image = np.asarray(image, dtype=float)
        responses = self.respond(image)
        reconstruction = self.reconstruct(responses)
        contrast = image - image.mean()
        denominator = np.linalg.norm(contrast) * np.linalg.norm(reconstruction)
        if denominator == 0:
            return 0.0
        return float(np.sum(contrast * reconstruction) / denominator)

    # ------------------------------------------------------------------
    # Test imagery
    # ------------------------------------------------------------------
    @staticmethod
    def make_test_image(shape: Tuple[int, int], kind: str = "bars",
                        rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Generate a synthetic stimulus (the paper's workloads are visual).

        ``kind`` is one of ``"bars"`` (oriented gratings), ``"spot"`` (a
        bright disc on a dark background) or ``"noise"``.
        """
        rows, cols = shape
        rng = rng or simulation_rng(0)
        if kind == "bars":
            cc = np.tile(np.arange(cols), (rows, 1))
            return 0.5 + 0.5 * np.sin(2 * np.pi * cc / max(4, cols // 4))
        if kind == "spot":
            rr, cc = np.mgrid[0:rows, 0:cols]
            distance = np.hypot(rr - rows / 2.0, cc - cols / 2.0)
            return (distance < min(rows, cols) / 4.0).astype(float)
        if kind == "noise":
            return rng.random(shape)
        raise ValueError("unknown test image kind %r" % (kind,))
