"""Hierarchical stage profiler — the one timing substrate.

See :mod:`repro.profile.registry` for the design notes.  Quick tour::

    from repro.profile import profile_stage, enable, flatten

    _TICK = profile_stage("tick")          # hoist out of the loop

    enable()                               # or REPRO_PROFILE=1
    for _ in range(ticks):
        with _TICK:
            step()

    metrics.update(flatten())              # profile_tick_s, ...

Disabled (the default), every stage entry is a single flag check.
"""

from repro.profile.registry import (  # noqa: F401
    ENV_FLAG,
    ProfileRegistry,
    StageRecord,
    enable,
    enabled,
    flatten,
    get_registry,
    merge,
    perf_now,
    profile_stage,
    record_stage,
    reset,
    sanitise,
    snapshot,
)

__all__ = [
    "ENV_FLAG",
    "ProfileRegistry",
    "StageRecord",
    "enable",
    "enabled",
    "flatten",
    "get_registry",
    "merge",
    "perf_now",
    "profile_stage",
    "record_stage",
    "reset",
    "sanitise",
    "snapshot",
]
