"""The always-on stage profiler (:class:`ProfileRegistry`).

Every subsystem of the reproduction has a phase-structured hot path —
the compile passes, the Fig. 7 timer-tick loop (timer → spike
processing → exchange), the cluster super-step stages, fabric batch
delivery, service request handling — and each used to time itself with
its own ad-hoc ``perf_counter`` pairs, or not at all.  This module is
the one substrate they all report through:

* a **stage** is a named span entered via :meth:`ProfileRegistry.stage`
  (context manager *and* decorator);
* stages **nest**: a stage entered while another is open on the same
  thread is recorded under the open stage's path, and the parent's
  *self* seconds exclude the child's span;
* the registry records, per path, the **call count**, **cumulative
  seconds** (whole span) and **self seconds** (span minus profiled
  children);
* :meth:`snapshot` / :meth:`merge` move registries across the cluster
  runner's worker pipes (plain tuples, picklable);
* :meth:`flatten` renders ``profile_<stage>_s`` / ``_self_s`` /
  ``_calls`` keys for ``benchmarks/reporting.emit_json``, which is how
  stage timings land in the ``BENCH_*.json`` files the perf-regression
  gate trends.

The **process-global** registry is gated by the ``REPRO_PROFILE``
environment flag (any value but empty/``0``) and is *disabled* by
default: the disabled path of :func:`profile_stage` and
:func:`record_stage` is a single attribute check and an immediate
return (no frame push, no clock read, no allocation beyond the reused
stage object), so instrumentation can stay in the tick loops of
production runs.  Subsystems that must always measure (the compile
pipeline's per-pass report, the cluster runner under ``profile=True``)
construct their own always-enabled registry instead.

``time.perf_counter`` itself is sanctioned *only here* (enforced by the
``clock-discipline`` rule of :mod:`repro.checks`): everything else in
``src/repro`` measures durations through :func:`perf_now` or a stage,
so there is exactly one place timing behaviour can drift.
"""

from __future__ import annotations

import functools
import os
import re
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "ENV_FLAG", "StageRecord", "ProfileRegistry", "perf_now",
    "profile_stage", "record_stage", "get_registry", "enabled", "enable",
    "reset", "flatten", "snapshot", "merge",
]

#: Set (to anything but empty/``0``) to enable the process-global
#: registry without touching code.
ENV_FLAG = "REPRO_PROFILE"

#: The sanctioned duration clock: monotonic, highest available
#: resolution, meaningless as an absolute value (so it cannot leak into
#: scheduling decisions the way a wall "now" can).
perf_now = time.perf_counter

_SANITISE_RE = re.compile(r"[^0-9A-Za-z]+")

#: A stage path: names root → leaf, e.g. ``("pass_total", "place")``.
StagePath = Tuple[str, ...]


def _env_enabled() -> bool:
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def sanitise(name: str) -> str:
    """A stage name as a metric-key fragment (lower_snake, no symbols)."""
    return _SANITISE_RE.sub("_", name).strip("_").lower()


class StageRecord:
    """Accumulated figures of one stage path."""

    __slots__ = ("path", "calls", "cum_s", "self_s")

    def __init__(self, path: StagePath) -> None:
        self.path = path
        self.calls = 0
        self.cum_s = 0.0
        self.self_s = 0.0

    @property
    def name(self) -> str:
        """The leaf stage name."""
        return self.path[-1]

    @property
    def depth(self) -> int:
        """Nesting depth (1 = top level)."""
        return len(self.path)

    def as_tuple(self) -> Tuple[Tuple[str, ...], int, float, float]:
        """The picklable wire form used by :meth:`ProfileRegistry.snapshot`."""
        return (self.path, self.calls, self.cum_s, self.self_s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "StageRecord(%s: %d calls, %.6fs cum, %.6fs self)" % (
            "/".join(self.path), self.calls, self.cum_s, self.self_s)


class _Frame:
    """One live stage entry on a thread's stage stack."""

    __slots__ = ("path", "began", "child_s", "elapsed_s")

    def __init__(self, path: StagePath, began: float) -> None:
        self.path = path
        self.began = began
        self.child_s = 0.0
        #: Filled at exit; readable after ``with ... as frame:`` blocks.
        self.elapsed_s = 0.0


class _NoopFrame:
    """What a disabled stage entry yields: inert, zero elapsed."""

    __slots__ = ()
    elapsed_s = 0.0


_NOOP_FRAME = _NoopFrame()


class _Stage:
    """A named stage bound to a registry.

    Stateless besides its name, so one instance can be hoisted out of a
    hot loop and re-entered every iteration — including concurrently
    from several threads (the per-entry state lives on a thread-local
    stack inside the registry).  Usable as a context manager or as a
    decorator; the decorator's disabled path tail-calls the wrapped
    function after a single flag check.
    """

    __slots__ = ("name", "registry")

    def __init__(self, name: str, registry: "ProfileRegistry") -> None:
        self.name = name
        self.registry = registry

    def __enter__(self) -> Union[_Frame, _NoopFrame]:
        registry = self.registry
        if not registry.enabled:
            return _NOOP_FRAME
        return registry._push(self.name)

    def __exit__(self, *_exc) -> bool:
        registry = self.registry
        if registry.enabled:
            registry._pop()
        return False

    def __call__(self, fn: Callable) -> Callable:
        registry = self.registry
        name = self.name

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not registry.enabled:
                return fn(*args, **kwargs)
            registry._push(name)
            try:
                return fn(*args, **kwargs)
            finally:
                registry._pop()

        wrapper.__profile_stage__ = name
        return wrapper


class ProfileRegistry:
    """A per-process (or per-run) store of hierarchical stage timings."""

    def __init__(self, enabled: Optional[bool] = None) -> None:
        #: Live switch: flipping it never replaces the registry object,
        #: so stage objects hoisted at import stay valid.
        self.enabled = _env_enabled() if enabled is None else bool(enabled)
        self._lock = threading.Lock()
        self._records: Dict[StagePath, StageRecord] = {}  # guarded-by: _lock
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Stage entry/exit (the hot path)
    # ------------------------------------------------------------------
    def stage(self, name: str) -> _Stage:
        """A reusable stage bound to this registry (ctx manager/decorator)."""
        return _Stage(name, self)

    def _stack(self) -> List[_Frame]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, name: str) -> _Frame:
        stack = self._stack()
        path = stack[-1].path + (name,) if stack else (name,)
        frame = _Frame(path, perf_now())
        stack.append(frame)
        return frame

    def _pop(self) -> None:
        stack = getattr(self._local, "stack", None)
        if not stack:
            # The profiler was enabled mid-stage; nothing was pushed at
            # entry, so there is nothing to account.
            return
        frame = stack.pop()
        elapsed = perf_now() - frame.began
        frame.elapsed_s = elapsed
        if stack:
            stack[-1].child_s += elapsed
        self._record(frame.path, 1, elapsed, elapsed - frame.child_s)

    def _record(self, path: StagePath, calls: int, cum_s: float,
                self_s: float) -> None:
        with self._lock:
            record = self._records.get(path)
            if record is None:
                record = self._records[path] = StageRecord(path)
            record.calls += calls
            record.cum_s += cum_s
            record.self_s += self_s

    # ------------------------------------------------------------------
    # Adopting externally measured counters
    # ------------------------------------------------------------------
    def add(self, path: Union[str, StagePath], seconds: float,
            calls: int = 1, self_s: Optional[float] = None) -> None:
        """Fold an externally measured duration into the registry.

        For counters a subsystem accumulates itself (the board engines'
        per-instance stage seconds, the service's request latencies)
        rather than timing through a live stage entry.  ``self_s``
        defaults to ``seconds`` (no profiled children).
        """
        if isinstance(path, str):
            path = (path,)
        self._record(tuple(path), calls,
                     seconds, seconds if self_s is None else self_s)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def records(self) -> List[StageRecord]:
        """Every stage record, sorted by path (stable across runs)."""
        with self._lock:
            return [self._records[path] for path in sorted(self._records)]

    def stage_seconds(self) -> Dict[str, float]:
        """Leaf stage name -> cumulative seconds (summed over paths)."""
        totals: Dict[str, float] = {}
        for record in self.records():
            name = record.name
            totals[name] = totals.get(name, 0.0) + record.cum_s
        return totals

    def snapshot(self) -> List[Tuple[Tuple[str, ...], int, float, float]]:
        """A picklable copy of every record (the worker-pipe wire form)."""
        with self._lock:
            return [self._records[path].as_tuple()
                    for path in sorted(self._records)]

    def merge(self, other: Union["ProfileRegistry",
                                 Iterable[Tuple]]) -> None:
        """Fold another registry (or a :meth:`snapshot`) into this one.

        How the cluster runner unifies its child-worker registries: each
        worker snapshots at the end of the run, the parent merges the
        snapshots it receives over the result pipes.
        """
        rows = other.snapshot() if isinstance(other, ProfileRegistry) \
            else other
        for path, calls, cum_s, self_s in rows:
            self._record(tuple(path), calls, cum_s, self_s)

    def flatten(self, prefix: str = "profile_") -> Dict[str, float]:
        """Stage figures as flat ``{metric_name: float}`` pairs.

        Aggregates by *leaf* stage name (one stage reached through two
        parents reports one combined figure) and emits three keys per
        stage — ``<prefix><stage>_s`` (cumulative seconds),
        ``<prefix><stage>_self_s`` and ``<prefix><stage>_calls`` —
        compatible with ``benchmarks/reporting.emit_json``.
        """
        cum: Dict[str, float] = {}
        self_s: Dict[str, float] = {}
        calls: Dict[str, float] = {}
        for record in self.records():
            name = sanitise(record.name)
            cum[name] = cum.get(name, 0.0) + record.cum_s
            self_s[name] = self_s.get(name, 0.0) + record.self_s
            calls[name] = calls.get(name, 0.0) + record.calls
        flat: Dict[str, float] = {}
        for name in sorted(cum):
            flat["%s%s_s" % (prefix, name)] = cum[name]
            flat["%s%s_self_s" % (prefix, name)] = self_s[name]
            flat["%s%s_calls" % (prefix, name)] = calls[name]
        return flat

    def reset(self) -> None:
        """Drop every record (the registry object itself stays live)."""
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


# ----------------------------------------------------------------------
# The process-global, env-flag-gated registry
# ----------------------------------------------------------------------
#: Never replaced, only toggled/cleared — module-hoisted stage objects
#: stay bound to it for the life of the process.
_REGISTRY = ProfileRegistry()


def get_registry() -> ProfileRegistry:
    """The process-global registry (disabled unless ``REPRO_PROFILE``)."""
    return _REGISTRY


def enabled() -> bool:
    """Is the process-global registry recording?"""
    return _REGISTRY.enabled


def enable(on: bool = True) -> None:
    """Turn the process-global registry on/off (tests, benches)."""
    _REGISTRY.enabled = bool(on)


def reset() -> None:
    """Clear the process-global registry's records."""
    _REGISTRY.reset()


def profile_stage(name: str) -> _Stage:
    """A stage on the process-global registry.

    Decorator and context manager; hoist the returned object out of hot
    loops and re-enter it.  Disabled path: one attribute check, then
    straight to the wrapped code.
    """
    return _Stage(name, _REGISTRY)


def record_stage(name: str, seconds: float, calls: int = 1) -> None:
    """Fold an externally measured duration into the global registry.

    No-op (one flag check) when profiling is disabled — safe on request
    hot paths.
    """
    if _REGISTRY.enabled:
        _REGISTRY.add(name, seconds, calls)


def flatten(prefix: str = "profile_") -> Dict[str, float]:
    """Flatten the process-global registry (see the method)."""
    return _REGISTRY.flatten(prefix)


def snapshot() -> List[Tuple[Tuple[str, ...], int, float, float]]:
    """Snapshot the process-global registry (see the method)."""
    return _REGISTRY.snapshot()


def merge(other: Union[ProfileRegistry, Iterable[Tuple]]) -> None:
    """Merge into the process-global registry (see the method)."""
    _REGISTRY.merge(other)
