"""repro.service — spalloc as a long-running HTTP/JSON service.

The shared million-core facility of the paper is not driven by one-shot
SDP datagrams: thousands of concurrent tenants talk to a persistent
allocation service.  This package turns the in-process
:class:`~repro.alloc.server.AllocationServer` into that service, using
only the standard library:

* :mod:`repro.service.api` — the versioned wire protocol: endpoint
  table, typed error codes, structured error bodies;
* :mod:`repro.service.server` — :class:`AllocationService`, the
  threaded HTTP server with per-endpoint metrics and graceful
  drain-on-shutdown;
* :mod:`repro.service.client` — :class:`ServiceClient` /
  :class:`JobSession`, sessionful clients with connection reuse, a
  keepalive heartbeat thread and retry-with-backoff on transient 503s;
* :mod:`repro.service.backpressure` — the admission gate mapping
  per-tenant token-bucket quotas and queue overload onto
  ``429`` + ``Retry-After`` (load shedding, never a 500);
* :mod:`repro.service.runtime` — the wall-clock bridge: the monotonic
  clock drives the event kernel and the keepalive-expiry reaper in one
  place, plus in-flight draining for graceful shutdown;
* :mod:`repro.service.metrics` — request counters and latency
  histograms behind the ``/v1/metrics`` endpoint.
"""

from repro.service.api import API_PREFIX, API_VERSION, ENDPOINTS, ServiceError
from repro.service.backpressure import AdmissionGate, BackpressureConfig
from repro.service.client import (BadRequest, JobSession, NoSuchJob,
                                  ServiceBusy, ServiceClient,
                                  ServiceClientError, ServiceUnavailable)
from repro.service.metrics import LatencyHistogram, MetricsRegistry
from repro.service.runtime import ServiceRuntime
from repro.service.server import AllocationService

__all__ = [
    "API_PREFIX",
    "API_VERSION",
    "ENDPOINTS",
    "ServiceError",
    "AdmissionGate",
    "BackpressureConfig",
    "BadRequest",
    "JobSession",
    "NoSuchJob",
    "ServiceBusy",
    "ServiceClient",
    "ServiceClientError",
    "ServiceUnavailable",
    "LatencyHistogram",
    "MetricsRegistry",
    "ServiceRuntime",
    "AllocationService",
]
