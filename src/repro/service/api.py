"""The versioned HTTP/JSON wire protocol of the allocation service.

One place defines what travels over the network: the endpoint table
(also rendered into the README and the CLI help), the typed error codes
shared with the SDP command surface of :mod:`repro.alloc.server`, and
the :class:`ServiceError` exception the server raises internally and
maps onto an HTTP status plus a structured JSON error body::

    {"error": "<human-readable message>", "code": "<typed code>",
     "retry_after_s": <seconds, only on 429/503>}

Backpressure responses (``429 Too Many Requests`` for quota exhaustion
and queue overload, ``503 Service Unavailable`` while draining) always
carry a ``Retry-After`` header so well-behaved clients can pace
themselves instead of hammering the server.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "API_VERSION", "API_PREFIX", "ENDPOINTS", "ServiceError",
    "CODE_BAD_REQUEST", "CODE_NO_SUCH_JOB", "CODE_NOT_FOUND",
    "CODE_METHOD_NOT_ALLOWED", "CODE_QUOTA_EXHAUSTED",
    "CODE_QUEUE_OVERLOADED", "CODE_DRAINING", "CODE_INTERNAL",
    "dump_body", "parse_body", "retry_after_header", "field", "split_path",
]

#: Version segment of every path; unknown versions are 404s so clients
#: fail fast instead of silently speaking the wrong schema.
API_VERSION = "v1"
API_PREFIX = "/" + API_VERSION

# Typed error codes (the 4xx/5xx family carried in error bodies).
CODE_BAD_REQUEST = "bad-request"
CODE_NO_SUCH_JOB = "no-such-job"
CODE_NOT_FOUND = "not-found"
CODE_METHOD_NOT_ALLOWED = "method-not-allowed"
CODE_QUOTA_EXHAUSTED = "quota-exhausted"
CODE_QUEUE_OVERLOADED = "queue-overloaded"
CODE_DRAINING = "draining"
CODE_INTERNAL = "internal-error"

#: ``(method, path template, request schema, response schema, label)``
#: — the complete public surface, one row per endpoint.  The label is
#: both the route name in :mod:`repro.service.server` and the
#: per-endpoint metrics key; ``repro.checks`` (rule ``api-surface``)
#: verifies the three stay in sync.
ENDPOINTS = (
    ("POST", "/v1/jobs",
     '{"tenant", "width", "height", "priority"?, "keepalive_ms"?, '
     '"label"?}',
     "job summary + queue_depth (201)",
     "create"),
    ("GET", "/v1/jobs",
     "?tenant=&state= filters",
     '{"jobs": [job summary, ...]}',
     "list"),
    ("GET", "/v1/jobs/<id>",
     "-",
     "job summary (state, lease rect, wait_ms)",
     "status"),
    ("POST", "/v1/jobs/<id>/keepalive",
     "-",
     'job summary + {"alive": bool}',
     "keepalive"),
    ("DELETE", "/v1/jobs/<id>",
     "-",
     'job summary + {"released": bool}',
     "release"),
    ("GET", "/v1/machine",
     "-",
     "dimensions, free/leased chips, fragmentation, queue depth",
     "machine"),
    ("GET", "/v1/metrics",
     "-",
     "uptime, per-endpoint counters + latency histograms, scheduler "
     "stats, backpressure counters",
     "metrics"),
)


class ServiceError(Exception):
    """An API failure carrying its HTTP status, typed code and body."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s
        #: Endpoint label the error was raised from (set by the router
        #: so per-endpoint metrics attribute 4xx/5xx correctly).
        self.endpoint: Optional[str] = None

    def body(self) -> Dict[str, Any]:
        """The structured JSON error body."""
        body: Dict[str, Any] = {"error": self.message, "code": self.code}
        if self.retry_after_s is not None:
            body["retry_after_s"] = self.retry_after_s
        return body


def retry_after_header(retry_after_s: Optional[float]) -> Optional[str]:
    """Render a ``Retry-After`` value (integral seconds, at least 1)."""
    if retry_after_s is None:
        return None
    return str(max(1, int(math.ceil(retry_after_s))))


def dump_body(payload: Dict[str, Any]) -> bytes:
    """Serialise a response body."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def parse_body(raw: bytes) -> Dict[str, Any]:
    """Parse a request body; empty bodies are empty objects.

    Raises :class:`ServiceError` (400, ``bad-request``) on malformed
    JSON or a non-object payload, so route handlers can assume a dict.
    """
    if not raw:
        return {}
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ServiceError(400, CODE_BAD_REQUEST,
                           "malformed JSON body: %s" % (error,))
    if not isinstance(payload, dict):
        raise ServiceError(400, CODE_BAD_REQUEST,
                           "request body must be a JSON object, got %s"
                           % type(payload).__name__)
    return payload


def field(payload: Dict[str, Any], name: str, kind, default=None,
          required: bool = False) -> Any:
    """Extract and coerce one request field, with typed 400s.

    ``kind`` is the target type (int/float/str); booleans are rejected
    where numbers are expected (JSON ``true`` is not a width).
    """
    if name not in payload:
        if required:
            raise ServiceError(400, CODE_BAD_REQUEST,
                               "missing required field %r" % name)
        return default
    value = payload[name]
    if kind in (int, float) and isinstance(value, bool):
        raise ServiceError(400, CODE_BAD_REQUEST,
                           "field %r must be a number, got a boolean" % name)
    try:
        return kind(value)
    except (TypeError, ValueError):
        raise ServiceError(400, CODE_BAD_REQUEST,
                           "field %r must be %s-compatible, got %r"
                           % (name, kind.__name__, value))


def split_path(path: str) -> Tuple[str, ...]:
    """Split an URL path into non-empty segments."""
    return tuple(segment for segment in path.split("/") if segment)
