"""The HTTP/JSON allocation service (spalloc as a network service).

:class:`AllocationService` wraps the in-process
:class:`~repro.alloc.server.AllocationServer` with a long-running
``ThreadingHTTPServer`` speaking the versioned JSON API of
:mod:`repro.service.api`::

    service = AllocationService.build(width=16, height=16)
    service.start()
    ...                     # POST http://127.0.0.1:<port>/v1/jobs
    service.stop()

Request flow: every handler thread is admitted by the
:class:`~repro.service.runtime.ServiceRuntime` (503 + ``Retry-After``
while draining), advances the simulated clock to the wall clock under
the runtime lock, runs the route, and records its latency in the
:class:`~repro.service.metrics.MetricsRegistry`.  Backpressure — tenant
quota exhaustion and admission-queue overload — comes back as 429 with
``Retry-After``; *no* error path produces an unhandled exception, so
the wire never sees a 500 for a malformed or over-rate request.
"""

from __future__ import annotations

import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.alloc.job import JobRequest, JobState
from repro.alloc.server import AllocationServer
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.host.host_system import HostSystem
from repro.service import api
from repro.service.api import ServiceError
from repro.service.backpressure import AdmissionGate, BackpressureConfig
from repro.profile import perf_now, record_stage
from repro.service.metrics import MetricsRegistry
from repro.service.runtime import ServiceRuntime

__all__ = ["AllocationService"]

#: Largest request body accepted, in bytes.
MAX_BODY_BYTES = 1 << 20


class AllocationService:
    """A long-running HTTP allocation service over one machine."""

    def __init__(self, server: AllocationServer, *,
                 host: str = "127.0.0.1", port: int = 0,
                 time_scale: float = 1.0,
                 backpressure: Optional[BackpressureConfig] = None,
                 reaper_period_s: float = 0.02,
                 max_terminal_history: int = 10000) -> None:
        self.server = server
        self.scheduler = server.scheduler
        self.host = host
        self._requested_port = port
        self.runtime = ServiceRuntime(
            self.scheduler, time_scale=time_scale,
            reaper_period_s=reaper_period_s,
            max_terminal_history=max_terminal_history)
        self.gate = AdmissionGate(self.scheduler,
                                  backpressure or BackpressureConfig(),
                                  time_scale=time_scale)
        self.metrics = MetricsRegistry()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None

    @classmethod
    def build(cls, width: int = 16, height: int = 16,
              cores_per_chip: int = 1, **kwargs: Any) -> "AllocationService":
        """Construct a machine + host + SDP server + HTTP service."""
        machine = SpiNNakerMachine(MachineConfig(width=width, height=height,
                                                 cores_per_chip=cores_per_chip))
        return cls(AllocationServer(HostSystem(machine)), **kwargs)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("the service is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running service."""
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "AllocationService":
        """Bind the listener, start the runtime, serve in a thread."""
        if self._httpd is not None:
            raise RuntimeError("the service is already running")
        handler = _build_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self._requested_port),
                                          handler)
        self._httpd.daemon_threads = True
        self.runtime.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            name="alloc-service-http", daemon=True)
        self._serve_thread.start()
        return self

    def stop(self, drain_timeout_s: float = 5.0,
             release_leases: bool = True) -> bool:
        """Gracefully stop: drain, close the listener, detach, reclaim.

        In-flight requests run to completion (bounded by the timeout);
        new ones get 503 + ``Retry-After``.  With ``release_leases`` the
        machine is returned whole — every remaining lease is released —
        so stopping the service never strands chips.  Returns ``True``
        if the drain completed inside the timeout.
        """
        if self._httpd is None:
            return True
        drained = self.runtime.stop(drain_timeout_s)
        self._httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._httpd.server_close()
        self._httpd = None
        self._serve_thread = None
        if release_leases:
            with self.runtime.lock:
                # Releasing an active job re-runs scheduling, which can
                # promote queued jobs into fresh leases — iterate until
                # nothing holds or waits, so the machine comes back whole.
                while True:
                    jobs = (self.scheduler.active_jobs()
                            + self.scheduler.queued_jobs())
                    if not jobs:
                        break
                    for job in jobs:
                        self.scheduler.release(job.job_id)
        self.server.host.detach_allocation_server(self.server)
        return drained

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def dispatch(self, method: str, path: str,
                 body: bytes) -> Tuple[int, Dict[str, Any], str]:
        """Route one request; returns ``(status, payload, endpoint)``.

        Raises :class:`ServiceError` for every failure mode; the handler
        turns those (and any unexpected exception) into error responses.
        """
        parsed = urllib.parse.urlsplit(path)
        segments = api.split_path(parsed.path)
        query = urllib.parse.parse_qs(parsed.query)
        if not segments or segments[0] != api.API_VERSION:
            raise ServiceError(
                404, api.CODE_NOT_FOUND,
                "unknown API version %r (this server speaks %s)"
                % ("/".join(segments[:1]), api.API_PREFIX))
        status, run, endpoint = self._route(method, segments[1:],
                                            parsed.path, query, body)
        try:
            return (status, run(), endpoint)
        except ServiceError as error:
            # Label the failure with its endpoint so backpressure 429s
            # land under "create" in the metrics, not "unrouted".
            error.endpoint = endpoint
            raise

    def _route(self, method: str, route: Tuple[str, ...], path: str,
               query: Dict[str, Any], body: bytes):
        """Resolve ``(status, thunk, endpoint label)`` for one request."""
        if route == ("jobs",):
            if method == "POST":
                return (201,
                        lambda: self._create(api.parse_body(body)), "create")
            if method == "GET":
                return (200, lambda: self._list(query), "list")
            raise _method_not_allowed(method)
        if len(route) == 2 and route[0] == "jobs":
            job_id = _job_id(route[1])
            if method == "GET":
                return (200, lambda: self._status(job_id), "status")
            if method == "DELETE":
                return (200, lambda: self._release(job_id), "release")
            raise _method_not_allowed(method)
        if len(route) == 3 and route[0] == "jobs" and route[2] == "keepalive":
            if method == "POST":
                return (200, lambda: self._keepalive(_job_id(route[1])),
                        "keepalive")
            raise _method_not_allowed(method)
        if route == ("machine",):
            if method == "GET":
                return (200, lambda: self._machine(), "machine")
            raise _method_not_allowed(method)
        if route == ("metrics",):
            if method == "GET":
                return (200, lambda: self._metrics(), "metrics")
            raise _method_not_allowed(method)
        raise ServiceError(404, api.CODE_NOT_FOUND,
                           "no such endpoint: %s %s" % (method, path))

    # ------------------------------------------------------------------
    # Route implementations
    # ------------------------------------------------------------------
    def _create(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        tenant = api.field(payload, "tenant", str, required=True)
        width = api.field(payload, "width", int, required=True)
        height = api.field(payload, "height", int, required=True)
        priority = api.field(payload, "priority", int, default=5)
        keepalive_ms = api.field(payload, "keepalive_ms", float,
                                 default=1000.0)
        label = api.field(payload, "label", str, default="")
        try:
            request = JobRequest(tenant=tenant, width=width, height=height,
                                 priority=priority, keepalive_ms=keepalive_ms,
                                 label=label)
        except (TypeError, ValueError) as error:
            raise ServiceError(400, api.CODE_BAD_REQUEST, str(error))
        with self.runtime.lock:
            self.runtime.advance()
            partitioner = self.scheduler.partitioner
            if (request.width > partitioner.width
                    or request.height > partitioner.height):
                raise ServiceError(
                    400, api.CODE_BAD_REQUEST,
                    "job %dx%d exceeds the %dx%d machine"
                    % (request.width, request.height,
                       partitioner.width, partitioner.height))
            self.gate.check_queue_depth()
            job = self.scheduler.submit(request)
            if job.state is JobState.REJECTED:
                raise self.gate.quota_rejection(tenant)
            response = job.describe()
            response["queue_depth"] = self.scheduler.queue_depth()
            return response

    def _status(self, job_id: int) -> Dict[str, Any]:
        with self.runtime.lock:
            self.runtime.advance()
            job = self.scheduler.job(job_id)
            if job is None:
                raise _no_such_job(job_id)
            return job.describe()

    def _keepalive(self, job_id: int) -> Dict[str, Any]:
        with self.runtime.lock:
            self.runtime.advance()
            job = self.scheduler.job(job_id)
            if job is None:
                raise _no_such_job(job_id)
            alive = self.scheduler.keepalive(job_id)
            response = job.describe()
            response["alive"] = alive
            return response

    def _release(self, job_id: int) -> Dict[str, Any]:
        with self.runtime.lock:
            self.runtime.advance()
            job = self.scheduler.job(job_id)
            if job is None:
                raise _no_such_job(job_id)
            released = self.scheduler.release(job_id)
            response = job.describe()
            response["released"] = released
            return response

    def _list(self, query: Dict[str, Any]) -> Dict[str, Any]:
        tenant = (query.get("tenant") or [None])[0]
        state = (query.get("state") or [None])[0]
        with self.runtime.lock:
            self.runtime.advance()
            jobs = [job.describe() for job in self.scheduler.jobs.values()
                    if (tenant is None or job.request.tenant == tenant)
                    and (state is None or job.state.value == state)]
        return {"jobs": jobs, "count": len(jobs)}

    def _machine(self) -> Dict[str, Any]:
        with self.runtime.lock:
            self.runtime.advance()
            partitioner = self.scheduler.partitioner
            snapshot: Dict[str, Any] = self.scheduler.load_snapshot()
            snapshot.update({
                "width": partitioner.width,
                "height": partitioner.height,
                "faulty_chips": len(partitioner.faulty),
                "policy": self.scheduler.policy,
            })
            return snapshot

    def _metrics(self) -> Dict[str, Any]:
        with self.runtime.lock:
            self.runtime.advance()
            scheduler_stats = self.scheduler.stats.summary()
            load = self.scheduler.load_snapshot()
        return {
            "runtime": self.runtime.snapshot(),
            "requests": self.metrics.snapshot(),
            "backpressure": self.gate.snapshot(),
            "scheduler": scheduler_stats,
            "load": load,
        }


def _no_such_job(job_id: int) -> ServiceError:
    return ServiceError(404, api.CODE_NO_SUCH_JOB,
                        "no such job: %d" % job_id)


def _method_not_allowed(method: str) -> ServiceError:
    return ServiceError(405, api.CODE_METHOD_NOT_ALLOWED,
                        "method %s not allowed here" % method)


def _job_id(segment: str) -> int:
    try:
        return int(segment)
    except ValueError:
        raise ServiceError(400, api.CODE_BAD_REQUEST,
                           "job id must be an integer, got %r" % segment)


def _build_handler(service: AllocationService):
    """The request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        #: Kill idle keep-alive connections so drained servers exit.
        timeout = 30
        #: Headers and body are separate writes; without TCP_NODELAY the
        #: Nagle + delayed-ACK interaction stalls every response ~40 ms.
        disable_nagle_algorithm = True

        # -- plumbing ---------------------------------------------------
        def log_message(self, *_args) -> None:  # quiet by default
            pass

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length", 0) or 0)
            if length > MAX_BODY_BYTES:
                raise ServiceError(400, api.CODE_BAD_REQUEST,
                                   "request body too large")
            return self.rfile.read(length) if length else b""

        def _respond(self, status: int, payload: Dict[str, Any],
                     retry_after_s: Optional[float] = None) -> None:
            body = api.dump_body(payload)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            retry_after = api.retry_after_header(retry_after_s)
            if retry_after is not None:
                self.send_header("Retry-After", retry_after)
            self.end_headers()
            self.wfile.write(body)

        def _handle(self, method: str) -> None:
            started = perf_now()
            endpoint = "unrouted"
            try:
                self.server_service.runtime.begin_request()
            except ServiceError as error:
                self._respond(error.status, error.body(),
                              error.retry_after_s)
                self._observe(endpoint, error.status, started)
                return
            try:
                body = self._read_body()
                status, payload, endpoint = (
                    self.server_service.dispatch(method, self.path, body))
                self._respond(status, payload)
            except ServiceError as error:
                status = error.status
                endpoint = error.endpoint or endpoint
                self._respond(status, error.body(), error.retry_after_s)
            except Exception as error:  # never leak a traceback to the wire
                status = 500
                fallback = ServiceError(500, api.CODE_INTERNAL,
                                        "%s: %s" % (type(error).__name__,
                                                    error))
                try:
                    self._respond(500, fallback.body())
                except OSError:
                    pass  # client went away mid-response
            finally:
                self.server_service.runtime.end_request()
            self._observe(endpoint, status, started)

        def _observe(self, endpoint: str, status: int,
                     started: float) -> None:
            elapsed_s = perf_now() - started
            self.server_service.metrics.observe(endpoint, status,
                                                elapsed_s * 1000.0)
            # The endpoint is only known after dispatch, so the profiler
            # adopts the measured span instead of wrapping a stage (a
            # single flag check when profiling is off).
            record_stage("service_" + endpoint, elapsed_s)

        # -- verbs ------------------------------------------------------
        def do_GET(self) -> None:
            self._handle("GET")

        def do_POST(self) -> None:
            self._handle("POST")

        def do_DELETE(self) -> None:
            self._handle("DELETE")

    Handler.server_service = service
    return Handler
