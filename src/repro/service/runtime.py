"""The long-running side of the allocation service.

The library scheduler lives in *simulated* time (the event kernel);
a network service lives in *wall* time.  :class:`ServiceRuntime` is the
bridge, and deliberately the **only** place where the two clocks meet:

* :meth:`advance` maps the monotonic wall clock onto simulated
  microseconds (``time_scale`` simulated us per wall us) and runs the
  event kernel up to that instant — firing pending power-on events —
  then runs exactly one keepalive-expiry sweep *at* that instant.
  Every request handler advances before it reads or writes scheduler
  state, so a job can never be observed READY after its lease expired:
  whatever wall moment an observation happens at, the sweep for that
  moment has already reclaimed lapsed leases.  Expiry is therefore never
  evaluated ad hoc at query time, and never against any clock other
  than the monotonic one sampled here.
* the **reaper thread** calls the same :meth:`advance` on a short
  period, so leases of silent clients are reclaimed even when no
  requests arrive, and prunes the scheduler's terminal-job history so
  a service that runs for weeks holds bounded memory.
* **graceful drain** — :meth:`begin_request` refuses new work with a
  503 (+ ``Retry-After``) once draining starts, while :meth:`drain`
  waits for the in-flight requests to finish, so shutdown never drops
  a half-processed release on the floor.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.alloc.scheduler import AllocationScheduler
from repro.service.api import CODE_DRAINING, ServiceError

__all__ = ["ServiceRuntime", "wall_now"]

#: Wall-clock period of the reaper thread (seconds).
DEFAULT_REAPER_PERIOD_S = 0.02
#: Terminal jobs kept addressable for status queries before pruning.
DEFAULT_TERMINAL_HISTORY = 10000


def wall_now() -> float:
    """The sanctioned monotonic wall-clock read (seconds).

    Client-side code (deadline loops, retry backoff) reads the wall
    clock through this seam rather than calling ``time.monotonic``
    directly, so every wall-time dependency in the package is findable
    from this module — the one place the two clocks are allowed to
    meet (see the module docstring).
    """
    return time.monotonic()


class ServiceRuntime:
    """Wall-clock execution, expiry reaping and graceful drain."""

    def __init__(self, scheduler: AllocationScheduler, *,
                 time_scale: float = 1.0,
                 reaper_period_s: float = DEFAULT_REAPER_PERIOD_S,
                 max_terminal_history: int = DEFAULT_TERMINAL_HISTORY,
                 drain_retry_after_s: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if reaper_period_s <= 0:
            raise ValueError("the reaper period must be positive")
        self.scheduler = scheduler
        self.kernel = scheduler.kernel
        #: Simulated microseconds advanced per wall-clock microsecond.
        self.time_scale = time_scale
        self.reaper_period_s = reaper_period_s
        self.max_terminal_history = max_terminal_history
        self.drain_retry_after_s = drain_retry_after_s
        #: Serialises every touch of the scheduler/kernel — the library
        #: objects are single-threaded by design.
        self.lock = threading.RLock()
        self._flow = threading.Condition(threading.Lock())
        self._in_flight = 0  # guarded-by: _flow
        self._draining = False  # guarded-by: _flow
        self._stopped = threading.Event()
        self._reaper: Optional[threading.Thread] = None
        self._wall_epoch = time.monotonic()
        self._started_at: Optional[float] = None
        self.reaper_passes = 0
        self.jobs_pruned = 0

    # ------------------------------------------------------------------
    # Clock bridge
    # ------------------------------------------------------------------
    @property
    def uptime_s(self) -> float:
        """Wall seconds since :meth:`start` (0 before it)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def _target_us(self) -> float:
        """Simulated time corresponding to the wall clock right now."""
        elapsed_s = time.monotonic() - self._wall_epoch
        return elapsed_s * 1e6 * self.time_scale

    def advance(self) -> None:
        """Advance simulated time to the wall clock and reap expiries.

        The single point where the monotonic clock drives the scheduler:
        run the kernel to "now" (power-ons, any timers), then one expiry
        sweep exactly at "now".
        """
        with self.lock:
            target_us = self._target_us()
            if target_us > self.kernel.now:
                self.kernel.run_until(target_us)
            self.scheduler.sweep()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Anchor the clock bridge and start the reaper thread."""
        if self._reaper is not None:
            raise RuntimeError("the service runtime is already running")
        self._wall_epoch = time.monotonic() - (self.kernel.now /
                                               (1e6 * self.time_scale))
        self._started_at = time.monotonic()
        self._stopped.clear()
        self._reaper = threading.Thread(target=self._reaper_loop,
                                        name="alloc-service-reaper",
                                        daemon=True)
        self._reaper.start()

    def _reaper_loop(self) -> None:
        while not self._stopped.wait(self.reaper_period_s):
            self.advance()
            with self.lock:
                self.jobs_pruned += self.scheduler.prune_terminal(
                    self.max_terminal_history)
            self.reaper_passes += 1

    def stop(self, drain_timeout_s: float = 5.0) -> bool:
        """Drain in-flight requests, then stop the reaper.

        Returns ``True`` if the drain completed inside the timeout.
        Safe to call more than once.
        """
        drained = self.drain(drain_timeout_s)
        self._stopped.set()
        reaper, self._reaper = self._reaper, None
        if reaper is not None:
            reaper.join(timeout=5.0)
        # One final reap so anything that lapsed mid-shutdown is
        # reclaimed before the owner tears the machine down.
        self.advance()
        return drained

    # ------------------------------------------------------------------
    # In-flight accounting and drain
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Requests currently being handled."""
        with self._flow:
            return self._in_flight

    @property
    def draining(self) -> bool:
        """True once shutdown has started refusing new requests."""
        with self._flow:
            return self._draining

    def begin_request(self) -> None:
        """Admit one request, or refuse with a 503 while draining."""
        with self._flow:
            if self._draining:
                raise ServiceError(
                    503, CODE_DRAINING,
                    "the service is draining for shutdown",
                    retry_after_s=self.drain_retry_after_s)
            self._in_flight += 1

    def end_request(self) -> None:
        """Mark one request finished."""
        with self._flow:
            self._in_flight = max(0, self._in_flight - 1)
            self._flow.notify_all()

    def drain(self, timeout_s: float = 5.0) -> bool:
        """Refuse new requests and wait for in-flight ones to finish."""
        deadline = time.monotonic() + timeout_s
        with self._flow:
            self._draining = True
            while self._in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._flow.wait(remaining)
        return True

    def resume(self) -> None:
        """Leave the draining state (tests and rolling restarts)."""
        with self._flow:
            self._draining = False

    def snapshot(self) -> Dict[str, float]:
        """Runtime figures for the ``/v1/metrics`` endpoint."""
        return {
            "uptime_s": self.uptime_s,
            "time_scale": self.time_scale,
            "in_flight": float(self.in_flight),
            "draining": float(self.draining),
            "reaper_passes": float(self.reaper_passes),
            "jobs_pruned": float(self.jobs_pruned),
            "simulated_now_ms": self.kernel.now / 1000.0,
        }
