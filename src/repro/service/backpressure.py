"""Admission control for the allocation service.

Two independent defences keep a flooded service answering fast instead
of collapsing, both surfaced to clients as ``429 Too Many Requests``
with a ``Retry-After`` header (never a 500):

* **per-tenant quota exhaustion** — the scheduler's token-bucket
  submission policing (see :mod:`repro.alloc.queue`) rejects over-rate
  jobs; the gate translates the rejection into a 429 whose
  ``Retry-After`` is the time the tenant's bucket needs to refill one
  token;
* **queue overload (load shedding)** — a bounded admission queue: once
  the scheduler's backlog crosses ``max_queue_depth``, new submissions
  are shed *before* they are queued, so the backlog — and every queued
  job's wait — stays bounded however hard the facility is hammered.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict

from repro.alloc.scheduler import AllocationScheduler
from repro.service.api import (CODE_QUEUE_OVERLOADED, CODE_QUOTA_EXHAUSTED,
                               ServiceError)

__all__ = ["BackpressureConfig", "AdmissionGate"]


@dataclass(frozen=True)
class BackpressureConfig:
    """Tunables of the admission gate."""

    #: Queued jobs beyond which new submissions are shed with a 429.
    max_queue_depth: int = 64
    #: ``Retry-After`` hint handed to shed clients, in wall seconds.
    shed_retry_after_s: float = 0.5
    #: Floor for quota-rejection ``Retry-After`` hints, in wall seconds.
    quota_min_retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("the admission queue must hold at least one job")
        if self.shed_retry_after_s <= 0 or self.quota_min_retry_after_s <= 0:
            raise ValueError("retry-after hints must be positive")


class AdmissionGate:
    """Bounded admission in front of the allocation scheduler."""

    def __init__(self, scheduler: AllocationScheduler,
                 config: BackpressureConfig = BackpressureConfig(),
                 time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self.scheduler = scheduler
        self.config = config
        #: Simulated microseconds per wall microsecond (the service
        #: runtime's clock ratio) — used to convert bucket-refill times
        #: expressed in simulated ms into wall-clock Retry-After hints.
        self.time_scale = time_scale
        self._lock = threading.Lock()
        self.shed_total = 0  # guarded-by: _lock
        self.quota_rejected_total = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Gate checks (called with the runtime lock held)
    # ------------------------------------------------------------------
    def check_queue_depth(self) -> None:
        """Shed the submission if the backlog is over the threshold."""
        depth = self.scheduler.queue_depth()
        if depth >= self.config.max_queue_depth:
            with self._lock:
                self.shed_total += 1
            raise ServiceError(
                429, CODE_QUEUE_OVERLOADED,
                "admission queue is full (%d queued >= limit %d)"
                % (depth, self.config.max_queue_depth),
                retry_after_s=self.config.shed_retry_after_s)

    def quota_rejection(self, tenant: str) -> ServiceError:
        """The 429 for a token-bucket rejection, with a refill hint."""
        with self._lock:
            self.quota_rejected_total += 1
        return ServiceError(
            429, CODE_QUOTA_EXHAUSTED,
            "tenant %r is over its job-submission rate" % tenant,
            retry_after_s=self.quota_retry_after_s(tenant))

    def quota_retry_after_s(self, tenant: str) -> float:
        """Wall seconds until the tenant's bucket can admit one job."""
        queue = self.scheduler.queue
        quota = queue.quota_for(tenant)
        rate_per_ms = quota.submission_rate_per_ms
        if rate_per_ms <= 0:
            return self.config.shed_retry_after_s
        deficit = max(0.0, 1.0 - queue.submission_tokens(tenant))
        sim_ms = deficit / rate_per_ms
        wall_s = (sim_ms / 1000.0) / self.time_scale
        return max(self.config.quota_min_retry_after_s, wall_s)

    def snapshot(self) -> Dict[str, float]:
        """Counters for the ``/v1/metrics`` endpoint."""
        with self._lock:
            return {
                "max_queue_depth": float(self.config.max_queue_depth),
                "shed_total": float(self.shed_total),
                "quota_rejected_total": float(self.quota_rejected_total),
            }
