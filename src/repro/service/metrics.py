"""Request counters and latency histograms for the allocation service.

Zero-dependency observability: every handled request is recorded under
its endpoint label (``create``, ``status``, ``keepalive``, ...) with its
HTTP status class and wall-clock latency.  Latencies land in a fixed
log-spaced bucket histogram, so percentile estimates cost O(buckets)
with no per-request allocation, and the whole registry snapshots into
the JSON served at ``/v1/metrics``.

:meth:`MetricsRegistry.flatten` renders the same figures as a flat
``{name: float}`` dictionary compatible with
``benchmarks/reporting.emit_json``, which is how ``bench_a7`` wires the
per-endpoint service timings into the ``BENCH_a7.json`` the weekly
sweep archives.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["LatencyHistogram", "MetricsRegistry"]

#: Upper bucket bounds in milliseconds, log-spaced from 50 us to 30 s;
#: the final implicit bucket is open-ended.
BUCKET_BOUNDS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 30000.0)


class LatencyHistogram:
    """A fixed-bucket latency histogram with percentile estimation."""

    def __init__(self) -> None:
        self._counts: List[int] = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.total_ms = 0.0
        self.max_ms = 0.0

    def record(self, elapsed_ms: float) -> None:
        """Record one observation."""
        index = 0
        for index, bound in enumerate(BUCKET_BOUNDS_MS):
            if elapsed_ms <= bound:
                break
        else:
            index = len(BUCKET_BOUNDS_MS)
        self._counts[index] += 1
        self.count += 1
        self.total_ms += elapsed_ms
        self.max_ms = max(self.max_ms, elapsed_ms)

    @property
    def mean_ms(self) -> float:
        """Mean latency of the observations so far."""
        return self.total_ms / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) as its bucket's upper bound.

        Reported as the conservative (upper) edge of the bucket the
        quantile falls in; an empty histogram reports 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(BUCKET_BOUNDS_MS):
                    return BUCKET_BOUNDS_MS[index]
                return self.max_ms
        return self.max_ms

    def snapshot(self) -> Dict[str, float]:
        """The summary figures served at ``/v1/metrics``."""
        return {
            "count": float(self.count),
            "mean_ms": self.mean_ms,
            "p50_ms": self.percentile(0.50),
            "p99_ms": self.percentile(0.99),
            "max_ms": self.max_ms,
        }


class MetricsRegistry:
    """Thread-safe per-endpoint request counters and latency histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: Dict[str, LatencyHistogram] = {}  # guarded-by: _lock
        self._statuses: Dict[str, Dict[int, int]] = {}  # guarded-by: _lock

    def observe(self, endpoint: str, status: int, elapsed_ms: float) -> None:
        """Record one handled request."""
        with self._lock:
            histogram = self._histograms.get(endpoint)
            if histogram is None:
                histogram = self._histograms[endpoint] = LatencyHistogram()
                self._statuses[endpoint] = {}
            histogram.record(elapsed_ms)
            statuses = self._statuses[endpoint]
            statuses[status] = statuses.get(status, 0) + 1

    def status_total(self, status_floor: int,
                     status_ceiling: Optional[int] = None) -> int:
        """Requests whose status fell in ``[floor, ceiling]`` (any endpoint)."""
        ceiling = status_ceiling if status_ceiling is not None else status_floor
        with self._lock:
            return sum(count
                       for statuses in self._statuses.values()
                       for status, count in statuses.items()
                       if status_floor <= status <= ceiling)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Nested per-endpoint figures for the ``/v1/metrics`` body."""
        with self._lock:
            report: Dict[str, Dict[str, object]] = {}
            for endpoint, histogram in sorted(self._histograms.items()):
                entry: Dict[str, object] = dict(histogram.snapshot())
                entry["status"] = {str(status): count for status, count
                                   in sorted(self._statuses[endpoint].items())}
                report[endpoint] = entry
            return report

    def flatten(self) -> Dict[str, float]:
        """Flat ``{metric_name: value}`` figures for ``emit_json``.

        Keys look like ``service_create_p99_ms`` /
        ``service_create_count``, one set per endpoint, plus the
        cross-endpoint error totals.
        """
        flat: Dict[str, float] = {}
        with self._lock:
            for endpoint, histogram in self._histograms.items():
                for name, value in histogram.snapshot().items():
                    flat["service_%s_%s" % (endpoint, name)] = float(value)
        flat["service_http_4xx_total"] = float(self.status_total(400, 499))
        flat["service_http_5xx_total"] = float(self.status_total(500, 599))
        return flat
