"""Sessionful client for the HTTP allocation service.

:class:`ServiceClient` keeps one persistent HTTP/1.1 connection to the
service (reconnecting transparently when the server or a proxy drops
it), retries transient ``503`` responses with exponential backoff
honouring the server's ``Retry-After`` hint, and maps API error bodies
onto typed exceptions.  :class:`JobSession` layers the tenancy
protocol on top: create, background keepalive heartbeat on a second
connection, wait-until-READY polling, and guaranteed release on exit::

    client = ServiceClient(service.url, tenant="alice")
    with client.session(4, 4, keepalive_ms=500.0) as session:
        session.wait_ready(timeout_s=5.0)
        ...                      # the lease is held and heartbeated
    # released on exit, heartbeat stopped

429 (quota exhaustion / load shedding) is *not* retried silently — it
is the server telling this tenant to slow down — and surfaces as
:class:`ServiceBusy` carrying the ``Retry-After`` hint, so callers
implement their own pacing policy.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse
from typing import Any, Dict, Optional, Tuple

from repro.service import api
from repro.service.runtime import wall_now

__all__ = ["ServiceClient", "JobSession", "ServiceClientError",
           "ServiceBusy", "ServiceUnavailable", "NoSuchJob", "BadRequest"]


class ServiceClientError(Exception):
    """Base of every client-side failure; carries the typed code."""

    def __init__(self, message: str, status: int = 0, code: str = "",
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s


class ServiceBusy(ServiceClientError):
    """429 — quota exhausted or the admission queue shed the request."""


class ServiceUnavailable(ServiceClientError):
    """503 (still draining after retries) or the connection kept failing."""


class NoSuchJob(ServiceClientError):
    """404 — the job id is unknown (or already pruned)."""


class BadRequest(ServiceClientError):
    """400/405 — the request itself is malformed."""


class ServiceClient:
    """One tenant's persistent connection to the allocation service."""

    def __init__(self, base_url: str, tenant: Optional[str] = None, *,
                 timeout_s: float = 10.0, max_attempts: int = 6,
                 backoff_s: float = 0.05, backoff_cap_s: float = 2.0) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("", "http") or not parsed.netloc:
            raise ValueError("base_url must look like http://host:port, "
                             "got %r" % base_url)
        self.netloc = parsed.netloc
        self.tenant = tenant
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self._connection: Optional[http.client.HTTPConnection] = None
        #: Transport-level statistics of this session.
        self.requests_sent = 0
        self.retries = 0
        self.reconnects = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            connection = http.client.HTTPConnection(
                self.netloc, timeout=self.timeout_s)
            connection.connect()
            # Requests are written as more than one segment; Nagle +
            # delayed ACK would add ~40 ms to every exchange on Linux.
            connection.sock.setsockopt(socket.IPPROTO_TCP,
                                       socket.TCP_NODELAY, 1)
            self._connection = connection
        return self._connection

    def close(self) -> None:
        """Close the persistent connection."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _once(self, method: str, path: str,
              body: Optional[bytes]) -> Tuple[int, Dict[str, Any],
                                              Optional[float]]:
        connection = self._connect()
        headers = {"Content-Type": "application/json"}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()     # always drain: keeps the connection usable
        retry_after = response.getheader("Retry-After")
        retry_after_s = float(retry_after) if retry_after else None
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError:
            payload = {"error": "undecodable response body"}
        return response.status, payload, retry_after_s

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None
                ) -> Tuple[int, Dict[str, Any], Optional[float]]:
        """One API call with reconnect + retry-on-503 semantics.

        Returns ``(status, body, retry_after_s)`` for every status the
        server produced; raises :class:`ServiceUnavailable` only when
        the transport kept failing or 503s outlasted the retry budget.
        """
        body = api.dump_body(payload) if payload is not None else None
        delay = self.backoff_s
        last_error: Optional[str] = None
        retry_after_s: Optional[float] = None
        for attempt in range(self.max_attempts):
            retry_after_s = None
            try:
                self.requests_sent += 1
                status, response, retry_after_s = self._once(method, path,
                                                             body)
            except (OSError, http.client.HTTPException) as error:
                # Stale keep-alive or a dropped listener: reconnect and
                # retry — the request may not have reached the server,
                # which is safe for this API (creates are the only
                # non-idempotent call, and a failed send never created).
                last_error = "%s: %s" % (type(error).__name__, error)
                self.close()
                self.reconnects += 1
            else:
                if status != 503:
                    return status, response, retry_after_s
                last_error = response.get("error", "service unavailable")
            if attempt == self.max_attempts - 1:
                break
            self.retries += 1
            wait_s = (retry_after_s if (last_error and retry_after_s)
                      else delay)
            time.sleep(min(wait_s, self.backoff_cap_s))
            delay = min(delay * 2.0, self.backoff_cap_s)
        raise ServiceUnavailable(
            "gave up after %d attempts: %s"
            % (self.max_attempts, last_error or "unknown error"),
            status=503, code=api.CODE_DRAINING)

    def _call(self, method: str, path: str,
              payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        status, response, retry_after_s = self.request(method, path, payload)
        if status < 400:
            return response
        message = response.get("error", "HTTP %d" % status)
        code = response.get("code", "")
        if status == 429:
            raise ServiceBusy(message, status, code, retry_after_s)
        if status == 404 and code == api.CODE_NO_SUCH_JOB:
            raise NoSuchJob(message, status, code)
        if status in (400, 404, 405):
            raise BadRequest(message, status, code)
        raise ServiceClientError(message, status, code, retry_after_s)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def create_job(self, width: int, height: int, *,
                   tenant: Optional[str] = None, priority: int = 5,
                   keepalive_ms: float = 1000.0,
                   label: str = "") -> Dict[str, Any]:
        """Submit a job; returns its summary (state ``queued``)."""
        tenant_name = tenant or self.tenant
        if not tenant_name:
            raise ValueError("no tenant: pass one here or to the client")
        return self._call("POST", "%s/jobs" % api.API_PREFIX, {
            "tenant": tenant_name, "width": width, "height": height,
            "priority": priority, "keepalive_ms": keepalive_ms,
            "label": label})

    def status(self, job_id: int) -> Dict[str, Any]:
        """The job's current summary."""
        return self._call("GET", "%s/jobs/%d" % (api.API_PREFIX, job_id))

    def keepalive(self, job_id: int) -> Dict[str, Any]:
        """Refresh the job's lease; ``response["alive"]`` is the verdict."""
        return self._call("POST", "%s/jobs/%d/keepalive"
                          % (api.API_PREFIX, job_id))

    def release(self, job_id: int) -> Dict[str, Any]:
        """Give the lease back (idempotent on terminal jobs)."""
        return self._call("DELETE", "%s/jobs/%d" % (api.API_PREFIX, job_id))

    def list_jobs(self, tenant: Optional[str] = None,
                  state: Optional[str] = None) -> Dict[str, Any]:
        """List jobs, optionally filtered by tenant and/or state."""
        query = {}
        if tenant:
            query["tenant"] = tenant
        if state:
            query["state"] = state
        suffix = "?" + urllib.parse.urlencode(query) if query else ""
        return self._call("GET", "%s/jobs%s" % (api.API_PREFIX, suffix))

    def machine(self) -> Dict[str, Any]:
        """Machine dimensions, free/leased chips and queue depth."""
        return self._call("GET", "%s/machine" % api.API_PREFIX)

    def metrics(self) -> Dict[str, Any]:
        """The service's metrics snapshot."""
        return self._call("GET", "%s/metrics" % api.API_PREFIX)

    def session(self, width: int, height: int, **kwargs: Any) -> "JobSession":
        """A managed tenancy (see :class:`JobSession`)."""
        return JobSession(self, width, height, **kwargs)


class JobSession:
    """Create-heartbeat-release, packaged as a context manager.

    The heartbeat runs on its own connection (HTTP connections are not
    thread-safe) at ``heartbeat_s`` — by default a third of the lease's
    keepalive interval, the classic safety margin.
    """

    def __init__(self, client: ServiceClient, width: int, height: int, *,
                 priority: int = 5, keepalive_ms: float = 1000.0,
                 label: str = "", heartbeat_s: Optional[float] = None,
                 heartbeat: bool = True) -> None:
        self.client = client
        self.width = width
        self.height = height
        self.priority = priority
        self.keepalive_ms = keepalive_ms
        self.label = label
        self.heartbeat_enabled = heartbeat
        self.heartbeat_s = heartbeat_s
        self.job_id: Optional[int] = None
        self.created: Optional[Dict[str, Any]] = None
        self.heartbeats_sent = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._heartbeat_client: Optional[ServiceClient] = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "JobSession":
        self.created = self.client.create_job(
            self.width, self.height, priority=self.priority,
            keepalive_ms=self.keepalive_ms, label=self.label)
        self.job_id = int(self.created["job_id"])
        if self.heartbeat_enabled:
            self.start_heartbeat()
        return self

    def __exit__(self, *_exc_info) -> None:
        self.stop_heartbeat()
        try:
            self.release()
        except (NoSuchJob, ServiceUnavailable):
            pass      # expired or the service is gone — nothing to hold

    # ------------------------------------------------------------------
    def start_heartbeat(self) -> None:
        """Start the keepalive thread (no-op if already beating)."""
        if self._thread is not None or self.job_id is None:
            return
        interval = self.heartbeat_s
        if interval is None:
            interval = max(0.01, self.keepalive_ms / 3000.0)
        self._heartbeat_client = ServiceClient(
            "http://" + self.client.netloc, self.client.tenant,
            timeout_s=self.client.timeout_s)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._beat, args=(interval,),
            name="job-%d-heartbeat" % self.job_id, daemon=True)
        self._thread.start()

    def _beat(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                response = self._heartbeat_client.keepalive(self.job_id)
                self.heartbeats_sent += 1
                if not response.get("alive", False):
                    break         # terminal: stop beating a dead job
            except (NoSuchJob, ServiceUnavailable, ServiceClientError):
                break

    def stop_heartbeat(self) -> None:
        """Stop the keepalive thread and close its connection."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._heartbeat_client is not None:
            self._heartbeat_client.close()
            self._heartbeat_client = None

    # ------------------------------------------------------------------
    def wait_ready(self, timeout_s: float = 10.0,
                   poll_s: float = 0.005) -> Dict[str, Any]:
        """Poll until the job is READY; returns the READY summary.

        Raises :class:`ServiceClientError` if the job reaches a terminal
        state instead, or :class:`TimeoutError` on timeout.
        """
        if self.job_id is None:
            raise RuntimeError("the session has no job yet")
        deadline = wall_now() + timeout_s
        while True:
            summary = self.client.status(self.job_id)
            state = summary.get("state")
            if state == "ready":
                return summary
            if state in ("freed", "expired", "rejected"):
                raise ServiceClientError(
                    "job %d ended %s while waiting for READY"
                    % (self.job_id, state))
            if wall_now() >= deadline:
                raise TimeoutError("job %d not READY after %.1f s (state %s)"
                                   % (self.job_id, timeout_s, state))
            time.sleep(poll_s)

    def release(self) -> Dict[str, Any]:
        """Release the lease now (also called on context exit)."""
        if self.job_id is None:
            return {}
        return self.client.release(self.job_id)
