"""On-chip Network-on-Chip fabrics (Figure 3).

The SpiNNaker chip has two self-timed NoC fabrics built on CHAIN-style
delay-insensitive interconnect:

* the **Communications NoC** carries neural-spike (and other) packets
  between the processors and the router, and bridges to the six inter-chip
  links;
* the **System NoC** is the general-purpose interconnect through which the
  processors and their DMA engines reach the shared SDRAM and other system
  resources.

Both fabrics are modelled at the transaction level: a transfer occupies the
fabric for ``size / bandwidth`` and experiences a fixed traversal latency.
The fabrics keep utilisation statistics used by the traffic benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Communications NoC throughput: the real fabric carries on the order of
#: 6 Gbit/s of packet traffic; expressed here in packets (40 bits) per
#: microsecond it comfortably exceeds the per-core injection rates.
DEFAULT_COMMS_NOC_PACKETS_PER_US = 8.0
#: Latency for a packet to cross the Communications NoC (processor to
#: router or router to processor), in microseconds.
DEFAULT_COMMS_NOC_LATENCY_US = 0.1
#: System NoC sustained bandwidth in bytes per microsecond.
DEFAULT_SYSTEM_NOC_BANDWIDTH = 1000.0
#: System NoC traversal latency in microseconds.
DEFAULT_SYSTEM_NOC_LATENCY_US = 0.05


@dataclass
class FabricStatistics:
    """Counters shared by both NoC fabrics."""

    transfers: int = 0
    total_bits: int = 0
    busy_time_us: float = 0.0

    def utilisation(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` for which the fabric was busy."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_time_us / elapsed_us)


@dataclass
class CommunicationsNoC:
    """The packet-carrying fabric between cores and the router.

    The fabric serialises packet transfers: each 40-bit packet occupies it
    for ``1 / packets_per_us`` and arrives ``latency_us`` after it is
    accepted.  :meth:`schedule_packet` returns the arrival time at the
    destination port (core or router).
    """

    packets_per_us: float = DEFAULT_COMMS_NOC_PACKETS_PER_US
    latency_us: float = DEFAULT_COMMS_NOC_LATENCY_US
    _busy_until: float = 0.0
    stats: FabricStatistics = field(default_factory=FabricStatistics)

    def schedule_packet(self, now: float, bit_length: int = 40) -> float:
        """Accept a packet at ``now`` and return its delivery time."""
        service_time = 1.0 / self.packets_per_us
        start = max(now, self._busy_until)
        self._busy_until = start + service_time
        self.stats.transfers += 1
        self.stats.total_bits += bit_length
        self.stats.busy_time_us += service_time
        return start + service_time + self.latency_us

    def record_batch(self, n_packets: int, bit_length: int = 40) -> None:
        """Account ``n_packets`` transfers in one call (fabric transport).

        The compiled transport fabric moves a whole spike batch at once,
        so it charges the fabric's statistics in bulk: transfer count,
        bits and the busy time the packets would have occupied.  The
        serialisation state (``busy_until``) is left alone — the fabric
        bypasses per-packet queueing by construction.
        """
        if n_packets < 0:
            raise ValueError("batch size must be non-negative")
        if n_packets == 0:
            return
        self.stats.transfers += n_packets
        self.stats.total_bits += n_packets * bit_length
        self.stats.busy_time_us += n_packets / self.packets_per_us

    @property
    def busy_until(self) -> float:
        """Time at which the fabric becomes idle."""
        return self._busy_until

    def queue_delay(self, now: float) -> float:
        """How long a packet arriving at ``now`` would wait before service."""
        return max(0.0, self._busy_until - now)


@dataclass
class SystemNoC:
    """The general-purpose fabric between cores/DMA engines and the SDRAM.

    The System NoC arbitrates the (up to) 20 cores' accesses to the shared
    memory.  DMA timing itself is handled by the :class:`~repro.core.sdram.
    SDRAM` contention model; the System NoC adds its own traversal latency
    and records per-initiator traffic so the benchmarks can show how memory
    bandwidth is shared.
    """

    bandwidth_bytes_per_us: float = DEFAULT_SYSTEM_NOC_BANDWIDTH
    latency_us: float = DEFAULT_SYSTEM_NOC_LATENCY_US
    _busy_until: float = 0.0
    stats: FabricStatistics = field(default_factory=FabricStatistics)
    traffic_by_initiator: Dict[str, int] = field(default_factory=dict)

    def schedule_transfer(self, now: float, n_bytes: int,
                          initiator: str = "unknown") -> float:
        """Account for a transfer of ``n_bytes`` and return its finish time."""
        if n_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        service_time = n_bytes / self.bandwidth_bytes_per_us
        start = max(now, self._busy_until)
        self._busy_until = start + service_time
        self.stats.transfers += 1
        self.stats.total_bits += n_bytes * 8
        self.stats.busy_time_us += service_time
        self.traffic_by_initiator[initiator] = (
            self.traffic_by_initiator.get(initiator, 0) + n_bytes)
        return start + service_time + self.latency_us

    def record_batch(self, n_transfers: int, total_bytes: int,
                     initiator: str = "fabric") -> None:
        """Account a batch of transfers without serialising them.

        Bulk counterpart of :meth:`schedule_transfer` for the compiled
        transport fabric's batched synaptic-row movement.
        """
        if n_transfers < 0 or total_bytes < 0:
            raise ValueError("batch sizes must be non-negative")
        if n_transfers == 0:
            return
        self.stats.transfers += n_transfers
        self.stats.total_bits += total_bytes * 8
        self.stats.busy_time_us += total_bytes / self.bandwidth_bytes_per_us
        self.traffic_by_initiator[initiator] = (
            self.traffic_by_initiator.get(initiator, 0) + total_bytes)

    @property
    def busy_until(self) -> float:
        """Time at which the fabric becomes idle."""
        return self._busy_until
