"""Geometry of the 2-D toroidal triangular mesh (Figures 1 and 2).

SpiNNaker chips are arranged on a two-dimensional torus.  Each chip has six
links — east, north-east, north, west, south-west and south — so the mesh
has triangular facets.  The triangles are what make *emergency routing*
possible: a packet blocked on one side of a triangle can be sent around the
other two sides (Figure 8).

This module provides coordinate arithmetic, link directions, shortest-path
("Manhattan-on-a-torus-with-diagonals") distance and route computation used
by the router, the placer and the latency benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterator, List, Tuple


class Direction(IntEnum):
    """The six inter-chip link directions of a SpiNNaker chip.

    The numbering follows the SpiNNaker convention: link 0 is east and the
    links proceed anticlockwise.  ``opposite`` gives the link on which a
    neighbouring chip receives a packet sent on this link.
    """

    EAST = 0
    NORTH_EAST = 1
    NORTH = 2
    WEST = 3
    SOUTH_WEST = 4
    SOUTH = 5

    @property
    def opposite(self) -> "Direction":
        """The direction pointing back along this link."""
        return Direction((self.value + 3) % 6)

    @property
    def offset(self) -> Tuple[int, int]:
        """The ``(dx, dy)`` chip-coordinate offset of this link."""
        return _DIRECTION_OFFSETS[self]

    @classmethod
    def from_offset(cls, dx: int, dy: int) -> "Direction":
        """Return the direction for a unit offset ``(dx, dy)``.

        Raises
        ------
        ValueError
            If ``(dx, dy)`` is not one of the six unit mesh offsets.
        """
        for direction, offset in _DIRECTION_OFFSETS.items():
            if offset == (dx, dy):
                return direction
        raise ValueError("(%d, %d) is not a unit mesh offset" % (dx, dy))

    def emergency_pair(self) -> Tuple["Direction", "Direction"]:
        """The two link directions used for emergency routing.

        When the link in this direction is blocked, the packet is sent
        around the other two sides of the adjacent mesh triangle (Fig. 8).
        The pair returned is ``(first_leg, second_leg)`` such that
        ``first_leg.offset + second_leg.offset == self.offset``.  The
        convention matches the hardware: the first leg is the next link
        anticlockwise from the blocked one, the second leg the next link
        clockwise, so the receiving router can compute the second leg
        purely from the link the emergency packet arrived on.
        """
        return (Direction((self.value + 1) % 6), Direction((self.value - 1) % 6))

    @staticmethod
    def emergency_second_leg(arrival: "Direction") -> "Direction":
        """Second emergency leg for a first-leg packet arriving on ``arrival``.

        A first-leg emergency packet sent out of link ``L + 1`` arrives at
        the intermediate chip on link ``L + 4``; its second leg is link
        ``L - 1``, which is ``arrival + 1`` — a fixed relation the hardware
        exploits so the intermediate router needs no extra state.
        """
        return Direction((arrival.value + 1) % 6)


#: Chip-coordinate offsets of the six links.  The mesh axes are skewed: the
#: "north-east" link moves +1 in both x and y, which is what creates the
#: triangular facets of Figure 2.
_DIRECTION_OFFSETS = {
    Direction.EAST: (1, 0),
    Direction.NORTH_EAST: (1, 1),
    Direction.NORTH: (0, 1),
    Direction.WEST: (-1, 0),
    Direction.SOUTH_WEST: (-1, -1),
    Direction.SOUTH: (0, -1),
}



@dataclass(frozen=True, order=True)
class ChipCoordinate:
    """The ``(x, y)`` position of a chip in the mesh."""

    x: int
    y: int

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y

    def offset(self, dx: int, dy: int, width: int, height: int) -> "ChipCoordinate":
        """Return the coordinate ``(x + dx, y + dy)`` wrapped on the torus."""
        return ChipCoordinate((self.x + dx) % width, (self.y + dy) % height)

    def neighbour(self, direction: Direction, width: int,
                  height: int) -> "ChipCoordinate":
        """Return the neighbouring chip in ``direction`` on the torus."""
        dx, dy = direction.offset
        return self.offset(dx, dy, width, height)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "(%d, %d)" % (self.x, self.y)


class TorusGeometry:
    """Distance and routing computations on a ``width x height`` torus.

    The hexagonal (triangular-facet) mesh admits movement along x, along y
    and along the x=y diagonal.  The shortest-path metric is therefore the
    standard SpiNNaker "hexagonal" distance: after reducing the displacement
    vector to its minimal form, the distance is ``max(|dx|, |dy|)`` when dx
    and dy have the same sign (the diagonal helps) and ``|dx| + |dy|`` when
    they differ in sign.
    """

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ValueError("torus dimensions must be positive")
        self.width = width
        self.height = height

    # ------------------------------------------------------------------
    # Displacements and distances
    # ------------------------------------------------------------------
    def wrap(self, coord: ChipCoordinate) -> ChipCoordinate:
        """Wrap an arbitrary coordinate onto the torus."""
        return ChipCoordinate(coord.x % self.width, coord.y % self.height)

    def displacement(self, source: ChipCoordinate,
                     target: ChipCoordinate) -> Tuple[int, int]:
        """Minimal ``(dx, dy)`` displacement from source to target.

        Each axis has two torus-equivalent candidates (going one way round
        or the other); the pair minimising the hexagonal hop count is
        chosen, which keeps the distance metric symmetric even when an axis
        displacement is exactly half the torus size.
        """
        best: Tuple[int, int, int] = None  # type: ignore[assignment]
        for dx in self._axis_candidates(target.x - source.x, self.width):
            for dy in self._axis_candidates(target.y - source.y, self.height):
                hops = self.hex_distance(dx, dy)
                candidate = (hops, dx, dy)
                if best is None or candidate < best:
                    best = candidate
        return best[1], best[2]

    @staticmethod
    def _axis_candidates(delta: int, size: int) -> Tuple[int, ...]:
        delta %= size
        if delta == 0:
            return (0,)
        return (delta, delta - size)

    @staticmethod
    def hex_distance(dx: int, dy: int) -> int:
        """Number of link hops needed to cover displacement ``(dx, dy)``.

        The diagonal (north-east / south-west) link covers (+1, +1) or
        (-1, -1) in a single hop, so same-sign components can share hops.
        """
        if (dx >= 0) == (dy >= 0):
            return max(abs(dx), abs(dy))
        return abs(dx) + abs(dy)

    def distance(self, source: ChipCoordinate, target: ChipCoordinate) -> int:
        """Shortest hop count between two chips on the torus."""
        dx, dy = self.displacement(source, target)
        return self.hex_distance(dx, dy)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    @staticmethod
    def decompose(dx: int, dy: int) -> List[Direction]:
        """Decompose a displacement into an ordered list of link directions.

        Diagonal moves are emitted first, then the residual straight moves.
        The resulting route is a shortest path (it has ``hex_distance(dx,
        dy)`` entries) with at most one "point of inflection", matching the
        dimension-ordered routes the SpiNNaker router produces with default
        routing (Fig. 8: origin, inflection, target).
        """
        steps: List[Direction] = []
        if (dx >= 0) == (dy >= 0):
            diagonal = min(abs(dx), abs(dy))
            diag_dir = Direction.NORTH_EAST if dx >= 0 else Direction.SOUTH_WEST
            steps.extend([diag_dir] * diagonal)
            dx -= diagonal if dx >= 0 else -diagonal
            dy -= diagonal if dy >= 0 else -diagonal
        if dx > 0:
            steps.extend([Direction.EAST] * dx)
        elif dx < 0:
            steps.extend([Direction.WEST] * (-dx))
        if dy > 0:
            steps.extend([Direction.NORTH] * dy)
        elif dy < 0:
            steps.extend([Direction.SOUTH] * (-dy))
        return steps

    def route(self, source: ChipCoordinate,
              target: ChipCoordinate) -> List[Direction]:
        """Shortest dimension-ordered route from ``source`` to ``target``."""
        dx, dy = self.displacement(source, target)
        return self.decompose(dx, dy)

    def route_chips(self, source: ChipCoordinate,
                    target: ChipCoordinate) -> List[ChipCoordinate]:
        """The chips visited by :meth:`route`, including source and target."""
        chips = [source]
        current = source
        for direction in self.route(source, target):
            current = current.neighbour(direction, self.width, self.height)
            chips.append(current)
        return chips

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def all_chips(self) -> Iterator[ChipCoordinate]:
        """Iterate over every chip coordinate in raster order."""
        for y in range(self.height):
            for x in range(self.width):
                yield ChipCoordinate(x, y)

    @property
    def n_chips(self) -> int:
        """Total number of chips on the torus."""
        return self.width * self.height

    def neighbours(self, coord: ChipCoordinate) -> List[Tuple[Direction, ChipCoordinate]]:
        """All six ``(direction, neighbour)`` pairs of ``coord``."""
        return [(d, coord.neighbour(d, self.width, self.height))
                for d in Direction]
