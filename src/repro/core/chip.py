"""The SpiNNaker chip multiprocessor node (Figure 3).

A node pairs the MPSoC — up to 20 ARM968 processor subsystems, a multicast
router, two NoC fabrics and a system controller — with a shared off-chip
SDRAM.  This module assembles those components and wires them together:

* cores inject packets into the router through the Communications NoC;
* the router delivers local packets back to cores through the same fabric;
* cores reach the SDRAM through the System NoC via their DMA controllers;
* the System Controller provides the read-sensitive register used to elect
  the Monitor Processor at boot (Section 5.2);
* the System RAM is the shared scratchpad a neighbouring chip can write
  boot code into when repairing a failed node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.clock import GALSClockSystem
from repro.core.dma import DMAController
from repro.core.event_kernel import EventKernel
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.noc import CommunicationsNoC, SystemNoC
from repro.core.packets import MulticastPacket, NearestNeighbourPacket, PointToPointPacket
from repro.core.processor import ProcessorState, ProcessorSubsystem
from repro.core.sdram import SDRAM
from repro.router.multicast import Router, RouterConfig
from repro.router.p2p import P2PRoutingTable

#: Number of processor subsystems on a SpiNNaker chip.
DEFAULT_CORES_PER_CHIP = 20
#: Size of the shared on-chip System RAM (32 Kbyte in the real chip).
SYSTEM_RAM_BYTES = 32 * 1024


class SystemController:
    """The chip's System Controller.

    The component modelled here is the *read-sensitive register* used to
    break the symmetry between the identical cores at boot: every core that
    passes its self-test reads the register, and the hardware guarantees
    that exactly one reader sees the "you are the monitor" value
    (Section 5.2).
    """

    def __init__(self) -> None:
        self._monitor_claimed = False
        self.monitor_core_id: Optional[int] = None
        self.reads = 0

    def read_monitor_arbiter(self, core_id: int) -> bool:
        """Read the arbiter register; only the first reader wins."""
        self.reads += 1
        if self._monitor_claimed:
            return False
        self._monitor_claimed = True
        self.monitor_core_id = core_id
        return True

    def reset(self) -> None:
        """Reset the arbiter (used when a neighbour forces a re-election)."""
        self._monitor_claimed = False
        self.monitor_core_id = None

    @property
    def monitor_elected(self) -> bool:
        """True once some core has claimed the monitor role."""
        return self._monitor_claimed


@dataclass
class ChipState:
    """Boot-related state of the whole chip (Section 5.2)."""

    booted: bool = False
    coordinates_known: bool = False
    p2p_configured: bool = False
    application_loaded: bool = False
    boot_failed: bool = False


class Chip:
    """One node of the machine: the MPSoC plus its SDRAM.

    Parameters
    ----------
    kernel:
        Shared discrete-event kernel.
    coordinate:
        The chip's position in the mesh (assigned physically; the chip does
        not *know* it until the boot flood tells it).
    n_cores:
        Number of processor subsystems (the paper says "up to 20").
    router_config:
        Programmable router parameters.
    transmit:
        Callable provided by the machine to send a packet on an inter-chip
        link: ``transmit(coordinate, direction, packet) -> bool``.
    """

    def __init__(self, kernel: EventKernel, coordinate: ChipCoordinate,
                 n_cores: int = DEFAULT_CORES_PER_CHIP,
                 router_config: Optional[RouterConfig] = None,
                 transmit: Optional[Callable[[ChipCoordinate, Direction, Any], bool]] = None,
                 sdram: Optional[SDRAM] = None,
                 clocks: Optional[GALSClockSystem] = None) -> None:
        if n_cores < 1:
            raise ValueError("a chip needs at least one core")
        self.kernel = kernel
        self.coordinate = coordinate
        self.n_cores = n_cores
        self._machine_transmit = transmit

        self.sdram = sdram if sdram is not None else SDRAM()
        self.clocks = clocks if clocks is not None else GALSClockSystem.for_chip(n_cores)
        self.system_noc = SystemNoC()
        self.comms_noc = CommunicationsNoC()
        self.system_controller = SystemController()
        self.system_ram: List[int] = []
        self.state = ChipState()

        self.router = Router(kernel, coordinate, config=router_config)
        self.router.connect(transmit=self._transmit_link,
                            deliver_local=self._deliver_to_core,
                            notify_monitor=self._notify_monitor)

        self.cores: List[ProcessorSubsystem] = []
        for core_id in range(n_cores):
            dma = DMAController(kernel, self.sdram)
            core = ProcessorSubsystem(
                kernel, core_id, self.clocks.core_domain(core_id), dma,
                send_packet=self._inject_from_core)
            self.cores.append(core)

        self.monitor_core_id: Optional[int] = None
        self.monitor_mailbox: List[Dict[str, Any]] = []
        self.p2p_table: Optional[P2PRoutingTable] = None
        #: The chip's own belief about its coordinates, set during boot.
        self.assigned_coordinate: Optional[ChipCoordinate] = None
        #: Handlers the runtime layers register for management packets.
        self._nn_handler: Optional[Callable[[NearestNeighbourPacket, Direction], None]] = None
        self._p2p_handler: Optional[Callable[[PointToPointPacket], None]] = None

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------
    def connect_machine(self, transmit: Callable[[ChipCoordinate, Direction, Any], bool]) -> None:
        """Attach the machine-level link-transmit callback."""
        self._machine_transmit = transmit

    def on_nearest_neighbour(self, handler: Callable[[NearestNeighbourPacket, Direction], None]) -> None:
        """Register the handler for incoming nn packets (boot code)."""
        self._nn_handler = handler

    def on_point_to_point(self, handler: Callable[[PointToPointPacket], None]) -> None:
        """Register the handler for p2p packets addressed to this chip."""
        self._p2p_handler = handler

    # ------------------------------------------------------------------
    # Packet plumbing
    # ------------------------------------------------------------------
    def _inject_from_core(self, core_id: int, packet: MulticastPacket) -> None:
        """A core's communications controller injects a packet (via the NoC)."""
        arrival_at_router = self.comms_noc.schedule_packet(
            self.kernel.now, packet.bit_length)
        self.kernel.schedule(arrival_at_router, self._router_receive,
                             priority=4, label="noc-to-router",
                             packet=packet, arrival=None)

    def _router_receive(self, _kernel: EventKernel, packet: MulticastPacket,
                        arrival: Optional[Direction]) -> None:
        self.router.route_multicast(packet, arrival)

    def receive_from_link(self, packet: Any, arrival: Direction) -> None:
        """Entry point used by the machine when a packet arrives on a link."""
        if isinstance(packet, MulticastPacket):
            self.router.route_multicast(packet, arrival)
        elif isinstance(packet, NearestNeighbourPacket):
            self.router.stats.nn_delivered += 1
            if self._nn_handler is not None:
                self._nn_handler(packet, arrival)
        elif isinstance(packet, PointToPointPacket):
            self._route_p2p(packet)
        else:
            raise TypeError("unknown packet type %r" % (type(packet).__name__,))

    def _transmit_link(self, direction: Direction, packet: Any) -> bool:
        if self._machine_transmit is None:
            return False
        return self._machine_transmit(self.coordinate, direction, packet)

    def _deliver_to_core(self, core_id: int, packet: MulticastPacket) -> None:
        if not 0 <= core_id < self.n_cores:
            return
        arrival = self.comms_noc.schedule_packet(self.kernel.now,
                                                 packet.bit_length)
        self.kernel.schedule(arrival, self._core_receive, priority=1,
                             label="noc-to-core", core_id=core_id,
                             packet=packet)

    def _core_receive(self, _kernel: EventKernel, core_id: int,
                      packet: MulticastPacket) -> None:
        self.cores[core_id].deliver_packet(packet)

    def _notify_monitor(self, event: str, **info: Any) -> None:
        self.monitor_mailbox.append(dict(event=event, time=self.kernel.now,
                                         **info))

    # ------------------------------------------------------------------
    # Point-to-point routing (Section 5.2)
    # ------------------------------------------------------------------
    def send_p2p(self, packet: PointToPointPacket) -> bool:
        """Send (or forward) a p2p packet from this chip."""
        return self._route_p2p(packet, injected=True)

    def _route_p2p(self, packet: PointToPointPacket, injected: bool = False) -> bool:
        destination = packet.destination
        if destination == self.coordinate:
            self.router.stats.p2p_routed += 1
            if self._p2p_handler is not None:
                self._p2p_handler(packet)
            return True
        if self.p2p_table is None or not self.p2p_table.knows(destination):
            # The p2p fabric is only usable after boot phase two.
            self._notify_monitor("p2p-unroutable", destination=destination)
            return False
        direction = self.p2p_table.next_hop(destination)
        if direction is None:
            return True
        self.router.stats.p2p_routed += 1
        sent = self._transmit_link(direction, packet)
        if not sent:
            self._notify_monitor("p2p-blocked", destination=destination,
                                 direction=direction)
        return sent

    # ------------------------------------------------------------------
    # Nearest-neighbour packets (Section 5.2)
    # ------------------------------------------------------------------
    def send_nearest_neighbour(self, direction: Direction,
                               packet: NearestNeighbourPacket) -> bool:
        """Send an nn packet to the adjacent chip in ``direction``."""
        return self._transmit_link(direction, packet)

    # ------------------------------------------------------------------
    # Core management
    # ------------------------------------------------------------------
    @property
    def monitor(self) -> Optional[ProcessorSubsystem]:
        """The elected Monitor Processor, or ``None`` before election."""
        if self.monitor_core_id is None:
            return None
        return self.cores[self.monitor_core_id]

    @property
    def application_cores(self) -> List[ProcessorSubsystem]:
        """Cores available for application use (working, not the monitor)."""
        return [core for core in self.cores
                if core.is_available and core.core_id != self.monitor_core_id]

    @property
    def working_cores(self) -> List[ProcessorSubsystem]:
        """Cores that passed self-test and are not disabled."""
        return [core for core in self.cores if core.is_available]

    def elect_monitor(self) -> Optional[int]:
        """Run the monitor-processor arbitration among working cores.

        Every core that passed self-test reads the System Controller's
        read-sensitive register in core-id order (the order is irrelevant to
        the outcome — only one read can win).  Returns the elected core id,
        or ``None`` if no core is available.
        """
        for core in self.cores:
            if core.state is not ProcessorState.READY:
                continue
            if self.system_controller.read_monitor_arbiter(core.core_id):
                core.become_monitor()
                self.monitor_core_id = core.core_id
                return core.core_id
        return None

    def write_system_ram(self, words: List[int]) -> None:
        """Write boot code into the System RAM (used by neighbour repair)."""
        if len(words) * 4 > SYSTEM_RAM_BYTES:
            raise MemoryError("boot image of %d words exceeds the %d-byte "
                              "System RAM" % (len(words), SYSTEM_RAM_BYTES))
        self.system_ram = list(words)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Chip(%s, %d cores)" % (self.coordinate, self.n_cores)
