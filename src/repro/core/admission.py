"""Admission control for QoS on the best-effort GALS interconnect.

Section 4 notes that "the GALS approach is also capable of supporting
traffic service management [12]".  Reference [12] describes an admission
control system that provides quality-of-service guarantees on top of the
best-effort CHAIN fabric by regulating how fast each traffic source may
inject packets.  This module reproduces that mechanism at the
architectural level:

* :class:`TrafficClass` — a named service class with a guaranteed
  injection rate and a burst allowance;
* :class:`TokenBucketRegulator` — the per-source regulator: a token
  bucket that admits a packet only when a token is available, so a
  source can never exceed its contracted rate for longer than its burst
  allowance;
* :class:`AdmissionController` — the per-chip controller that owns one
  regulator per (source, class) pair, polices aggregate reserved
  bandwidth against the link capacity, and reports admission statistics.

The controller is deliberately independent of the router model: the
benchmarks drive it with synthetic arrival processes and then feed only
the *admitted* packets into the machine, which is how the real admission
control sits in front of the router's injection port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "TrafficClass",
    "TokenBucketRegulator",
    "AdmissionDecision",
    "AdmissionStatistics",
    "AdmissionController",
    "BEST_EFFORT",
    "GUARANTEED_REALTIME",
]


@dataclass(frozen=True)
class TrafficClass:
    """A service class with a contracted injection rate.

    Attributes
    ----------
    name:
        Class label (for example ``"realtime-spikes"``).
    guaranteed_rate_packets_per_ms:
        Long-term injection rate the class is guaranteed.
    burst_packets:
        Number of packets the class may inject back-to-back beyond its
        long-term rate (the token-bucket depth).
    priority:
        Smaller numbers are served first when the controller has to shed
        load; purely ordinal.
    """

    name: str
    guaranteed_rate_packets_per_ms: float
    burst_packets: int = 8
    priority: int = 1

    def __post_init__(self) -> None:
        if self.guaranteed_rate_packets_per_ms < 0:
            raise ValueError("guaranteed rate must be non-negative")
        if self.burst_packets < 1:
            raise ValueError("burst allowance must be at least one packet")


#: Background best-effort traffic: no reservation, modest burst.
BEST_EFFORT = TrafficClass(name="best-effort",
                           guaranteed_rate_packets_per_ms=0.0,
                           burst_packets=4, priority=9)

#: Real-time spike traffic: reserved rate sized for a core's neurons
#: firing at biologically plausible rates.
GUARANTEED_REALTIME = TrafficClass(name="realtime-spikes",
                                   guaranteed_rate_packets_per_ms=25.0,
                                   burst_packets=16, priority=1)


class TokenBucketRegulator:
    """A token-bucket regulator for one traffic source.

    Tokens accrue at the class's guaranteed rate up to the burst depth;
    admitting a packet consumes one token.  A class with a zero guaranteed
    rate never accrues tokens and is only admitted through the
    controller's spare-capacity path.
    """

    def __init__(self, traffic_class: TrafficClass) -> None:
        self.traffic_class = traffic_class
        self._tokens = float(traffic_class.burst_packets)
        self._last_update_ms = 0.0
        self.admitted = 0
        self.rejected = 0

    @property
    def tokens(self) -> float:
        """Tokens currently available."""
        return self._tokens

    def _refill(self, now_ms: float) -> None:
        if now_ms < self._last_update_ms:
            raise ValueError("time must not go backwards "
                             "(%.3f < %.3f)" % (now_ms, self._last_update_ms))
        elapsed = now_ms - self._last_update_ms
        self._tokens = min(
            float(self.traffic_class.burst_packets),
            self._tokens + elapsed * self.traffic_class.guaranteed_rate_packets_per_ms)
        self._last_update_ms = now_ms

    def admit(self, now_ms: float) -> bool:
        """Try to admit one packet at ``now_ms``."""
        self._refill(now_ms)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    def would_admit(self, now_ms: float) -> bool:
        """True if a packet at ``now_ms`` would be admitted (no side effects)."""
        elapsed = max(0.0, now_ms - self._last_update_ms)
        projected = min(
            float(self.traffic_class.burst_packets),
            self._tokens + elapsed * self.traffic_class.guaranteed_rate_packets_per_ms)
        return projected >= 1.0


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission request."""

    source: str
    traffic_class: str
    time_ms: float
    admitted: bool
    reason: str


@dataclass
class AdmissionStatistics:
    """Aggregate admission statistics for one controller."""

    requests: int = 0
    admitted: int = 0
    rejected: int = 0
    admitted_on_reservation: int = 0
    admitted_on_spare_capacity: int = 0

    @property
    def admission_ratio(self) -> float:
        """Fraction of requests admitted."""
        if self.requests == 0:
            return 0.0
        return self.admitted / self.requests


class AdmissionController:
    """Per-chip admission control in front of the router injection port.

    Parameters
    ----------
    link_capacity_packets_per_ms:
        Aggregate packet rate the chip's outgoing links can sustain; the
        controller refuses to *reserve* more than ``reservable_fraction``
        of it, keeping the fabric in the lightly-loaded regime the paper
        says it is "intended to operate in".
    reservable_fraction:
        Fraction of the link capacity that may be promised to guaranteed
        classes.
    """

    def __init__(self, link_capacity_packets_per_ms: float = 200.0,
                 reservable_fraction: float = 0.75) -> None:
        if link_capacity_packets_per_ms <= 0:
            raise ValueError("link capacity must be positive")
        if not 0.0 < reservable_fraction <= 1.0:
            raise ValueError("reservable fraction must lie in (0, 1]")
        self.link_capacity_packets_per_ms = link_capacity_packets_per_ms
        self.reservable_fraction = reservable_fraction
        self.stats = AdmissionStatistics()
        self._regulators: Dict[Tuple[str, str], TokenBucketRegulator] = {}
        self._classes: Dict[str, TrafficClass] = {}
        self._spare_budget_per_ms = link_capacity_packets_per_ms
        self._spare_used_in_window = 0.0
        self._spare_window_start_ms = 0.0
        self.decisions: List[AdmissionDecision] = []

    # ------------------------------------------------------------------
    # Reservation management
    # ------------------------------------------------------------------
    @property
    def reserved_rate_packets_per_ms(self) -> float:
        """Total rate currently promised to guaranteed classes."""
        return sum(regulator.traffic_class.guaranteed_rate_packets_per_ms
                   for regulator in self._regulators.values())

    @property
    def reservable_rate_packets_per_ms(self) -> float:
        """Maximum rate the controller is willing to promise in total."""
        return self.link_capacity_packets_per_ms * self.reservable_fraction

    def register(self, source: str, traffic_class: TrafficClass) -> bool:
        """Register a source under a traffic class.

        Returns False (and registers nothing) if admitting the class's
        guaranteed rate would over-subscribe the reservable capacity.
        """
        key = (source, traffic_class.name)
        if key in self._regulators:
            return True
        new_total = (self.reserved_rate_packets_per_ms
                     + traffic_class.guaranteed_rate_packets_per_ms)
        if new_total > self.reservable_rate_packets_per_ms:
            return False
        self._regulators[key] = TokenBucketRegulator(traffic_class)
        self._classes[traffic_class.name] = traffic_class
        return True

    def deregister(self, source: str, class_name: str) -> None:
        """Remove a source's reservation (releases its guaranteed rate)."""
        self._regulators.pop((source, class_name), None)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _spare_capacity_available(self, now_ms: float) -> bool:
        # The spare pool is everything not reserved, accounted per 1 ms
        # window; best-effort traffic beyond it is shed.
        if now_ms - self._spare_window_start_ms >= 1.0:
            self._spare_window_start_ms = now_ms
            self._spare_used_in_window = 0.0
        spare_rate = (self.link_capacity_packets_per_ms
                      - self.reserved_rate_packets_per_ms)
        return self._spare_used_in_window < spare_rate

    def request(self, source: str, class_name: str,
                now_ms: float) -> AdmissionDecision:
        """Ask to inject one packet from ``source`` under ``class_name``."""
        self.stats.requests += 1
        key = (source, class_name)
        regulator = self._regulators.get(key)

        if regulator is not None and regulator.admit(now_ms):
            decision = AdmissionDecision(source=source, traffic_class=class_name,
                                         time_ms=now_ms, admitted=True,
                                         reason="reservation")
            self.stats.admitted += 1
            self.stats.admitted_on_reservation += 1
        elif self._spare_capacity_available(now_ms):
            self._spare_used_in_window += 1.0
            decision = AdmissionDecision(source=source, traffic_class=class_name,
                                         time_ms=now_ms, admitted=True,
                                         reason="spare-capacity")
            self.stats.admitted += 1
            self.stats.admitted_on_spare_capacity += 1
        else:
            decision = AdmissionDecision(source=source, traffic_class=class_name,
                                         time_ms=now_ms, admitted=False,
                                         reason="over-subscribed")
            self.stats.rejected += 1
        self.decisions.append(decision)
        return decision

    def admit_burst(self, source: str, class_name: str, now_ms: float,
                    n_packets: int) -> int:
        """Request ``n_packets`` back-to-back; returns how many were admitted."""
        if n_packets < 0:
            raise ValueError("packet count must be non-negative")
        return sum(1 for _ in range(n_packets)
                   if self.request(source, class_name, now_ms).admitted)

    def admitted_rate_for(self, source: str, class_name: str) -> int:
        """Packets admitted so far for one (source, class) reservation."""
        regulator = self._regulators.get((source, class_name))
        return regulator.admitted if regulator is not None else 0
