"""The full SpiNNaker machine: a torus of chips plus the host link (Fig. 1).

The machine model owns:

* one :class:`~repro.core.chip.Chip` per mesh coordinate;
* one unidirectional :class:`Link` per chip per direction (six per chip),
  each with latency, bandwidth, a congestion backlog and a failure flag;
* the transport layer that moves packets between chips through those links
  under the discrete-event kernel;
* the Ethernet attachment point(s) through which the host system reaches
  chip (0, 0) (Section 5.2).

The full machine described in the paper has 65 536 chips (over a million
cores); the model scales to whatever fits in memory — hundreds to a few
thousand chips for the packet-level experiments — while the analytic
machine-scale calculations of benchmark E15 use :class:`MachineConfig`
without instantiating chips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.chip import DEFAULT_CORES_PER_CHIP, Chip
from repro.core.event_kernel import EventKernel
from repro.core.geometry import ChipCoordinate, Direction, TorusGeometry
from repro.core.packets import MulticastPacket, NearestNeighbourPacket, PointToPointPacket
from repro.router.multicast import RouterConfig

#: Inter-chip link latency in microseconds (self-timed 2-of-7 NRZ link).
DEFAULT_LINK_LATENCY_US = 0.2
#: Inter-chip link throughput in packets per microsecond (~250 Mbit/s of
#: 40-bit packets ≈ 6 packets/us).
DEFAULT_LINK_PACKETS_PER_US = 6.0
#: Backlog (in microseconds of queued service time) beyond which the link
#: reports itself blocked to the router, triggering emergency routing.
DEFAULT_BLOCK_THRESHOLD_US = 1.0

#: Standard production board: 48 chips arranged as an 8 x 6 tile.
DEFAULT_BOARD_WIDTH = 8
DEFAULT_BOARD_HEIGHT = 6
#: Board-to-board links leave the PCB through serialising connectors and
#: cables, so they are slower and longer-latency than on-board traces.
DEFAULT_INTER_BOARD_LATENCY_US = 1.0
DEFAULT_INTER_BOARD_PACKETS_PER_US = 2.0


@dataclass
class Link:
    """A unidirectional inter-chip link.

    The real link is a self-timed 2-of-7 NRZ channel (Section 5.1); at the
    machine level we model its latency, its finite bandwidth (as a busy-
    until time) and its failure state.  A link whose backlog exceeds
    ``block_threshold_us`` refuses packets, which is what the router's
    congestion detection sees.
    """

    source: ChipCoordinate
    direction: Direction
    target: ChipCoordinate
    latency_us: float = DEFAULT_LINK_LATENCY_US
    packets_per_us: float = DEFAULT_LINK_PACKETS_PER_US
    block_threshold_us: float = DEFAULT_BLOCK_THRESHOLD_US
    #: True when the link crosses a board boundary of a multi-board
    #: machine (see :attr:`MachineConfig.board_width`); such links carry
    #: the distinct inter-board latency/bandwidth figures.
    inter_board: bool = False
    failed: bool = False
    _busy_until: float = 0.0
    packets_carried: int = 0
    packets_refused: int = 0
    bits_carried: int = 0

    def backlog(self, now: float) -> float:
        """Service time already queued ahead of a packet arriving at ``now``."""
        return max(0.0, self._busy_until - now)

    def is_blocked(self, now: float) -> bool:
        """True if the link cannot currently accept a packet."""
        return self.failed or self.backlog(now) > self.block_threshold_us

    def try_accept(self, now: float, bit_length: int) -> Optional[float]:
        """Accept a packet if possible and return its arrival time.

        Returns ``None`` when the link is failed or congested; the caller
        (the router) then enters its wait/emergency/drop sequence.
        """
        if self.is_blocked(now):
            self.packets_refused += 1
            return None
        service = 1.0 / self.packets_per_us
        start = max(now, self._busy_until)
        self._busy_until = start + service
        self.packets_carried += 1
        self.bits_carried += bit_length
        return start + service + self.latency_us

    def record_batch(self, n_packets: int, bit_length: int = 40) -> None:
        """Account ``n_packets`` carried in bulk (compiled transport fabric).

        The fabric delivers whole spike batches along precompiled trees;
        this keeps :attr:`packets_carried` / :attr:`bits_carried` — and
        therefore every load/utilisation analysis built on them — correct
        without a per-packet event.  The congestion state (``busy_until``)
        is untouched: the fabric is the lightly-loaded fast path, the
        event transport remains the congestion-faithful reference.
        """
        if n_packets < 0:
            raise ValueError("batch size must be non-negative")
        self.packets_carried += n_packets
        self.bits_carried += n_packets * bit_length

    def utilisation(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` the link spent transferring packets."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, (self.packets_carried / self.packets_per_us) / elapsed_us)


@dataclass
class MachineConfig:
    """Static description of a machine build.

    The defaults describe a small experimental configuration; the
    :meth:`full_machine` constructor returns the million-core machine of
    the paper for the analytic benchmarks.
    """

    width: int = 8
    height: int = 8
    cores_per_chip: int = DEFAULT_CORES_PER_CHIP
    link_latency_us: float = DEFAULT_LINK_LATENCY_US
    link_packets_per_us: float = DEFAULT_LINK_PACKETS_PER_US
    block_threshold_us: float = DEFAULT_BLOCK_THRESHOLD_US
    router_config: RouterConfig = field(default_factory=RouterConfig)
    #: Chips with an Ethernet connection to the host.  Chip (0, 0) is the
    #: origin node used for boot (Section 5.2).
    ethernet_chips: Tuple[Tuple[int, int], ...] = ((0, 0),)
    #: Board tiling of a multi-board machine.  ``None`` (the default)
    #: means the mesh is a single board and every link is on-board, which
    #: preserves the behaviour of every pre-cluster configuration.  When
    #: set, the mesh is tiled into ``board_width x board_height`` boards
    #: and links crossing a tile boundary become *inter-board* links with
    #: the distinct latency/bandwidth figures below.
    board_width: Optional[int] = None
    board_height: Optional[int] = None
    inter_board_latency_us: float = DEFAULT_INTER_BOARD_LATENCY_US
    inter_board_packets_per_us: float = DEFAULT_INTER_BOARD_PACKETS_PER_US

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("machine dimensions must be positive")
        if self.cores_per_chip < 1:
            raise ValueError("cores_per_chip must be positive")
        if (self.board_width is None) != (self.board_height is None):
            raise ValueError("board_width and board_height must be set "
                             "together (or both left None)")
        if self.board_width is not None:
            if self.board_width < 1 or self.board_height < 1:
                raise ValueError("board dimensions must be positive")
            if self.width % self.board_width or self.height % self.board_height:
                raise ValueError(
                    "a %dx%d mesh cannot be tiled into %dx%d boards"
                    % (self.width, self.height, self.board_width,
                       self.board_height))

    @classmethod
    def full_machine(cls) -> "MachineConfig":
        """The full configuration of the paper: 256 x 256 chips, 20 cores each.

        65 536 chips x 20 cores = 1 310 720 ARM cores — "more than a million
        embedded processors".
        """
        return cls(width=256, height=256, cores_per_chip=20)

    @classmethod
    def multi_board(cls, boards_x: int, boards_y: int,
                    board_width: int = DEFAULT_BOARD_WIDTH,
                    board_height: int = DEFAULT_BOARD_HEIGHT,
                    **kwargs: Any) -> "MachineConfig":
        """A machine assembled from a ``boards_x x boards_y`` grid of boards.

        The default tile is the production 48-chip (8 x 6) board the paper
        scales from; remaining keyword arguments are forwarded to the
        config (``cores_per_chip``, link figures, ...).
        """
        if boards_x < 1 or boards_y < 1:
            raise ValueError("board grid dimensions must be positive")
        return cls(width=boards_x * board_width,
                   height=boards_y * board_height,
                   board_width=board_width, board_height=board_height,
                   **kwargs)

    # ------------------------------------------------------------------
    # Board-aware geometry
    # ------------------------------------------------------------------
    @property
    def boards_x(self) -> int:
        """Number of board columns (1 for a single-board machine)."""
        return self.width // self.board_width if self.board_width else 1

    @property
    def boards_y(self) -> int:
        """Number of board rows (1 for a single-board machine)."""
        return self.height // self.board_height if self.board_height else 1

    @property
    def n_boards(self) -> int:
        """Total number of boards in the machine."""
        return self.boards_x * self.boards_y

    def board_of(self, coordinate: ChipCoordinate) -> int:
        """The board id (row-major over the board grid) holding a chip."""
        if self.board_width is None:
            return 0
        return ((coordinate.y // self.board_height) * self.boards_x
                + coordinate.x // self.board_width)

    def board_origin(self, board: int) -> ChipCoordinate:
        """The lowest-coordinate chip of one board."""
        if not 0 <= board < self.n_boards:
            raise ValueError("board %d outside the %dx%d board grid"
                             % (board, self.boards_x, self.boards_y))
        if self.board_width is None:
            return ChipCoordinate(0, 0)
        return ChipCoordinate((board % self.boards_x) * self.board_width,
                              (board // self.boards_x) * self.board_height)

    def board_chips(self, board: int) -> Iterator[ChipCoordinate]:
        """Iterate over one board's chip coordinates in raster order."""
        origin = self.board_origin(board)
        width = self.board_width or self.width
        height = self.board_height or self.height
        for y in range(origin.y, origin.y + height):
            for x in range(origin.x, origin.x + width):
                yield ChipCoordinate(x, y)

    @property
    def n_chips(self) -> int:
        """Total number of chips."""
        return self.width * self.height

    @property
    def n_cores(self) -> int:
        """Total number of processor cores."""
        return self.n_chips * self.cores_per_chip

    @property
    def n_links(self) -> int:
        """Total number of unidirectional inter-chip links."""
        return self.n_chips * len(Direction)


class SpiNNakerMachine:
    """An instantiated machine: chips, links and the transport layer."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 kernel: Optional[EventKernel] = None) -> None:
        self.config = config or MachineConfig()
        self.kernel = kernel or EventKernel()
        self.geometry = TorusGeometry(self.config.width, self.config.height)

        self.chips: Dict[ChipCoordinate, Chip] = {}
        for coordinate in self.geometry.all_chips():
            self.chips[coordinate] = Chip(
                self.kernel, coordinate,
                n_cores=self.config.cores_per_chip,
                router_config=self.config.router_config,
                transmit=self._transmit)

        self.links: Dict[Tuple[ChipCoordinate, Direction], Link] = {}
        for coordinate in self.geometry.all_chips():
            for direction in Direction:
                target = coordinate.neighbour(direction, self.config.width,
                                              self.config.height)
                inter_board = (self.config.board_of(coordinate)
                               != self.config.board_of(target))
                self.links[(coordinate, direction)] = Link(
                    source=coordinate, direction=direction, target=target,
                    latency_us=(self.config.inter_board_latency_us
                                if inter_board
                                else self.config.link_latency_us),
                    packets_per_us=(self.config.inter_board_packets_per_us
                                    if inter_board
                                    else self.config.link_packets_per_us),
                    block_threshold_us=self.config.block_threshold_us,
                    inter_board=inter_board)
        # Tell each router which of its outgoing directions leave the
        # board, so per-router forwarding statistics can split on-board
        # from board-to-board traffic.
        for coordinate, chip in self.chips.items():
            chip.router.inter_board_directions = frozenset(
                direction for direction in Direction
                if self.links[(coordinate, direction)].inter_board)

        self.ethernet_chips: List[ChipCoordinate] = [
            ChipCoordinate(x, y) for (x, y) in self.config.ethernet_chips]
        for coordinate in self.ethernet_chips:
            if coordinate not in self.chips:
                raise ValueError("Ethernet chip %s is outside the %dx%d mesh"
                                 % (coordinate, self.config.width,
                                    self.config.height))

        self.packets_injected = 0
        #: Record of (packet, source, destination core, arrival time) for
        #: packets delivered to cores, populated by analysis hooks.
        self.delivery_log: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Access helpers
    # ------------------------------------------------------------------
    def chip(self, x: int, y: int) -> Chip:
        """The chip at mesh coordinate ``(x, y)``."""
        return self.chips[ChipCoordinate(x, y)]

    def __getitem__(self, coordinate: ChipCoordinate) -> Chip:
        return self.chips[coordinate]

    def __iter__(self) -> Iterator[Chip]:
        return iter(self.chips.values())

    @property
    def n_chips(self) -> int:
        """Number of chips in the machine."""
        return len(self.chips)

    @property
    def n_cores(self) -> int:
        """Total number of cores in the machine."""
        return sum(chip.n_cores for chip in self.chips.values())

    def link(self, coordinate: ChipCoordinate, direction: Direction) -> Link:
        """The outgoing link of ``coordinate`` in ``direction``."""
        return self.links[(coordinate, direction)]

    @property
    def n_boards(self) -> int:
        """Number of boards the machine is assembled from."""
        return self.config.n_boards

    def board_of(self, coordinate: ChipCoordinate) -> int:
        """The board id holding ``coordinate``."""
        return self.config.board_of(coordinate)

    def inter_board_links(self) -> List[Link]:
        """Every link crossing a board boundary."""
        return [link for link in self.links.values() if link.inter_board]

    @property
    def origin(self) -> Chip:
        """The boot origin: the first Ethernet-attached chip (Section 5.2)."""
        return self.chips[self.ethernet_chips[0]]

    # ------------------------------------------------------------------
    # Transport layer
    # ------------------------------------------------------------------
    def _transmit(self, source: ChipCoordinate, direction: Direction,
                  packet: Any) -> bool:
        link = self.links[(source, direction)]
        bit_length = getattr(packet, "bit_length", 40)
        arrival_time = link.try_accept(self.kernel.now, bit_length)
        if arrival_time is None:
            return False
        self.kernel.schedule(arrival_time, self._deliver, priority=4,
                             label="link-arrival", target=link.target,
                             packet=packet, arrival=direction.opposite)
        return True

    def _deliver(self, _kernel: EventKernel, target: ChipCoordinate,
                 packet: Any, arrival: Direction) -> None:
        self.chips[target].receive_from_link(packet, arrival)

    # ------------------------------------------------------------------
    # Injection API used by applications, the host and the benchmarks
    # ------------------------------------------------------------------
    def inject_multicast(self, coordinate: ChipCoordinate,
                         packet: MulticastPacket) -> None:
        """Inject a multicast packet at a chip's router (host/test hook)."""
        self.packets_injected += 1
        chip = self.chips[coordinate]
        self.kernel.schedule_after(0.0, chip._router_receive, priority=4,
                                   label="inject-mc", packet=packet,
                                   arrival=None)

    def send_nearest_neighbour(self, source: ChipCoordinate,
                               direction: Direction,
                               packet: NearestNeighbourPacket) -> bool:
        """Send an nn packet from ``source`` to its neighbour."""
        return self.chips[source].send_nearest_neighbour(direction, packet)

    def send_p2p(self, source: ChipCoordinate,
                 packet: PointToPointPacket) -> bool:
        """Send a p2p packet from ``source`` towards its destination."""
        return self.chips[source].send_p2p(packet)

    # ------------------------------------------------------------------
    # Fault injection hooks (used by repro.fault)
    # ------------------------------------------------------------------
    def fail_link(self, coordinate: ChipCoordinate, direction: Direction,
                  bidirectional: bool = True) -> None:
        """Mark an inter-chip link (and by default its return path) failed."""
        self.links[(coordinate, direction)].failed = True
        if bidirectional:
            target = coordinate.neighbour(direction, self.config.width,
                                          self.config.height)
            self.links[(target, direction.opposite)].failed = True

    def repair_link(self, coordinate: ChipCoordinate, direction: Direction,
                    bidirectional: bool = True) -> None:
        """Restore a previously-failed link."""
        self.links[(coordinate, direction)].failed = False
        if bidirectional:
            target = coordinate.neighbour(direction, self.config.width,
                                          self.config.height)
            self.links[(target, direction.opposite)].failed = False

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def total_dropped_packets(self) -> int:
        """Total packets dropped by all routers."""
        return sum(chip.router.stats.dropped for chip in self)

    def total_emergency_invocations(self) -> int:
        """Total emergency-routing invocations across the machine."""
        return sum(chip.router.stats.emergency_invocations for chip in self)

    def total_link_traffic(self) -> int:
        """Total packets carried by all inter-chip links."""
        return sum(link.packets_carried for link in self.links.values())

    def total_inter_board_traffic(self) -> int:
        """Total packets carried over board-to-board links."""
        return sum(link.packets_carried for link in self.links.values()
                   if link.inter_board)

    def run(self, duration_us: Optional[float] = None) -> None:
        """Advance the simulation (until quiescent, or for ``duration_us``)."""
        if duration_us is None:
            self.kernel.run()
        else:
            self.kernel.run_until(self.kernel.now + duration_us)
