"""GALS clocking model (Figure 5).

The SpiNNaker chip is Globally Asynchronous, Locally Synchronous: each
processor subsystem, the router and the memory interface sit in their own
clock domain, and the domains communicate only through self-timed
interconnect.  The practical consequences modelled here are:

* every clock domain has its *own* frequency, with a per-domain deviation
  drawn from a process-variability distribution (the paper motivates GALS
  partly as a way of coping with increasing process variability);
* there is no global clock edge — converting a time to "cycles" is only
  meaningful within one domain;
* a domain can be independently slowed down or turned off (the decoupling
  of clocks and supply voltages that GALS offers the designers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Nominal processor clock of the ARM968 cores in SpiNNaker (200 MHz).
DEFAULT_CORE_FREQUENCY_MHZ = 200.0
#: Nominal router clock.
DEFAULT_ROUTER_FREQUENCY_MHZ = 200.0
#: Nominal SDRAM interface clock (mobile DDR, 133 MHz in the real chip).
DEFAULT_MEMORY_FREQUENCY_MHZ = 133.0


@dataclass
class ClockDomain:
    """A single locally-synchronous clock domain.

    Attributes
    ----------
    name:
        Human-readable domain name (for example ``"core-3"`` or ``"router"``).
    nominal_frequency_mhz:
        Design frequency of the domain.
    actual_frequency_mhz:
        Frequency after process variation and any dynamic scaling have been
        applied.  ``None`` until :meth:`apply_variation` or an explicit set.
    enabled:
        Whether the domain is currently clocked.  A disabled domain models a
        powered-down subsystem.
    """

    name: str
    nominal_frequency_mhz: float
    actual_frequency_mhz: Optional[float] = None
    enabled: bool = True
    scaling_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.nominal_frequency_mhz <= 0:
            raise ValueError("clock frequency must be positive")
        if self.actual_frequency_mhz is None:
            self.actual_frequency_mhz = self.nominal_frequency_mhz

    @property
    def effective_frequency_mhz(self) -> float:
        """Frequency after dynamic scaling; zero if the domain is disabled."""
        if not self.enabled:
            return 0.0
        return self.actual_frequency_mhz * self.scaling_factor

    def cycles_to_microseconds(self, cycles: float) -> float:
        """Convert a cycle count in this domain to microseconds.

        Raises
        ------
        RuntimeError
            If the domain is disabled (its clock is not running).
        """
        frequency = self.effective_frequency_mhz
        if frequency <= 0:
            raise RuntimeError("clock domain %r is disabled" % (self.name,))
        return cycles / frequency

    def microseconds_to_cycles(self, microseconds: float) -> float:
        """Convert a duration in microseconds to cycles of this domain."""
        return microseconds * self.effective_frequency_mhz

    def apply_variation(self, sigma_fraction: float,
                        rng: random.Random) -> None:
        """Apply a random process-variation offset to the actual frequency.

        ``sigma_fraction`` is the standard deviation of the frequency
        deviation as a fraction of nominal (for example 0.05 for 5 %).
        """
        if sigma_fraction < 0:
            raise ValueError("sigma_fraction must be non-negative")
        deviation = rng.gauss(0.0, sigma_fraction)
        # Clamp to a physically sensible range: a domain never runs faster
        # than 150 % or slower than 50 % of nominal through variation alone.
        deviation = max(-0.5, min(0.5, deviation))
        self.actual_frequency_mhz = self.nominal_frequency_mhz * (1.0 + deviation)

    def scale(self, factor: float) -> None:
        """Apply dynamic frequency scaling (DVFS) to this domain."""
        if factor < 0:
            raise ValueError("scaling factor must be non-negative")
        self.scaling_factor = factor

    def disable(self) -> None:
        """Stop the domain's clock (power the subsystem down)."""
        self.enabled = False

    def enable(self) -> None:
        """Restart the domain's clock."""
        self.enabled = True


@dataclass
class GALSClockSystem:
    """The collection of clock domains on one chip (Figure 5).

    A chip has one domain per processor subsystem, one for the router and
    one for the memory interface.  The domains are created by
    :meth:`for_chip` and can each be varied, scaled and disabled
    independently — the defining property of a GALS design.
    """

    domains: Dict[str, ClockDomain] = field(default_factory=dict)

    @classmethod
    def for_chip(cls, n_cores: int,
                 core_frequency_mhz: float = DEFAULT_CORE_FREQUENCY_MHZ,
                 router_frequency_mhz: float = DEFAULT_ROUTER_FREQUENCY_MHZ,
                 memory_frequency_mhz: float = DEFAULT_MEMORY_FREQUENCY_MHZ,
                 ) -> "GALSClockSystem":
        """Create the standard set of domains for an ``n_cores``-core chip."""
        system = cls()
        for core in range(n_cores):
            system.add(ClockDomain("core-%d" % core, core_frequency_mhz))
        system.add(ClockDomain("router", router_frequency_mhz))
        system.add(ClockDomain("memory", memory_frequency_mhz))
        return system

    def add(self, domain: ClockDomain) -> None:
        """Register a clock domain; names must be unique within the chip."""
        if domain.name in self.domains:
            raise ValueError("duplicate clock domain %r" % (domain.name,))
        self.domains[domain.name] = domain

    def __getitem__(self, name: str) -> ClockDomain:
        return self.domains[name]

    def __contains__(self, name: str) -> bool:
        return name in self.domains

    def core_domain(self, core_id: int) -> ClockDomain:
        """The clock domain of processor ``core_id``."""
        return self.domains["core-%d" % core_id]

    @property
    def router_domain(self) -> ClockDomain:
        """The router's clock domain."""
        return self.domains["router"]

    @property
    def memory_domain(self) -> ClockDomain:
        """The SDRAM interface's clock domain."""
        return self.domains["memory"]

    def apply_process_variation(self, sigma_fraction: float,
                                seed: Optional[int] = None) -> None:
        """Apply independent frequency variation to every domain on the chip."""
        rng = random.Random(seed)
        for domain in self.domains.values():
            domain.apply_variation(sigma_fraction, rng)

    def frequency_spread(self) -> float:
        """Return (max - min) / nominal over the enabled core domains.

        This is the quantity the GALS organisation is designed to tolerate:
        with a global clock the chip would have to run at the *slowest*
        domain's frequency, whereas GALS lets every domain run at its own.
        """
        core_domains = [d for name, d in self.domains.items()
                        if name.startswith("core-") and d.enabled]
        if not core_domains:
            return 0.0
        frequencies = [d.actual_frequency_mhz for d in core_domains]
        nominal = core_domains[0].nominal_frequency_mhz
        return (max(frequencies) - min(frequencies)) / nominal

    def synchronous_frequency(self) -> float:
        """The frequency a fully-synchronous chip would be forced to run at.

        A globally-clocked chip must clock every core at the speed of its
        slowest core; this helper is used by tests and benches to quantify
        the throughput the GALS organisation recovers.
        """
        core_domains = [d for name, d in self.domains.items()
                        if name.startswith("core-") and d.enabled]
        if not core_domains:
            return 0.0
        return min(d.actual_frequency_mhz for d in core_domains)

    def aggregate_core_frequency(self) -> float:
        """Sum of the effective core frequencies (a throughput proxy)."""
        return sum(d.effective_frequency_mhz
                   for name, d in self.domains.items()
                   if name.startswith("core-"))

    def all_domains(self) -> List[ClockDomain]:
        """All domains in insertion order."""
        return list(self.domains.values())
