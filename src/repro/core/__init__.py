"""Core machine model and discrete-event simulation kernel.

The core package contains the substrate on which every other part of the
reproduction is built:

* :mod:`repro.core.event_kernel` — the discrete-event scheduler that plays
  the role of "time models itself" (bounded asynchrony, Section 3.1).
* :mod:`repro.core.geometry` — coordinates and link directions on the 2-D
  toroidal triangular mesh (Figures 1 and 2).
* :mod:`repro.core.packets` — the three router packet types: multicast
  (AER spike events), point-to-point and nearest-neighbour (Section 5.2).
* :mod:`repro.core.clock` — GALS clock domains (Figure 5).
* :mod:`repro.core.sdram`, :mod:`repro.core.dma`, :mod:`repro.core.noc` —
  the shared memory, the per-core DMA engine and the two NoC fabrics
  (Figure 3).
* :mod:`repro.core.processor` and :mod:`repro.core.chip` — the ARM968
  processor subsystem (Figure 4) and the 20-core chip multiprocessor.
* :mod:`repro.core.machine` — the full machine: a torus of chips plus the
  host connection (Figure 1).
* :mod:`repro.core.admission` — QoS admission control on the best-effort
  GALS interconnect (the "traffic service management" of Section 4).
"""

from repro.core.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionStatistics,
    BEST_EFFORT,
    GUARANTEED_REALTIME,
    TokenBucketRegulator,
    TrafficClass,
)
from repro.core.chip import Chip
from repro.core.clock import ClockDomain, GALSClockSystem
from repro.core.dma import DMAController, DMARequest
from repro.core.event_kernel import Event, EventKernel
from repro.core.geometry import ChipCoordinate, Direction, TorusGeometry
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.core.noc import CommunicationsNoC, SystemNoC
from repro.core.packets import (
    MulticastPacket,
    NearestNeighbourPacket,
    Packet,
    PointToPointPacket,
)
from repro.core.processor import ProcessorState, ProcessorSubsystem
from repro.core.sdram import SDRAM

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStatistics",
    "BEST_EFFORT",
    "GUARANTEED_REALTIME",
    "TokenBucketRegulator",
    "TrafficClass",
    "Chip",
    "ClockDomain",
    "GALSClockSystem",
    "DMAController",
    "DMARequest",
    "Event",
    "EventKernel",
    "ChipCoordinate",
    "Direction",
    "TorusGeometry",
    "MachineConfig",
    "SpiNNakerMachine",
    "CommunicationsNoC",
    "SystemNoC",
    "Packet",
    "MulticastPacket",
    "PointToPointPacket",
    "NearestNeighbourPacket",
    "ProcessorState",
    "ProcessorSubsystem",
    "SDRAM",
]
