"""Discrete-event simulation kernel.

The SpiNNaker machine has no global clock: "time models itself" (Section
3.1 of the paper).  Each component advances in response to events whose
timestamps are expressed in simulated microseconds.  This module provides
the event queue shared by all hardware models in the reproduction.

The kernel is deliberately simple: a binary-heap priority queue of
``(time, priority, sequence, event)`` tuples.  Ties in time are broken by an
explicit priority (smaller value runs first, mirroring the vectored
interrupt controller priorities of Figure 7) and then by insertion order so
runs are fully deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.profile import profile_stage

#: Number of simulated microseconds in one millisecond; the neuron update
#: tick of the real-time application model is 1 ms (Section 3.1).
MICROSECONDS_PER_MILLISECOND = 1000.0

# Whole-loop stages (per-event spans would swamp the heap pop itself);
# hoisted so repeated runs re-enter the same objects.
_RUN_STAGE = profile_stage("kernel_run")
_RUN_UNTIL_STAGE = profile_stage("kernel_run_until")


@dataclass(order=False)
class Event:
    """A single scheduled event.

    Attributes
    ----------
    time:
        Simulated time (microseconds) at which the event fires.
    callback:
        Callable invoked as ``callback(kernel, **kwargs)`` when the event
        fires.
    priority:
        Tie-breaking priority.  Lower values run first at equal timestamps,
        mirroring the interrupt priorities of the application model
        (packet-received = 1, DMA-complete = 2, millisecond timer = 3).
    kwargs:
        Keyword arguments forwarded to the callback.
    label:
        Optional human-readable label used in traces and error messages.
    weight:
        Number of *logical* events this entry stands for.  The compiled
        transport fabric coalesces a whole spike batch into one scheduled
        callback; the weight keeps :attr:`EventKernel.events_processed`
        comparable between the per-packet and the batched transports.
    """

    time: float
    callback: Callable[..., Any]
    priority: int = 10
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    cancelled: bool = False
    weight: int = 1

    def cancel(self) -> None:
        """Mark the event so that the kernel skips it when it is popped."""
        self.cancelled = True


class EventKernel:
    """A deterministic discrete-event scheduler.

    The kernel is the single source of simulated time for the whole machine
    model.  Components schedule callbacks with :meth:`schedule` (absolute
    time) or :meth:`schedule_after` (relative delay) and the simulation is
    advanced with :meth:`run` / :meth:`run_until` / :meth:`step`.

    Examples
    --------
    >>> kernel = EventKernel()
    >>> fired = []
    >>> _ = kernel.schedule_after(5.0, lambda k: fired.append(k.now))
    >>> kernel.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self._queue: List[tuple] = []
        self._sequence = 0
        self._now = 0.0
        self._events_processed = 0
        self._trace: Optional[List[tuple]] = None

    # ------------------------------------------------------------------
    # Time and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue (including cancelled)."""
        return len(self._queue)

    def enable_trace(self) -> None:
        """Record ``(time, label)`` for every executed event (for debugging)."""
        self._trace = []

    @property
    def trace(self) -> List[tuple]:
        """The recorded trace, or an empty list if tracing is disabled."""
        return list(self._trace) if self._trace is not None else []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float, callback: Callable[..., Any], *,
                 priority: int = 10, label: str = "", **kwargs: Any) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``.

        Raises
        ------
        ValueError
            If ``time`` is in the simulated past.
        """
        if time < self._now:
            raise ValueError(
                "cannot schedule event at t=%.3f us: current time is %.3f us"
                % (time, self._now)
            )
        event = Event(time=time, callback=callback, priority=priority,
                      kwargs=kwargs, label=label)
        heapq.heappush(self._queue, (time, priority, self._sequence, event))
        self._sequence += 1
        return event

    def schedule_after(self, delay: float, callback: Callable[..., Any], *,
                       priority: int = 10, label: str = "",
                       **kwargs: Any) -> Event:
        """Schedule ``callback`` after ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % (delay,))
        return self.schedule(self._now + delay, callback, priority=priority,
                             label=label, **kwargs)

    def schedule_batch(self, delay: float, callback: Callable[..., Any], *,
                       count: int, priority: int = 10, label: str = "",
                       **kwargs: Any) -> Event:
        """Schedule one callback standing for ``count`` coalesced events.

        The batched-event variant used by the compiled transport fabric:
        a whole spike batch is carried by a single heap entry (one pop,
        one callback) but still counts as ``count`` logical events in
        :attr:`events_processed`, so event-throughput metrics remain
        comparable with the per-packet transport.
        """
        if count < 1:
            raise ValueError("a batched event must carry at least one "
                             "logical event, got %r" % (count,))
        event = self.schedule_after(delay, callback, priority=priority,
                                    label=label, **kwargs)
        event.weight = int(count)
        return event

    def schedule_periodic(self, period: float, callback: Callable[..., Any], *,
                          start: Optional[float] = None, priority: int = 10,
                          label: str = "") -> Event:
        """Schedule ``callback`` every ``period`` microseconds.

        The callback is invoked as ``callback(kernel)``; it is rescheduled
        automatically until the returned event is cancelled.  Cancelling the
        *returned* event stops the whole periodic chain.
        """
        if period <= 0:
            raise ValueError("period must be positive, got %r" % (period,))
        first_time = self._now + period if start is None else start

        # The controller object is shared across repetitions so a single
        # cancel() stops the chain.
        controller = Event(time=first_time, callback=callback,
                           priority=priority, label=label)

        def _fire(kernel: "EventKernel") -> None:
            if controller.cancelled:
                return
            callback(kernel)
            if not controller.cancelled:
                kernel.schedule(kernel.now + period, _fire,
                                priority=priority, label=label)

        self.schedule(first_time, _fire, priority=priority, label=label)
        return controller

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue is
        empty.
        """
        while self._queue:
            time, _priority, _seq, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = time
            if self._trace is not None:
                self._trace.append((time, event.label))
            event.callback(self, **event.kwargs)
            self._events_processed += event.weight
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` is reached).

        Returns the number of events executed by this call.
        """
        executed = 0
        with _RUN_STAGE:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                if self.step():
                    executed += 1
        return executed

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with timestamps ``<= end_time``.

        The simulated clock is advanced to ``end_time`` if the queue drains
        (or holds only later events), so periodic processes resumed later
        see a consistent time base.  When the run is cut short by
        ``max_events`` the clock is left at the last executed event —
        advancing it to ``end_time`` would make the still-pending events
        before ``end_time`` execute with the clock moving backwards.
        Returns the number of events executed.
        """
        if end_time < self._now:
            raise ValueError(
                "end_time %.3f us is before current time %.3f us"
                % (end_time, self._now)
            )
        executed = 0
        with _RUN_UNTIL_STAGE:
            while self._queue:
                next_time = self._peek_time()
                if next_time is None or next_time > end_time:
                    break
                if max_events is not None and executed >= max_events:
                    # Cut short with executable events still pending: leave
                    # the clock at the last executed event.
                    return executed
                if self.step():
                    executed += 1
        self._now = max(self._now, end_time)
        return executed

    def _peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None``."""
        while self._queue:
            time, _priority, _seq, event = self._queue[0]
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            return time
        return None


def milliseconds(value: float) -> float:
    """Convert milliseconds to the kernel's microsecond time base."""
    return value * MICROSECONDS_PER_MILLISECOND


def microseconds(value: float) -> float:
    """Identity helper for readability when building time expressions."""
    return float(value)
