"""Shared SDRAM model (Figure 3).

Each SpiNNaker node pairs the MPSoC with a 1 Gbit (128 Mbyte) mobile DDR
SDRAM.  The SDRAM holds the synaptic connectivity data: when a spike packet
arrives, the receiving core DMAs the corresponding synaptic row from SDRAM
into its local data memory (Section 5.3).

The model tracks:

* a word-addressable backing store (a Python dict, so a 128 Mbyte address
  space costs memory only for the words actually written);
* an access-time model — fixed latency plus a per-byte transfer cost — used
  by the DMA controller;
* contention: the memory interface serves one burst at a time, so
  overlapping requests queue behind each other (the System NoC arbitrates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Default SDRAM size: 1 Gbit = 128 Mbyte.
DEFAULT_SDRAM_BYTES = 128 * 1024 * 1024
#: First-word access latency of the mobile DDR part, in microseconds.
DEFAULT_ACCESS_LATENCY_US = 0.1
#: Sustained transfer bandwidth of the memory interface, in bytes per
#: microsecond (~1 Gbyte/s shared across the 20 cores of a node).
DEFAULT_BANDWIDTH_BYTES_PER_US = 1000.0


class SDRAMAllocationError(Exception):
    """Raised when an allocation request cannot be satisfied."""


@dataclass
class SDRAMRegion:
    """A contiguous allocated region of SDRAM."""

    base: int
    size: int
    tag: str = ""

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def __contains__(self, address: int) -> bool:
        return self.base <= address < self.end


@dataclass
class SDRAM:
    """The node's shared SDRAM with a simple bump allocator and timing model."""

    size_bytes: int = DEFAULT_SDRAM_BYTES
    access_latency_us: float = DEFAULT_ACCESS_LATENCY_US
    bandwidth_bytes_per_us: float = DEFAULT_BANDWIDTH_BYTES_PER_US
    _next_free: int = 0
    _regions: List[SDRAMRegion] = field(default_factory=list)
    _store: Dict[int, int] = field(default_factory=dict)
    _busy_until: float = 0.0
    total_bytes_read: int = 0
    total_bytes_written: int = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, size: int, tag: str = "") -> SDRAMRegion:
        """Allocate ``size`` bytes and return the region descriptor.

        Allocation is a simple bump allocator: the real machine builds its
        SDRAM layout once at load time, so fragmentation is not a concern.

        Raises
        ------
        SDRAMAllocationError
            If the request does not fit in the remaining space.
        """
        if size <= 0:
            raise ValueError("allocation size must be positive, got %r" % (size,))
        # Word-align every region.
        aligned = (size + 3) & ~3
        if self._next_free + aligned > self.size_bytes:
            raise SDRAMAllocationError(
                "cannot allocate %d bytes: %d of %d bytes already in use"
                % (size, self._next_free, self.size_bytes)
            )
        region = SDRAMRegion(base=self._next_free, size=aligned, tag=tag)
        self._next_free += aligned
        self._regions.append(region)
        return region

    def free(self, region: SDRAMRegion) -> None:
        """Release a region allocated earlier.

        The bump allocator only reclaims address space when the freed
        region is the most recent allocation; interior regions are
        forgotten (their words are dropped and the region no longer shows
        up in :attr:`regions`) but their addresses are not reused.  This
        matches the real machine's load-time layout discipline while
        letting the incremental mapping compiler drop the synaptic blocks
        of a vertex it moved off the chip.
        """
        try:
            self._regions.remove(region)
        except ValueError:
            raise ValueError("region %r was not allocated from this SDRAM"
                             % (region,))
        for address in range(region.base, region.end, 4):
            self._store.pop(address, None)
        if region.end == self._next_free:
            self._next_free = region.base

    @property
    def bytes_allocated(self) -> int:
        """Total bytes handed out so far."""
        return self._next_free

    @property
    def bytes_free(self) -> int:
        """Bytes still available for allocation."""
        return self.size_bytes - self._next_free

    @property
    def regions(self) -> List[SDRAMRegion]:
        """All allocated regions in allocation order."""
        return list(self._regions)

    def region_for(self, tag: str) -> Optional[SDRAMRegion]:
        """Return the first region allocated with ``tag``, or ``None``."""
        for region in self._regions:
            if region.tag == tag:
                return region
        return None

    # ------------------------------------------------------------------
    # Data access (word granularity)
    # ------------------------------------------------------------------
    def write_word(self, address: int, value: int) -> None:
        """Write a 32-bit word at a byte address (must be word-aligned)."""
        self._check_address(address)
        self._store[address] = value & 0xFFFFFFFF
        self.total_bytes_written += 4

    def read_word(self, address: int) -> int:
        """Read a 32-bit word; unwritten locations read as zero."""
        self._check_address(address)
        self.total_bytes_read += 4
        return self._store.get(address, 0)

    def write_block(self, address: int, words: List[int]) -> None:
        """Write a block of consecutive 32-bit words starting at ``address``."""
        for offset, word in enumerate(words):
            self.write_word(address + 4 * offset, word)

    def read_block(self, address: int, n_words: int) -> List[int]:
        """Read ``n_words`` consecutive 32-bit words starting at ``address``."""
        return [self.read_word(address + 4 * i) for i in range(n_words)]

    def peek_block(self, address: int, n_words: int) -> List[int]:
        """Read a block *without* charging the traffic counters.

        For tooling that inspects memory outside the simulated dataflow —
        e.g. the transport fabric decoding synaptic blocks at compile
        time — so ``total_bytes_read`` keeps meaning "bytes the simulated
        machine moved".
        """
        words = []
        for i in range(n_words):
            word_address = address + 4 * i
            self._check_address(word_address)
            words.append(self._store.get(word_address, 0))
        return words

    def _check_address(self, address: int) -> None:
        if address % 4 != 0:
            raise ValueError("address 0x%x is not word-aligned" % (address,))
        if not 0 <= address < self.size_bytes:
            raise ValueError("address 0x%x is outside the %d-byte SDRAM"
                             % (address, self.size_bytes))

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def transfer_time(self, n_bytes: int) -> float:
        """Time (microseconds) for an uncontended burst of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError("transfer size must be non-negative")
        return self.access_latency_us + n_bytes / self.bandwidth_bytes_per_us

    def schedule_transfer(self, now: float, n_bytes: int) -> float:
        """Account for contention and return the completion time of a burst.

        The interface serves one burst at a time; a burst issued while a
        previous one is still in flight starts when the interface frees up.
        """
        start = max(now, self._busy_until)
        finish = start + self.transfer_time(n_bytes)
        self._busy_until = finish
        return finish

    @property
    def busy_until(self) -> float:
        """Simulated time at which the memory interface becomes idle."""
        return self._busy_until
