"""Per-core DMA controller (Figure 4).

Each processor subsystem contains a DMA controller "typically used to
transfer blocks of synaptic connectivity data from the SDRAM to the
processor local memory in response to the arrival of an incoming neural
spike event" (Section 4).  The application model of Figure 7 drives it:

* when a multicast packet arrives, the packet handler schedules a DMA read
  of the corresponding synaptic row;
* when the DMA completes, a DMA-complete interrupt fires, the row is
  processed, and — if the row was modified (plasticity) — a write-back DMA
  is scheduled.

The controller processes one request at a time and keeps a FIFO of pending
requests, exactly like the hardware.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Deque, List, Optional

from repro.core.event_kernel import EventKernel
from repro.core.sdram import SDRAM


class DMADirection(Enum):
    """Transfer direction of a DMA request."""

    READ = "read"      #: SDRAM -> local data memory (DTCM)
    WRITE = "write"    #: local data memory -> SDRAM (write-back)


@dataclass
class DMARequest:
    """A single DMA transfer request.

    Attributes
    ----------
    direction:
        :attr:`DMADirection.READ` or :attr:`DMADirection.WRITE`.
    sdram_address:
        Byte address of the transfer in SDRAM (word aligned).
    n_words:
        Number of 32-bit words to transfer.
    on_complete:
        Callback invoked as ``on_complete(request)`` when the transfer
        finishes — this is the DMA-complete interrupt of Figure 7.
    data:
        For writes, the words to store.  For reads, filled in on completion.
    context:
        Arbitrary application context (for example the routing key whose
        synaptic row is being fetched) carried through to the callback.
    """

    direction: DMADirection
    sdram_address: int
    n_words: int
    on_complete: Optional[Callable[["DMARequest"], None]] = None
    data: Optional[List[int]] = None
    context: Any = None
    issue_time: float = 0.0
    start_time: float = 0.0
    complete_time: float = 0.0

    @property
    def n_bytes(self) -> int:
        """Size of the transfer in bytes."""
        return self.n_words * 4

    @property
    def queue_delay(self) -> float:
        """Time the request spent waiting behind other transfers."""
        return self.start_time - self.issue_time

    @property
    def total_latency(self) -> float:
        """Time from issue to completion."""
        return self.complete_time - self.issue_time


@dataclass
class DMAController:
    """The per-core DMA engine.

    The controller owns a FIFO of outstanding requests; one request is in
    flight at a time.  Transfer timing is delegated to the SDRAM model,
    which also accounts for contention between the cores of a chip.
    """

    kernel: EventKernel
    sdram: SDRAM
    #: Fixed per-request setup cost (descriptor write + bridge crossing).
    setup_time_us: float = 0.2
    _queue: Deque[DMARequest] = field(default_factory=deque)
    _active: Optional[DMARequest] = None
    completed_transfers: int = 0
    total_words_transferred: int = 0

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------
    def issue(self, request: DMARequest) -> DMARequest:
        """Queue a DMA request; it starts as soon as the engine is free."""
        request.issue_time = self.kernel.now
        self._queue.append(request)
        if self._active is None:
            self._start_next()
        return request

    def read(self, sdram_address: int, n_words: int,
             on_complete: Optional[Callable[[DMARequest], None]] = None,
             context: Any = None) -> DMARequest:
        """Convenience wrapper to issue a read request."""
        return self.issue(DMARequest(direction=DMADirection.READ,
                                     sdram_address=sdram_address,
                                     n_words=n_words,
                                     on_complete=on_complete,
                                     context=context))

    def write(self, sdram_address: int, data: List[int],
              on_complete: Optional[Callable[[DMARequest], None]] = None,
              context: Any = None) -> DMARequest:
        """Convenience wrapper to issue a write(-back) request."""
        return self.issue(DMARequest(direction=DMADirection.WRITE,
                                     sdram_address=sdram_address,
                                     n_words=len(data),
                                     data=list(data),
                                     on_complete=on_complete,
                                     context=context))

    # ------------------------------------------------------------------
    # Engine state machine
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether a transfer is currently in flight."""
        return self._active is not None

    @property
    def queue_length(self) -> int:
        """Number of requests waiting behind the active one."""
        return len(self._queue)

    def _start_next(self) -> None:
        if not self._queue:
            return
        request = self._queue.popleft()
        self._active = request
        request.start_time = self.kernel.now
        completion = self.sdram.schedule_transfer(
            self.kernel.now + self.setup_time_us, request.n_bytes)
        self.kernel.schedule(completion, self._complete, priority=2,
                             label="dma-complete", request=request)

    def _complete(self, _kernel: EventKernel, request: DMARequest) -> None:
        # Perform the data movement at completion time.
        if request.direction is DMADirection.READ:
            request.data = self.sdram.read_block(request.sdram_address,
                                                 request.n_words)
        else:
            if request.data is None:
                raise RuntimeError("write DMA issued without data")
            self.sdram.write_block(request.sdram_address, request.data)
        request.complete_time = self.kernel.now
        self.completed_transfers += 1
        self.total_words_transferred += request.n_words
        self._active = None
        # The DMA-complete handler of Figure 7 initiates the next scheduled
        # transfer before processing the data, which is what we do here.
        self._start_next()
        if request.on_complete is not None:
            request.on_complete(request)
