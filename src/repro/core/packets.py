"""Router packet formats (Sections 4 and 5.2).

The SpiNNaker router supports three packet types:

* **Multicast (mc)** packets carry neural spike events using Address Event
  Representation: a 40-bit packet made of 8 bits of management data and a
  32-bit routing key that identifies the neuron that fired.
* **Point-to-point (p2p)** packets carry system-management traffic between
  arbitrary chips, addressed by 16-bit source and destination chip
  addresses, and are routed algorithmically.
* **Nearest-neighbour (nn)** packets travel exactly one hop and are used
  during boot for self-configuration and neighbour repair.

All three are modelled here as small immutable dataclasses together with the
bit-level pack/unpack helpers that enforce the 40-bit format of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import IntEnum
from typing import Optional, Tuple

from repro.core.geometry import ChipCoordinate, Direction

#: Width of the multicast routing key (the AER neuron identifier).
KEY_BITS = 32
#: Width of the packet-management header.
HEADER_BITS = 8
#: Total multicast packet size quoted by the paper ("a 40-bit packet").
MC_PACKET_BITS = KEY_BITS + HEADER_BITS
#: Optional 32-bit payload extension supported by the real router.
PAYLOAD_BITS = 32

_sequence_counter = itertools.count()


class PacketType(IntEnum):
    """The packet type field carried in the management header."""

    MULTICAST = 0
    POINT_TO_POINT = 1
    NEAREST_NEIGHBOUR = 2


class EmergencyState(IntEnum):
    """Emergency-routing state carried in the management header (Sec 5.3).

    ``NORMAL`` packets follow their routing-table entry.  ``FIRST_LEG``
    marks a packet that has been diverted onto the first side of the
    emergency triangle; ``SECOND_LEG`` marks the second side, after which
    the packet resumes normal routing.
    """

    NORMAL = 0
    FIRST_LEG = 1
    SECOND_LEG = 2


@dataclass(frozen=True)
class Packet:
    """Common behaviour of all router packets."""

    #: Monotonically increasing identifier used for tracing and statistics.
    sequence: int = field(default_factory=lambda: next(_sequence_counter))

    @property
    def packet_type(self) -> PacketType:
        raise NotImplementedError

    @property
    def bit_length(self) -> int:
        """Number of bits on the wire (header + key, plus payload if any)."""
        raise NotImplementedError


@dataclass(frozen=True)
class MulticastPacket(Packet):
    """An AER spike-event packet (Section 4).

    Attributes
    ----------
    key:
        The 32-bit routing key: the identifier of the neuron that fired.
    payload:
        Optional 32-bit payload (not used for plain spike events).
    emergency:
        Emergency-routing state (Section 5.3).
    timestamp:
        Simulated time (microseconds) at which the spike was emitted; used
        by the latency analysis, not part of the wire format.
    source:
        Coordinate of the chip that injected the packet (trace metadata).
    """

    key: int = 0
    payload: Optional[int] = None
    emergency: EmergencyState = EmergencyState.NORMAL
    timestamp: float = 0.0
    source: Optional[ChipCoordinate] = None
    #: Router hops taken so far.  The real router stamps each packet with a
    #: 2-bit "time phase" and drops packets whose phase has expired so that
    #: default-routed packets cannot circulate forever; the simulation keeps
    #: an explicit hop count with the same role.
    hops: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.key < (1 << KEY_BITS):
            raise ValueError("multicast key %r does not fit in %d bits"
                             % (self.key, KEY_BITS))
        if self.payload is not None and not 0 <= self.payload < (1 << PAYLOAD_BITS):
            raise ValueError("payload %r does not fit in %d bits"
                             % (self.payload, PAYLOAD_BITS))

    @property
    def packet_type(self) -> PacketType:
        return PacketType.MULTICAST

    @property
    def bit_length(self) -> int:
        return MC_PACKET_BITS + (PAYLOAD_BITS if self.payload is not None else 0)

    def with_emergency(self, state: EmergencyState) -> "MulticastPacket":
        """Return a copy of the packet with a new emergency-routing state."""
        return replace(self, emergency=state)

    def aged(self) -> "MulticastPacket":
        """Return a copy of the packet with its hop count advanced by one."""
        return replace(self, hops=self.hops + 1)

    def pack(self) -> int:
        """Pack the packet into its 40-bit wire representation.

        The header layout used here is: bits [7:6] packet type, bits [5:4]
        emergency state, bit [1] payload-present flag, other bits reserved.
        """
        header = (int(self.packet_type) << 6) | (int(self.emergency) << 4)
        if self.payload is not None:
            header |= 1 << 1
        return (header << KEY_BITS) | self.key

    @classmethod
    def unpack(cls, word: int, payload: Optional[int] = None) -> "MulticastPacket":
        """Reconstruct a packet from its 40-bit wire representation."""
        if not 0 <= word < (1 << MC_PACKET_BITS):
            raise ValueError("wire word %r does not fit in %d bits"
                             % (word, MC_PACKET_BITS))
        key = word & ((1 << KEY_BITS) - 1)
        header = word >> KEY_BITS
        emergency = EmergencyState((header >> 4) & 0x3)
        has_payload = bool(header & (1 << 1))
        if has_payload and payload is None:
            raise ValueError("packet header indicates a payload but none given")
        return cls(key=key, payload=payload if has_payload else None,
                   emergency=emergency)


@dataclass(frozen=True)
class PointToPointPacket(Packet):
    """A system-management packet with 16-bit source and destination addresses.

    P2P addresses encode the chip coordinate as ``(x << 8) | y``, the
    convention used by the real machine for meshes up to 256 x 256.
    """

    source_address: int = 0
    destination_address: int = 0
    payload: Optional[int] = None
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (("source_address", self.source_address),
                            ("destination_address", self.destination_address)):
            if not 0 <= value < (1 << 16):
                raise ValueError("%s %r does not fit in 16 bits" % (name, value))

    @property
    def packet_type(self) -> PacketType:
        return PacketType.POINT_TO_POINT

    @property
    def bit_length(self) -> int:
        return MC_PACKET_BITS + (PAYLOAD_BITS if self.payload is not None else 0)

    @staticmethod
    def encode_address(coord: ChipCoordinate) -> int:
        """Encode a chip coordinate as a 16-bit p2p address."""
        if not (0 <= coord.x < 256 and 0 <= coord.y < 256):
            raise ValueError("coordinate %s exceeds the 16-bit p2p address space"
                             % (coord,))
        return (coord.x << 8) | coord.y

    @staticmethod
    def decode_address(address: int) -> ChipCoordinate:
        """Decode a 16-bit p2p address into a chip coordinate."""
        if not 0 <= address < (1 << 16):
            raise ValueError("p2p address %r does not fit in 16 bits" % (address,))
        return ChipCoordinate(address >> 8, address & 0xFF)

    @property
    def source(self) -> ChipCoordinate:
        """The source chip coordinate."""
        return self.decode_address(self.source_address)

    @property
    def destination(self) -> ChipCoordinate:
        """The destination chip coordinate."""
        return self.decode_address(self.destination_address)

    @classmethod
    def between(cls, source: ChipCoordinate, destination: ChipCoordinate,
                payload: Optional[int] = None,
                timestamp: float = 0.0) -> "PointToPointPacket":
        """Build a p2p packet from chip coordinates."""
        return cls(source_address=cls.encode_address(source),
                   destination_address=cls.encode_address(destination),
                   payload=payload, timestamp=timestamp)


class NNCommand(IntEnum):
    """Nearest-neighbour packet commands used during boot (Section 5.2)."""

    PROBE = 0              #: "Are you alive / booted?"
    COORDINATE = 1         #: Propagate (x, y) position from the origin chip.
    SET_MONITOR = 2        #: Force the choice of monitor processor.
    WRITE_SYSTEM_RAM = 3   #: Copy boot code into the neighbour's System RAM.
    REBOOT = 4             #: Instruct the neighbour to reboot from System RAM.
    FLOOD_FILL_DATA = 5    #: A block of application data during flood-fill.
    FLOOD_FILL_END = 6     #: End-of-load marker carrying a checksum.
    PEEK = 7               #: Read a word of the neighbour's System RAM.
    POKE = 8               #: Write a word of the neighbour's System RAM.
    RESPONSE = 9           #: Reply to a PROBE/PEEK/POKE request.


@dataclass(frozen=True)
class NearestNeighbourPacket(Packet):
    """A one-hop packet used for boot, repair and flood-fill (Section 5.2)."""

    command: NNCommand = NNCommand.PROBE
    payload: Tuple = ()
    direction: Optional[Direction] = None
    timestamp: float = 0.0

    @property
    def packet_type(self) -> PacketType:
        return PacketType.NEAREST_NEIGHBOUR

    @property
    def bit_length(self) -> int:
        # nn packets always carry a 32-bit payload word in the real machine.
        return MC_PACKET_BITS + PAYLOAD_BITS
