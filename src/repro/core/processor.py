"""The ARM968 processor subsystem (Figure 4).

Each SpiNNaker chip contains up to 20 of these subsystems.  Every subsystem
has:

* 32 Kbyte of instruction memory (ITCM) and 64 Kbyte of data memory (DTCM);
* a timer/counter that raises the 1 ms interrupt of the real-time model;
* a vectored interrupt controller (VIC) that prioritises the three
  application interrupts of Figure 7 — packet received (highest), DMA
  complete, millisecond timer (lowest);
* a communications controller that injects and receives router packets;
* a DMA controller used to fetch synaptic rows from the shared SDRAM.

The processor is modelled as an *event-cost* machine rather than an
instruction-set simulator: each interrupt handler occupies the core for a
configurable number of cycles, the core tracks the time it spends busy
versus asleep ("wait for interrupt"), and handler invocations that arrive
while the core is busy queue up — which is exactly what determines whether
the real-time deadlines of Section 3.1 are met.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from repro.core.clock import ClockDomain
from repro.core.dma import DMAController, DMARequest
from repro.core.event_kernel import EventKernel

#: Local instruction memory size (bytes).
ITCM_BYTES = 32 * 1024
#: Local data memory size (bytes).
DTCM_BYTES = 64 * 1024


class ProcessorState(Enum):
    """Lifecycle states of a processor subsystem (Sections 5.2 and 5.3)."""

    OFF = "off"                    #: Not yet powered / before boot.
    SELF_TEST = "self-test"        #: Running the power-on self-test.
    FAILED = "failed"              #: Self-test failed or fault detected.
    READY = "ready"                #: Passed self-test, awaiting a role.
    MONITOR = "monitor"            #: Elected as the chip's Monitor Processor.
    APPLICATION = "application"    #: Running event-driven application code.
    SLEEPING = "sleeping"          #: In the low-power wait-for-interrupt state.
    DISABLED = "disabled"          #: Mapped out due to a suspected fault.


class InterruptPriority:
    """VIC priorities of the three application events (Figure 7)."""

    PACKET_RECEIVED = 1
    DMA_COMPLETE = 2
    MILLISECOND_TIMER = 3


@dataclass
class HandlerCosts:
    """Cycle costs charged for each interrupt handler.

    The defaults approximate the costs reported for the SpiNNaker neural
    kernel: a packet handler that looks up the master-population table and
    issues a DMA, a DMA handler that processes a synaptic row, and a timer
    handler that integrates the neuron state equations.
    """

    packet_received_cycles: float = 80.0
    dma_complete_cycles_per_word: float = 12.0
    dma_complete_fixed_cycles: float = 60.0
    timer_cycles_per_neuron: float = 120.0
    timer_fixed_cycles: float = 200.0


@dataclass
class _PendingInterrupt:
    priority: int
    cycles: float
    handler: Callable[..., None]
    kwargs: Dict[str, Any]
    raised_at: float


class ProcessorSubsystem:
    """One ARM968 core with its local peripherals (Figure 4).

    Parameters
    ----------
    kernel:
        The shared discrete-event kernel.
    core_id:
        Index of the core within its chip (0-19).
    clock:
        The core's GALS clock domain.
    dma:
        The core's DMA controller (already bound to the node's SDRAM).
    send_packet:
        Callable used by the communications controller to inject a packet
        into the chip's router, invoked as ``send_packet(core_id, packet)``.
    costs:
        Cycle-cost model for the interrupt handlers.
    """

    def __init__(self, kernel: EventKernel, core_id: int, clock: ClockDomain,
                 dma: DMAController,
                 send_packet: Optional[Callable[[int, Any], None]] = None,
                 costs: Optional[HandlerCosts] = None) -> None:
        self.kernel = kernel
        self.core_id = core_id
        self.clock = clock
        self.dma = dma
        self._send_packet = send_packet
        self.costs = costs or HandlerCosts()

        self.state = ProcessorState.OFF
        self.itcm_bytes = ITCM_BYTES
        self.dtcm_bytes = DTCM_BYTES
        self.itcm_used = 0
        self.dtcm_used = 0

        # Application handlers (Figure 7).
        self._packet_handler: Optional[Callable[..., None]] = None
        self._dma_handler: Optional[Callable[..., None]] = None
        self._timer_handler: Optional[Callable[..., None]] = None
        self._timer_event = None
        self.timer_period_us: Optional[float] = None

        # Interrupt machinery: pending interrupts wait while a handler is
        # running; they are drained in priority order.
        self._pending: List[_PendingInterrupt] = []
        self._running = False
        self._busy_until = 0.0

        # Accounting for the energy model and the real-time benchmarks.
        self.busy_time_us = 0.0
        self.handler_invocations: Dict[str, int] = {
            "packet": 0, "dma": 0, "timer": 0}
        self.packets_sent = 0
        self.packets_received = 0
        self.max_interrupt_latency_us = 0.0
        self.dropped_work = 0

    # ------------------------------------------------------------------
    # Boot-time behaviour (Section 5.2)
    # ------------------------------------------------------------------
    def run_self_test(self, passes: bool) -> bool:
        """Run the power-on self-test.

        ``passes`` is decided by the fault model; the processor records the
        outcome and moves to ``READY`` or ``FAILED``.
        """
        self.state = ProcessorState.SELF_TEST
        if passes:
            self.state = ProcessorState.READY
        else:
            self.state = ProcessorState.FAILED
        return passes

    def become_monitor(self) -> None:
        """Take on the Monitor Processor role."""
        if self.state is not ProcessorState.READY:
            raise RuntimeError(
                "core %d cannot become monitor from state %s"
                % (self.core_id, self.state.value))
        self.state = ProcessorState.MONITOR

    def start_application(self) -> None:
        """Switch a ready core into the application-running state.

        Idempotent for a core already running an application: an
        incremental re-map rebinds fresh runtimes onto cores that never
        stopped, which must not trip the state check.
        """
        if self.state is ProcessorState.APPLICATION:
            return
        if self.state not in (ProcessorState.READY, ProcessorState.SLEEPING):
            raise RuntimeError(
                "core %d cannot start an application from state %s"
                % (self.core_id, self.state.value))
        self.state = ProcessorState.APPLICATION

    def disable(self) -> None:
        """Map the core out (suspected fault, Section 5.3)."""
        self.state = ProcessorState.DISABLED
        if self._timer_event is not None:
            self._timer_event.cancel()
            self._timer_event = None

    @property
    def is_application_core(self) -> bool:
        """True for cores that run application code (not monitor/failed)."""
        return self.state in (ProcessorState.APPLICATION,
                              ProcessorState.SLEEPING)

    @property
    def is_available(self) -> bool:
        """True if the core passed self-test and has not been disabled."""
        return self.state not in (ProcessorState.OFF, ProcessorState.FAILED,
                                  ProcessorState.DISABLED,
                                  ProcessorState.SELF_TEST)

    # ------------------------------------------------------------------
    # Application binding (Figure 7)
    # ------------------------------------------------------------------
    def on_packet(self, handler: Callable[..., None]) -> None:
        """Register the packet-received handler (priority 1)."""
        self._packet_handler = handler

    def on_dma_complete(self, handler: Callable[..., None]) -> None:
        """Register the DMA-complete handler (priority 2)."""
        self._dma_handler = handler

    def on_timer(self, handler: Callable[..., None]) -> None:
        """Register the millisecond-timer handler (priority 3)."""
        self._timer_handler = handler

    def start_timer(self, period_us: float,
                    start_offset_us: float = 0.0) -> None:
        """Start the periodic timer interrupt (1000 us for real time).

        ``start_offset_us`` delays the first tick; the application layer
        staggers the offsets across cores so the machine is not
        artificially lock-stepped (bounded asynchrony, Section 3.1).
        """
        if period_us <= 0:
            raise ValueError("timer period must be positive")
        if start_offset_us < 0:
            raise ValueError("timer offset must be non-negative")
        self.timer_period_us = period_us
        self._timer_event = self.kernel.schedule_periodic(
            period_us, self._timer_tick,
            start=self.kernel.now + period_us + start_offset_us,
            priority=InterruptPriority.MILLISECOND_TIMER,
            label="core%d-timer" % self.core_id)

    def stop_timer(self) -> None:
        """Stop the periodic timer interrupt."""
        if self._timer_event is not None:
            self._timer_event.cancel()
            self._timer_event = None

    # ------------------------------------------------------------------
    # Interrupt sources
    # ------------------------------------------------------------------
    def deliver_packet(self, packet: Any) -> None:
        """Deliver a router packet to the communications controller."""
        self.packets_received += 1
        if self._packet_handler is None or not self.is_application_core:
            return
        self.handler_invocations["packet"] += 1
        self._raise_interrupt(InterruptPriority.PACKET_RECEIVED,
                              self.costs.packet_received_cycles,
                              self._packet_handler, packet=packet)

    def dma_completed(self, request: DMARequest) -> None:
        """Signal completion of a DMA transfer (wired by the application)."""
        if self._dma_handler is None or not self.is_application_core:
            return
        self.handler_invocations["dma"] += 1
        cycles = (self.costs.dma_complete_fixed_cycles +
                  self.costs.dma_complete_cycles_per_word * request.n_words)
        self._raise_interrupt(InterruptPriority.DMA_COMPLETE, cycles,
                              self._dma_handler, request=request)

    def _timer_tick(self, _kernel: EventKernel) -> None:
        if self._timer_handler is None or not self.is_application_core:
            return
        self.handler_invocations["timer"] += 1
        self._raise_interrupt(InterruptPriority.MILLISECOND_TIMER,
                              self.costs.timer_fixed_cycles,
                              self._timer_handler)

    # ------------------------------------------------------------------
    # Interrupt execution model
    # ------------------------------------------------------------------
    def _raise_interrupt(self, priority: int, cycles: float,
                         handler: Callable[..., None],
                         **kwargs: Any) -> None:
        self._pending.append(_PendingInterrupt(
            priority=priority, cycles=cycles, handler=handler,
            kwargs=kwargs, raised_at=self.kernel.now))
        if not self._running:
            self._dispatch()

    def _dispatch(self) -> None:
        """Run pending interrupts in VIC priority order."""
        if not self._pending:
            if self.state is ProcessorState.APPLICATION:
                self.state = ProcessorState.SLEEPING
            return
        self._running = True
        if self.state is ProcessorState.SLEEPING:
            self.state = ProcessorState.APPLICATION
        # Highest priority = smallest number; stable for equal priorities.
        self._pending.sort(key=lambda p: p.priority)
        interrupt = self._pending.pop(0)

        latency = self.kernel.now - interrupt.raised_at
        if latency > self.max_interrupt_latency_us:
            self.max_interrupt_latency_us = latency

        duration = self.clock.cycles_to_microseconds(interrupt.cycles)
        self.busy_time_us += duration
        self._busy_until = self.kernel.now + duration
        self.kernel.schedule_after(duration, self._finish_handler,
                                   priority=interrupt.priority,
                                   label="core%d-handler" % self.core_id,
                                   interrupt=interrupt)

    def _finish_handler(self, _kernel: EventKernel,
                        interrupt: _PendingInterrupt) -> None:
        # The handler's observable effects happen at completion time.
        interrupt.handler(**interrupt.kwargs)
        self._running = False
        self._dispatch()

    def charge_cycles(self, cycles: float) -> None:
        """Charge extra work to the currently-running handler.

        Application code (for example the neuron-update loop) calls this to
        account for data-dependent work beyond the fixed handler cost.
        """
        duration = self.clock.cycles_to_microseconds(cycles)
        self.busy_time_us += duration
        self._busy_until += duration

    # ------------------------------------------------------------------
    # Communications controller
    # ------------------------------------------------------------------
    def send_multicast(self, packet: Any) -> None:
        """Inject a multicast packet into the chip's router."""
        if self._send_packet is None:
            raise RuntimeError("core %d has no communications controller wired"
                               % (self.core_id,))
        self.packets_sent += 1
        self._send_packet(self.core_id, packet)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def utilisation(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` the core spent executing handlers."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_time_us / elapsed_us)

    @property
    def pending_interrupts(self) -> int:
        """Number of interrupts waiting for the core."""
        return len(self._pending)

    def load_application(self, code_bytes: int, data_bytes: int = 0) -> None:
        """Model loading application code/data into the local memories.

        Raises
        ------
        MemoryError
            If the image does not fit in ITCM/DTCM — the constraint that
            drives the flood-fill block sizes of Section 5.2.
        """
        if code_bytes > self.itcm_bytes:
            raise MemoryError("application code (%d bytes) exceeds the %d-byte ITCM"
                              % (code_bytes, self.itcm_bytes))
        if data_bytes > self.dtcm_bytes:
            raise MemoryError("application data (%d bytes) exceeds the %d-byte DTCM"
                              % (data_bytes, self.dtcm_bytes))
        self.itcm_used = code_bytes
        self.dtcm_used = data_bytes
