"""Run-time layers: the event-driven application model, boot and loading.

* :mod:`repro.runtime.application` — the real-time event-driven neural
  application of Figure 7: packet-received, DMA-complete and millisecond-
  timer handlers running on every application core.
* :mod:`repro.runtime.boot` — the two-phase boot protocol of Section 5.2:
  self-test, monitor-processor arbitration, nearest-neighbour repair of
  failed nodes, coordinate propagation and p2p table configuration.
* :mod:`repro.runtime.flood_fill` — flood-fill application loading with a
  configurable redundancy factor.
* :mod:`repro.runtime.monitor` — Monitor Processor services: collecting
  router notifications, permanent re-routing around failed links and
  mapping out failed cores.
* :mod:`repro.runtime.migration` — run-time functional migration: moving
  the work of suspect cores to spares while keeping routing keys stable.
"""

from repro.runtime.application import ApplicationResult, CoreRuntime, NeuralApplication
from repro.runtime.boot import BootController, BootResult
from repro.runtime.flood_fill import ApplicationImage, FloodFillLoader, FloodFillResult
from repro.runtime.migration import FunctionalMigrator, MigrationError, MigrationReport
from repro.runtime.monitor import MonitorService

__all__ = [
    "ApplicationResult",
    "CoreRuntime",
    "NeuralApplication",
    "BootController",
    "BootResult",
    "ApplicationImage",
    "FloodFillLoader",
    "FloodFillResult",
    "FunctionalMigrator",
    "MigrationError",
    "MigrationReport",
    "MonitorService",
]
