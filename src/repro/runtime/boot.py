"""The two-phase boot protocol (Section 5.2).

SpiNNaker is "a highly-distributed homogeneous system with no explicit
means of synchronization", so boot has to break symmetry twice:

1. **On-chip**: every core runs a self-test; the cores that pass bid to be
   the Monitor Processor by reading a read-sensitive register in the System
   Controller, which guarantees exactly one winner.  If a node fails to
   boot, its neighbours detect this with nearest-neighbour (nn) probe
   packets, copy boot code into the failed node's System RAM and instruct
   it to reboot from there.

2. **System-level**: the Ethernet-attached origin node is assigned
   coordinates (0, 0) and propagates positional information through the
   machine with nn packets, after which every node can compute its p2p
   routing table and the host can reach any chip through node (0, 0).

The controller below drives all of that through the event kernel and the
machine's nn-packet transport, so boot time scales with the machine
diameter exactly as in the real system.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.event_kernel import EventKernel
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import SpiNNakerMachine
from repro.core.packets import NearestNeighbourPacket, NNCommand
from repro.router.p2p import P2PRoutingTable


@dataclass
class BootResult:
    """Outcome of a boot pass."""

    n_chips: int = 0
    chips_booted_unaided: int = 0
    chips_repaired: int = 0
    chips_dead: int = 0
    monitors_elected: int = 0
    failed_cores: int = 0
    coordinate_flood_time_us: float = 0.0
    boot_complete_time_us: float = 0.0
    nn_packets_sent: int = 0
    p2p_tables_configured: int = 0

    @property
    def all_chips_operational(self) -> bool:
        """True if every chip ended up booted with a monitor."""
        return self.chips_dead == 0 and self.monitors_elected == self.n_chips


class BootController:
    """Drives self-test, monitor election, repair and coordinate flooding."""

    def __init__(self, machine: SpiNNakerMachine,
                 core_failure_probability: float = 0.0,
                 chip_boot_failure_probability: float = 0.0,
                 repairable_fraction: float = 1.0,
                 nn_hop_time_us: float = 1.0,
                 seed: Optional[int] = None) -> None:
        if not 0.0 <= core_failure_probability <= 1.0:
            raise ValueError("core_failure_probability must be in [0, 1]")
        if not 0.0 <= chip_boot_failure_probability <= 1.0:
            raise ValueError("chip_boot_failure_probability must be in [0, 1]")
        if not 0.0 <= repairable_fraction <= 1.0:
            raise ValueError("repairable_fraction must be in [0, 1]")
        self.machine = machine
        self.kernel: EventKernel = machine.kernel
        self.core_failure_probability = core_failure_probability
        self.chip_boot_failure_probability = chip_boot_failure_probability
        self.repairable_fraction = repairable_fraction
        self.nn_hop_time_us = nn_hop_time_us
        self.rng = random.Random(seed)
        self.result = BootResult(n_chips=machine.n_chips)
        self._coordinates_received: Set[ChipCoordinate] = set()
        self._unrepairable: Set[ChipCoordinate] = set()

    # ------------------------------------------------------------------
    # Phase 1: per-chip boot and monitor election
    # ------------------------------------------------------------------
    def _self_test_chip(self, coordinate: ChipCoordinate) -> bool:
        """Run self-test and monitor arbitration on one chip.

        Returns True if the chip booted (at least one working core claimed
        the monitor role).
        """
        chip = self.machine.chips[coordinate]
        chip_fails = self.rng.random() < self.chip_boot_failure_probability
        if chip_fails and self.rng.random() >= self.repairable_fraction:
            self._unrepairable.add(coordinate)

        any_working = False
        for core in chip.cores:
            core_passes = self.rng.random() >= self.core_failure_probability
            core.run_self_test(core_passes)
            if not core_passes:
                self.result.failed_cores += 1
            any_working = any_working or core_passes

        if chip_fails or not any_working:
            chip.state.boot_failed = True
            return False

        monitor = chip.elect_monitor()
        if monitor is None:
            chip.state.boot_failed = True
            return False
        chip.state.booted = True
        self.result.monitors_elected += 1
        return True

    def _repair_chip(self, coordinate: ChipCoordinate,
                     helper: ChipCoordinate) -> bool:
        """A booted neighbour repairs ``coordinate`` via nn packets.

        The neighbour writes boot code into the failed chip's System RAM,
        forces a monitor re-election and instructs a reboot.  Chips marked
        unrepairable (genuinely dead silicon) stay down.
        """
        self.result.nn_packets_sent += 3  # probe, write System RAM, reboot
        if coordinate in self._unrepairable:
            return False
        chip = self.machine.chips[coordinate]
        working = [core for core in chip.cores if core.is_available]
        if not working:
            return False
        chip.write_system_ram([0xB007C0DE] * 16)
        chip.system_controller.reset()
        monitor = chip.elect_monitor()
        if monitor is None:
            return False
        chip.state.boot_failed = False
        chip.state.booted = True
        self.result.monitors_elected += 1
        self.result.chips_repaired += 1
        return True

    # ------------------------------------------------------------------
    # Phase 2: coordinate propagation and p2p configuration
    # ------------------------------------------------------------------
    def _install_nn_handlers(self) -> None:
        for coordinate, chip in self.machine.chips.items():
            chip.on_nearest_neighbour(self._make_nn_handler(coordinate))

    def _make_nn_handler(self, coordinate: ChipCoordinate):
        def handler(packet: NearestNeighbourPacket, arrival: Direction) -> None:
            if packet.command is not NNCommand.COORDINATE:
                return
            chip = self.machine.chips[coordinate]
            if not chip.state.booted:
                return
            if coordinate in self._coordinates_received:
                return
            sender_x, sender_y, width, height = packet.payload
            dx, dy = arrival.opposite.offset
            my_x = (sender_x + dx) % width
            my_y = (sender_y + dy) % height
            chip.assigned_coordinate = ChipCoordinate(my_x, my_y)
            chip.state.coordinates_known = True
            self._coordinates_received.add(coordinate)
            self.result.coordinate_flood_time_us = self.kernel.now
            self._propagate_coordinates(coordinate)
        return handler

    def _propagate_coordinates(self, coordinate: ChipCoordinate) -> None:
        chip = self.machine.chips[coordinate]
        if chip.assigned_coordinate is None:
            return
        payload = (chip.assigned_coordinate.x, chip.assigned_coordinate.y,
                   self.machine.config.width, self.machine.config.height)
        for direction in Direction:
            packet = NearestNeighbourPacket(command=NNCommand.COORDINATE,
                                            payload=payload,
                                            timestamp=self.kernel.now)
            sent = self.machine.send_nearest_neighbour(coordinate, direction,
                                                       packet)
            if sent:
                self.result.nn_packets_sent += 1

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def boot(self) -> BootResult:
        """Run the whole boot sequence and return its result."""
        # Phase 1a: every chip self-tests and tries to elect a monitor.
        failed_chips: List[ChipCoordinate] = []
        for coordinate in self.machine.geometry.all_chips():
            if self._self_test_chip(coordinate):
                self.result.chips_booted_unaided += 1
            else:
                failed_chips.append(coordinate)

        # Phase 1b: booted neighbours attempt to repair failed chips.
        still_dead: List[ChipCoordinate] = []
        for coordinate in failed_chips:
            repaired = False
            for direction, neighbour in self.machine.geometry.neighbours(coordinate):
                if self.machine.chips[neighbour].state.booted:
                    if self._repair_chip(coordinate, neighbour):
                        repaired = True
                        break
            if not repaired:
                still_dead.append(coordinate)
        self.result.chips_dead = len(still_dead)

        # Phase 2: coordinate propagation from the Ethernet origin.
        self._install_nn_handlers()
        origin = self.machine.ethernet_chips[0]
        origin_chip = self.machine.chips[origin]
        if origin_chip.state.booted:
            origin_chip.assigned_coordinate = origin
            origin_chip.state.coordinates_known = True
            self._coordinates_received.add(origin)
            self.kernel.schedule_after(self.nn_hop_time_us,
                                       lambda _k: self._propagate_coordinates(origin),
                                       label="boot-origin")
            self.kernel.run()

        # Phase 3: p2p routing-table configuration on every located chip.
        for coordinate, chip in self.machine.chips.items():
            if chip.state.coordinates_known:
                chip.p2p_table = P2PRoutingTable.build(coordinate,
                                                       self.machine.geometry)
                chip.state.p2p_configured = True
                self.result.p2p_tables_configured += 1

        self.result.boot_complete_time_us = self.kernel.now
        return self.result
